//! The common guessing interface, now shared with the flow.
//!
//! Baselines implement [`passflow_core::Guesser`] directly, so the unified
//! [`Attack`](passflow_core::Attack) engine drives them with the same
//! protocol as `PassFlow`. The old [`PasswordGuesser`] trait remains as a
//! deprecated alias, blanket-implemented for every `Guesser`, so code
//! written against the pre-engine API keeps compiling.

use rand::RngCore;

pub use passflow_core::Guesser;

/// The legacy baseline-guesser interface.
#[deprecated(
    since = "0.1.0",
    note = "implement `passflow_core::Guesser` instead; every `Guesser` provides this trait automatically"
)]
pub trait PasswordGuesser {
    /// Human-readable name used as the row label in tables.
    fn name(&self) -> &str;

    /// Generates `n` password guesses.
    fn generate(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String>;
}

#[allow(deprecated)]
impl<T: Guesser + ?Sized> PasswordGuesser for T {
    fn name(&self) -> &str {
        Guesser::name(self)
    }

    fn generate(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
        self.generate_batch(n, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;

    impl Guesser for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn generate_batch(&self, n: usize, _rng: &mut dyn RngCore) -> Vec<String> {
            vec!["123456".to_string(); n]
        }
    }

    #[test]
    fn trait_is_object_safe_and_usable_through_a_box() {
        let guessers: Vec<Box<dyn Guesser>> = vec![Box::new(Fixed)];
        let mut rng = passflow_nn::rng::seeded(1);
        let out = guessers[0].generate_batch(3, &mut rng);
        assert_eq!(out.len(), 3);
        assert_eq!(guessers[0].name(), "fixed");
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_trait_is_provided_for_every_guesser() {
        let mut rng = passflow_nn::rng::seeded(2);
        let legacy: &dyn PasswordGuesser = &Fixed;
        assert_eq!(legacy.name(), "fixed");
        assert_eq!(legacy.generate(2, &mut rng).len(), 2);
    }
}
