//! Allocation-free compute kernels for the inference fast path.
//!
//! Every kernel writes into a caller-provided buffer and is **bit-exact**
//! with the reference tensor-op chain it replaces: each output element is
//! produced by the same floating-point operations in the same order, so the
//! fast path and the reference path agree to 0 ULP. Concretely, every matrix
//! product accumulates `Σ_p fma(a[i][p], b[p][j], acc)` left-to-right from
//! `0.0` — [`Tensor::matmul`] and every fused variant route through the one
//! GEMM below, so "reference" and "fast" disagree in *allocation*, never in
//! value. Any bias is added *after* the full accumulation (mirroring
//! `matmul` + `add_row_broadcast`), and fused elementwise kernels apply the
//! same scalar functions in the same sequence as the tensor-op chain.
//!
//! The matrix core is a register-blocked i-k-j GEMM: 4 output rows × 16
//! output columns are accumulated in registers while `p` streams through the
//! shared dimension, with 8/4/1-wide column tails and single-row tails for
//! ragged shapes. Register blocking re-tiles the *independent* i/j loops
//! only, and the per-lane `mul_add` keeps exact FMA semantics, so
//! vectorization never reassociates the `p` accumulation order. (A
//! pre-transposed B operand was evaluated for the Linear path and rejected:
//! a dot-product inner loop can only vectorize by reassociating the
//! reduction, which breaks bit-exactness. The snapshot instead stores B
//! contiguous and row-major, which the i-k-j kernel streams with unit
//! stride.)

use crate::pool::ThreadPool;
use crate::tensor::Tensor;
use crate::ActivationKind;

/// What to do with the accumulated dot products when a tile completes.
#[derive(Clone, Copy)]
enum Epilogue<'a> {
    /// `out = acc` (plain matrix product).
    Store,
    /// `out = acc + bias[j]` (fused linear layer).
    Bias(&'a [f32]),
    /// `out += acc + bias[j]` (fused residual branch).
    BiasAdd(&'a [f32]),
}

/// Whether the explicit AVX2/FMA inner tile is available on this host.
///
/// On `x86_64` this is a cached runtime CPUID check; elsewhere it is `false`
/// and every call takes the scalar tile (which `-C target-cpu` may still
/// auto-vectorize — the explicit tile exists so peak width never depends on
/// build flags). Both tiles compute identical bytes, so the dispatch is
/// invisible in results.
pub fn simd_tile_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        simd::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// One register tile: `R` output rows × `W` output columns at `(i, j)`.
///
/// Accumulates over the full shared dimension `k` with `p` ascending via
/// fused multiply-adds, then applies the epilogue. `mul_add` has exact FMA
/// semantics per element, so the loop vectorizes to `vfmadd` without any
/// reassociation — every caller of the GEMM (reference path, fast path,
/// autograd) therefore computes the identical value.
#[inline(always)]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn tile<const R: usize, const W: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i: usize,
    j: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) {
    let mut acc = [[0.0f32; W]; R];
    // Pre-sliced A rows let the compiler prove `p` stays in range.
    let a_rows: [&[f32]; R] = std::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
    let mut b_off = j;
    for p in 0..k {
        let b_row: &[f32; W] = b[b_off..b_off + W].try_into().expect("tile width");
        for r in 0..R {
            let a_val = a_rows[r][p];
            for c in 0..W {
                acc[r][c] = a_val.mul_add(b_row[c], acc[r][c]);
            }
        }
        b_off += n;
    }
    for r in 0..R {
        let out_row = &mut out[(i + r) * n + j..(i + r) * n + j + W];
        match epi {
            Epilogue::Store => out_row.copy_from_slice(&acc[r]),
            Epilogue::Bias(bias) => {
                for c in 0..W {
                    out_row[c] = acc[r][c] + bias[j + c];
                }
            }
            Epilogue::BiasAdd(bias) => {
                for c in 0..W {
                    out_row[c] += acc[r][c] + bias[j + c];
                }
            }
        }
    }
}

/// The explicit AVX2/FMA inner tiles (`x86_64` only).
///
/// Each function computes exactly the same per-lane operations as the scalar
/// [`tile`] it replaces: one `vfmadd` per `(row, column, p)` with `p`
/// ascending, bias added once after the full accumulation. SIMD re-tiles the
/// *independent* row/column loops only — the `p` reduction order per output
/// element is untouched — so scalar and SIMD tiles agree to 0 ULP (asserted
/// by the `simd_tile_matches_scalar_tile` test on AVX2 hosts).
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::Epilogue;
    use std::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };
    use std::sync::OnceLock;

    /// Cached CPUID probe for AVX2 + FMA.
    pub(super) fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }

    /// `R` rows × 16 columns at `(i, j)`: two 8-lane accumulators per row.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2+FMA are available ([`available`]) and that
    /// the `R`×16 tile at `(i, j)` is in bounds for `a`/`b`/`out` with the
    /// given `k`/`n` strides (the same contract the scalar tile's slicing
    /// enforces).
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn tile16<const R: usize>(
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        i: usize,
        j: usize,
        k: usize,
        n: usize,
        epi: Epilogue<'_>,
    ) {
        debug_assert!((i + R) * k <= a.len());
        debug_assert!(k == 0 || (k - 1) * n + j + 16 <= b.len());
        let mut acc_lo = [_mm256_setzero_ps(); R];
        let mut acc_hi = [_mm256_setzero_ps(); R];
        let mut b_off = j;
        for p in 0..k {
            let b_lo = _mm256_loadu_ps(b.as_ptr().add(b_off));
            let b_hi = _mm256_loadu_ps(b.as_ptr().add(b_off + 8));
            for r in 0..R {
                let a_val = _mm256_set1_ps(*a.get_unchecked((i + r) * k + p));
                acc_lo[r] = _mm256_fmadd_ps(a_val, b_lo, acc_lo[r]);
                acc_hi[r] = _mm256_fmadd_ps(a_val, b_hi, acc_hi[r]);
            }
            b_off += n;
        }
        let (bias_lo, bias_hi): (__m256, __m256) = match epi {
            Epilogue::Store => (_mm256_setzero_ps(), _mm256_setzero_ps()),
            Epilogue::Bias(bias) | Epilogue::BiasAdd(bias) => (
                _mm256_loadu_ps(bias.as_ptr().add(j)),
                _mm256_loadu_ps(bias.as_ptr().add(j + 8)),
            ),
        };
        for r in 0..R {
            let out_ptr = out.as_mut_ptr().add((i + r) * n + j);
            match epi {
                Epilogue::Store => {
                    _mm256_storeu_ps(out_ptr, acc_lo[r]);
                    _mm256_storeu_ps(out_ptr.add(8), acc_hi[r]);
                }
                // Same operation order as the scalar epilogues:
                // `acc + bias`, then (for BiasAdd) `out + (acc + bias)`.
                Epilogue::Bias(_) => {
                    _mm256_storeu_ps(out_ptr, _mm256_add_ps(acc_lo[r], bias_lo));
                    _mm256_storeu_ps(out_ptr.add(8), _mm256_add_ps(acc_hi[r], bias_hi));
                }
                Epilogue::BiasAdd(_) => {
                    let cur_lo = _mm256_loadu_ps(out_ptr);
                    let cur_hi = _mm256_loadu_ps(out_ptr.add(8));
                    _mm256_storeu_ps(
                        out_ptr,
                        _mm256_add_ps(cur_lo, _mm256_add_ps(acc_lo[r], bias_lo)),
                    );
                    _mm256_storeu_ps(
                        out_ptr.add(8),
                        _mm256_add_ps(cur_hi, _mm256_add_ps(acc_hi[r], bias_hi)),
                    );
                }
            }
        }
    }
}

/// All column tiles for a block of `R` rows starting at row `i`.
#[allow(clippy::too_many_arguments)] // flat GEMM plumbing: slices + dims
#[inline(always)]
fn row_block<const R: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
    use_simd: bool,
) {
    let mut j = 0;
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        while j + 16 <= n {
            // SAFETY: AVX2+FMA availability is checked before `use_simd` is
            // set; bounds follow from `j + 16 <= n` and `i + R <= m`.
            unsafe { simd::tile16::<R>(a, b, out, i, j, k, n, epi) };
            j += 16;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_simd;
    while j + 16 <= n {
        tile::<R, 16>(a, b, out, i, j, k, n, epi);
        j += 16;
    }
    if j + 8 <= n {
        tile::<R, 8>(a, b, out, i, j, k, n, epi);
        j += 8;
    }
    if j + 4 <= n {
        tile::<R, 4>(a, b, out, i, j, k, n, epi);
        j += 4;
    }
    while j < n {
        tile::<R, 1>(a, b, out, i, j, k, n, epi);
        j += 1;
    }
}

/// Single-threaded blocked GEMM over a row range — the unit of work the
/// threaded driver hands to each pool block.
#[allow(clippy::too_many_arguments)] // flat GEMM plumbing: slices + dims
fn gemm_rows(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
    epi: Epilogue<'_>,
    use_simd: bool,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let mut i = 0;
    while i + 4 <= m {
        row_block::<4>(a, b, out, i, k, n, epi, use_simd);
        i += 4;
    }
    while i < m {
        row_block::<1>(a, b, out, i, k, n, epi, use_simd);
        i += 1;
    }
}

/// A raw output pointer that may cross threads. Soundness: the threaded
/// driver hands each pool block a *disjoint* row range of `out`, so no two
/// threads ever touch the same element.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Below this many multiply-accumulates a GEMM is not worth a pool
/// dispatch: handing a job to parked workers costs a few microseconds,
/// which only amortizes once the kernel itself runs tens of microseconds.
/// Pure throughput cut-off — results are identical on either side of it.
const PAR_MIN_MACS: usize = 1 << 17;

/// Fewest output rows a pool block may carry (keeps blocks on whole
/// 4-row register blocks and bounds per-block dispatch overhead).
const PAR_MIN_BLOCK_ROWS: usize = 16;

/// The blocked GEMM driver: `out ∘= a (m×k) × b (k×n)` under `epi`,
/// optionally splitting output row blocks across a [`ThreadPool`].
///
/// **Bit-exactness across thread counts.** The i/j loops are fully
/// independent — every output element is `Σ_p fma(a[i][p], b[p][j], ·)`
/// with `p` ascending regardless of which thread computes it — so
/// partitioning rows across threads (in any assignment) produces the same
/// bytes as the serial loop. Only the row partition is parallelized; `p`
/// accumulation order is untouched.
#[allow(clippy::too_many_arguments)] // flat GEMM plumbing: slices + dims
fn gemm(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
    epi: Epilogue<'_>,
    pool: Option<&ThreadPool>,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let use_simd = simd_tile_available();
    let threads = pool.map_or(1, ThreadPool::threads);
    if threads <= 1 || m < 2 * PAR_MIN_BLOCK_ROWS || m * k * n < PAR_MIN_MACS {
        return gemm_rows(a, m, k, b, n, out, epi, use_simd);
    }
    let pool = pool.expect("threads > 1 implies a pool");
    // Row blocks: multiples of 4 (whole register blocks), a few per thread
    // for dynamic load balance, never smaller than PAR_MIN_BLOCK_ROWS.
    let target_blocks = threads * 4;
    let rows_per_block = m
        .div_ceil(target_blocks)
        .next_multiple_of(4)
        .max(PAR_MIN_BLOCK_ROWS);
    let blocks = m.div_ceil(rows_per_block);
    let out_ptr = SendPtr(out.as_mut_ptr());
    pool.run(blocks, &move |block| {
        // Read the whole wrapper (not `out_ptr.0`) so edition-2021 closure
        // capture grabs `SendPtr` (which is `Sync`), not the bare `*mut f32`
        // field (which is not).
        let base = { out_ptr }.0;
        let start = block * rows_per_block;
        let rows = rows_per_block.min(m - start);
        // SAFETY: blocks tile `0..m` disjointly, so each reconstructed
        // sub-slice covers rows `start..start+rows` and nothing else.
        let out_block = unsafe { std::slice::from_raw_parts_mut(base.add(start * n), rows * n) };
        gemm_rows(
            &a[start * k..(start + rows) * k],
            rows,
            k,
            b,
            n,
            out_block,
            epi,
            use_simd,
        );
    });
}

/// Matrix product `a × b` written into `out` (resized as needed; previous
/// contents are ignored and every element is overwritten).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    matmul_into_with(a, b, out, None);
}

/// [`matmul_into`] with an optional [`ThreadPool`] splitting output row
/// blocks across threads. Bit-exact with the single-threaded call at any
/// thread count (see the GEMM driver's invariance argument).
pub fn matmul_into_with(a: &Tensor, b: &Tensor, out: &mut Tensor, pool: Option<&ThreadPool>) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {}x{} × {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    out.resize(m, n);
    gemm(
        a.as_slice(),
        m,
        k,
        b.as_slice(),
        n,
        out.as_mut_slice(),
        Epilogue::Store,
        pool,
    );
}

/// [`matmul_into`] forced onto the scalar inner tile (no explicit SIMD,
/// single-threaded) — the conformance oracle the SIMD tile and the threaded
/// driver are tested against. Production code never needs this.
pub fn matmul_into_scalar_tile(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    out.resize(m, n);
    gemm_rows(
        a.as_slice(),
        m,
        k,
        b.as_slice(),
        n,
        out.as_mut_slice(),
        Epilogue::Store,
        false,
    );
}

/// Fused linear layer: `out = input × weight + bias` (bias broadcast across
/// rows), written into `out` (resized as needed).
///
/// Bit-exact with `input.matmul(weight).add_row_broadcast(bias)`: the bias
/// is added once per element after the full accumulation.
///
/// # Panics
///
/// Panics on shape mismatch (`input.cols() != weight.rows()` or `bias` not
/// `1 × weight.cols()`).
pub fn matmul_bias_into(input: &Tensor, weight: &Tensor, bias: &Tensor, out: &mut Tensor) {
    matmul_bias_into_with(input, weight, bias, out, None);
}

/// [`matmul_bias_into`] with an optional [`ThreadPool`]; bit-exact with the
/// single-threaded call at any thread count.
pub fn matmul_bias_into_with(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    out: &mut Tensor,
    pool: Option<&ThreadPool>,
) {
    assert_eq!(input.cols(), weight.rows(), "matmul_bias shape mismatch");
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), weight.cols(), "bias width must match weight");
    let (m, k, n) = (input.rows(), input.cols(), weight.cols());
    out.resize(m, n);
    gemm(
        input.as_slice(),
        m,
        k,
        weight.as_slice(),
        n,
        out.as_mut_slice(),
        Epilogue::Bias(bias.as_slice()),
        pool,
    );
}

/// Fused residual linear layer: `out += input × weight + bias`.
///
/// Bit-exact with `out.add(&input.matmul(weight).add_row_broadcast(bias))`
/// (IEEE-754 addition is commutative in value, and the bias is folded into
/// the product term before the residual add).
///
/// # Panics
///
/// Panics on shape mismatch, including `out` not being
/// `input.rows() × weight.cols()`.
pub fn matmul_bias_add_into(input: &Tensor, weight: &Tensor, bias: &Tensor, out: &mut Tensor) {
    matmul_bias_add_into_with(input, weight, bias, out, None);
}

/// [`matmul_bias_add_into`] with an optional [`ThreadPool`]; bit-exact with
/// the single-threaded call at any thread count.
pub fn matmul_bias_add_into_with(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    out: &mut Tensor,
    pool: Option<&ThreadPool>,
) {
    assert_eq!(input.cols(), weight.rows(), "matmul_bias shape mismatch");
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), weight.cols(), "bias width must match weight");
    assert_eq!(
        out.shape(),
        (input.rows(), weight.cols()),
        "residual output shape mismatch"
    );
    gemm(
        input.as_slice(),
        input.rows(),
        input.cols(),
        weight.as_slice(),
        weight.cols(),
        out.as_mut_slice(),
        Epilogue::BiasAdd(bias.as_slice()),
        pool,
    );
}

/// In-place rectified linear unit (`v ← max(v, 0)`).
pub fn relu_in_place(t: &mut Tensor) {
    for v in t.as_mut_slice() {
        *v = v.max(0.0);
    }
}

/// In-place hyperbolic tangent (same [`crate::math::fast_tanh`] as
/// [`Tensor::tanh`]).
pub fn tanh_in_place(t: &mut Tensor) {
    for v in t.as_mut_slice() {
        *v = crate::math::fast_tanh(*v);
    }
}

/// In-place exponential (same [`crate::math::fast_exp`] as
/// [`Tensor::exp`]).
pub fn exp_in_place(t: &mut Tensor) {
    for v in t.as_mut_slice() {
        *v = crate::math::fast_exp(*v);
    }
}

/// In-place logistic sigmoid (same [`crate::math::fast_sigmoid`] as
/// [`Tensor::sigmoid`]).
pub fn sigmoid_in_place(t: &mut Tensor) {
    for v in t.as_mut_slice() {
        *v = crate::math::fast_sigmoid(*v);
    }
}

/// Applies `kind` elementwise in place.
pub fn activate_in_place(kind: ActivationKind, t: &mut Tensor) {
    match kind {
        ActivationKind::Relu => relu_in_place(t),
        ActivationKind::Tanh => tanh_in_place(t),
        ActivationKind::Sigmoid => sigmoid_in_place(t),
    }
}

/// Per-row squared L2 norms: `out[i][0] = Σ_j t[i][j]²`, written into `out`
/// (resized to `rows × 1`).
///
/// This is the batched accessor behind the flow's fused log-density path
/// (`FlowSnapshot::log_prob_into` in `passflow-core`): the squared norm of
/// each latent row combines with the per-row log-determinants accumulated by
/// [`affine_coupling_forward_into`] into a Gaussian log-likelihood without
/// materializing per-row slices. The accumulation runs left-to-right in
/// column order, bit-exact with the reference
/// `row.iter().map(|v| v * v).sum::<f32>()` fold.
pub fn row_squared_norms_into(t: &Tensor, out: &mut Tensor) {
    let cols = t.cols();
    out.resize(t.rows(), 1);
    for (dst, row) in out
        .as_mut_slice()
        .iter_mut()
        .zip(t.as_slice().chunks_exact(cols))
    {
        let mut acc = 0.0f32;
        for &v in row {
            acc += v * v;
        }
        *dst = acc;
    }
}

/// Row-broadcast product `out = src ⊙ scale` where `scale` is `1 × cols`,
/// written into `out` (resized as needed).
///
/// # Panics
///
/// Panics if `scale` is not a `1 × src.cols()` row vector.
pub fn mul_row_broadcast_into(src: &Tensor, scale: &Tensor, out: &mut Tensor) {
    assert_eq!(scale.rows(), 1, "scale must be a row vector");
    assert_eq!(scale.cols(), src.cols(), "scale width must match tensor");
    out.resize(src.rows(), src.cols());
    let cols = src.cols();
    let s = scale.as_slice();
    for (out_row, src_row) in out
        .as_mut_slice()
        .chunks_exact_mut(cols)
        .zip(src.as_slice().chunks_exact(cols))
    {
        for c in 0..cols {
            out_row[c] = src_row[c] * s[c];
        }
    }
}

/// Fused affine-coupling forward combine (Equation 13):
///
/// `z = b ⊙ x + (1 − b) ⊙ (x ⊙ exp(s) + t)`, with the per-row masked scale
/// sums `Σ_j (1 − b)_j · s_j` **added** to `log_det_acc` (which accumulates
/// across coupling layers).
///
/// Bit-exact with the reference chain
/// `x.mul(&s.exp()).add(&t).mul_row_broadcast(&inv_mask)` +
/// `masked_x.add(..)` and `s.mul_row_broadcast(&inv_mask).sum_rows()`
/// (row sums run left-to-right).
///
/// # Panics
///
/// Panics if shapes disagree (`x`, `s`, `t` equal shapes; masks `1 × cols`;
/// `log_det_acc` is `rows × 1`).
#[allow(clippy::many_single_char_names)]
pub fn affine_coupling_forward_into(
    x: &Tensor,
    s: &Tensor,
    t: &Tensor,
    mask: &Tensor,
    inv_mask: &Tensor,
    z_out: &mut Tensor,
    log_det_acc: &mut Tensor,
) {
    assert_eq!(x.shape(), s.shape(), "coupling forward shape mismatch");
    assert_eq!(x.shape(), t.shape(), "coupling forward shape mismatch");
    assert_eq!(mask.cols(), x.cols(), "mask width must match input");
    assert_eq!(inv_mask.cols(), x.cols(), "mask width must match input");
    assert_eq!(
        log_det_acc.shape(),
        (x.rows(), 1),
        "log-det accumulator must be rows × 1"
    );
    let cols = x.cols();
    z_out.resize(x.rows(), cols);
    let m = mask.as_slice();
    let im = inv_mask.as_slice();
    let ld = log_det_acc.as_mut_slice();
    for (i, ((z_row, x_row), (s_row, t_row))) in z_out
        .as_mut_slice()
        .chunks_exact_mut(cols)
        .zip(x.as_slice().chunks_exact(cols))
        .zip(
            s.as_slice()
                .chunks_exact(cols)
                .zip(t.as_slice().chunks_exact(cols)),
        )
        .enumerate()
    {
        let mut row_sum = 0.0f32;
        for c in 0..cols {
            let transformed = ((x_row[c] * crate::math::fast_exp(s_row[c])) + t_row[c]) * im[c];
            z_row[c] = x_row[c] * m[c] + transformed;
            row_sum += s_row[c] * im[c];
        }
        ld[i] += row_sum;
    }
}

/// Fused affine-coupling inverse combine:
///
/// `x = b ⊙ z + (1 − b) ⊙ ((z − t) ⊙ exp(−s))`.
///
/// Bit-exact with the reference chain
/// `z.sub(&t).mul(&s.neg().exp()).mul_row_broadcast(&inv_mask)` +
/// `masked_z.add(..)`.
///
/// # Panics
///
/// Panics if shapes disagree (`z`, `s`, `t` equal shapes; masks `1 × cols`).
#[allow(clippy::many_single_char_names)]
pub fn affine_coupling_inverse_into(
    z: &Tensor,
    s: &Tensor,
    t: &Tensor,
    mask: &Tensor,
    inv_mask: &Tensor,
    x_out: &mut Tensor,
) {
    assert_eq!(z.shape(), s.shape(), "coupling inverse shape mismatch");
    assert_eq!(z.shape(), t.shape(), "coupling inverse shape mismatch");
    assert_eq!(mask.cols(), z.cols(), "mask width must match input");
    assert_eq!(inv_mask.cols(), z.cols(), "mask width must match input");
    let cols = z.cols();
    x_out.resize(z.rows(), cols);
    let m = mask.as_slice();
    let im = inv_mask.as_slice();
    for (x_row, (z_row, (s_row, t_row))) in x_out.as_mut_slice().chunks_exact_mut(cols).zip(
        z.as_slice().chunks_exact(cols).zip(
            s.as_slice()
                .chunks_exact(cols)
                .zip(t.as_slice().chunks_exact(cols)),
        ),
    ) {
        for c in 0..cols {
            let restored = ((z_row[c] - t_row[c]) * crate::math::fast_exp(-s_row[c])) * im[c];
            x_row[c] = z_row[c] * m[c] + restored;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    /// The unblocked scalar triple loop with the same per-element FMA
    /// accumulation semantics, kept as the oracle for the blocked kernel.
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            for p in 0..k {
                let a_val = a.get(i, p);
                for j in 0..n {
                    let v = a_val.mul_add(b.get(p, j), out.get(i, j));
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_is_bit_exact_with_naive_loop() {
        let mut r = rng();
        // Ragged shapes exercise every tile width and the row tails.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 7),
            (4, 16, 16),
            (9, 10, 10),
            (17, 23, 37),
            (64, 48, 10),
        ] {
            let a = Tensor::randn(m, k, &mut r);
            let b = Tensor::randn(k, n, &mut r);
            let mut fast = Tensor::zeros(0, 0);
            matmul_into(&a, &b, &mut fast);
            let reference = naive_matmul(&a, &b);
            assert_eq!(fast.as_slice(), reference.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn simd_tile_matches_scalar_tile_bit_for_bit() {
        // On hosts without AVX2 the fast path already *is* the scalar tile
        // and this degenerates to a self-comparison (still a valid check of
        // the dispatch plumbing).
        let mut r = rng();
        for (m, k, n) in [(4, 32, 16), (5, 7, 48), (33, 17, 35), (1, 64, 16)] {
            let a = Tensor::randn(m, k, &mut r);
            let b = Tensor::randn(k, n, &mut r);
            let mut fast = Tensor::zeros(0, 0);
            matmul_into(&a, &b, &mut fast);
            let mut scalar = Tensor::zeros(0, 0);
            matmul_into_scalar_tile(&a, &b, &mut scalar);
            assert_eq!(fast.as_slice(), scalar.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn threaded_gemm_is_bit_exact_at_every_thread_count() {
        let mut r = rng();
        // Shapes chosen to cross the parallel cut-off (the big one) and sit
        // under it (the small ones, which must still answer correctly
        // through the pooled entry point).
        for (m, k, n) in [(128, 64, 48), (37, 5, 9), (256, 33, 17)] {
            let a = Tensor::randn(m, k, &mut r);
            let b = Tensor::randn(k, n, &mut r);
            let mut serial = Tensor::zeros(0, 0);
            matmul_into(&a, &b, &mut serial);
            for threads in [2, 3, 4, 8] {
                let pool = ThreadPool::new(threads);
                let mut threaded = Tensor::zeros(0, 0);
                matmul_into_with(&a, &b, &mut threaded, Some(&pool));
                assert_eq!(
                    threaded.as_slice(),
                    serial.as_slice(),
                    "{m}x{k}x{n} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn threaded_epilogues_match_serial() {
        let mut r = rng();
        let pool = ThreadPool::new(4);
        let x = Tensor::randn(192, 40, &mut r);
        let w = Tensor::randn(40, 56, &mut r);
        let b = Tensor::randn(1, 56, &mut r);
        let base = Tensor::randn(192, 56, &mut r);

        let mut serial = Tensor::zeros(0, 0);
        matmul_bias_into(&x, &w, &b, &mut serial);
        let mut threaded = Tensor::zeros(0, 0);
        matmul_bias_into_with(&x, &w, &b, &mut threaded, Some(&pool));
        assert_eq!(threaded.as_slice(), serial.as_slice(), "bias epilogue");

        let mut serial = base.clone();
        matmul_bias_add_into(&x, &w, &b, &mut serial);
        let mut threaded = base.clone();
        matmul_bias_add_into_with(&x, &w, &b, &mut threaded, Some(&pool));
        assert_eq!(threaded.as_slice(), serial.as_slice(), "bias-add epilogue");
    }

    #[test]
    fn matmul_bias_matches_unfused_chain() {
        let mut r = rng();
        let x = Tensor::randn(13, 21, &mut r);
        let w = Tensor::randn(21, 18, &mut r);
        let b = Tensor::randn(1, 18, &mut r);
        let mut fast = Tensor::zeros(0, 0);
        matmul_bias_into(&x, &w, &b, &mut fast);
        let reference = x.matmul(&w).add_row_broadcast(&b);
        assert_eq!(fast.as_slice(), reference.as_slice());
    }

    #[test]
    fn matmul_bias_add_matches_residual_chain() {
        let mut r = rng();
        let x = Tensor::randn(7, 12, &mut r);
        let w = Tensor::randn(12, 9, &mut r);
        let b = Tensor::randn(1, 9, &mut r);
        let base = Tensor::randn(7, 9, &mut r);
        let mut fast = base.clone();
        matmul_bias_add_into(&x, &w, &b, &mut fast);
        let reference = base.add(&x.matmul(&w).add_row_broadcast(&b));
        assert_eq!(fast.as_slice(), reference.as_slice());
    }

    #[test]
    fn in_place_unary_ops_match_allocating_ops() {
        let mut r = rng();
        let x = Tensor::randn(5, 11, &mut r);
        let mut a = x.clone();
        relu_in_place(&mut a);
        assert_eq!(a.as_slice(), x.relu().as_slice());
        let mut b = x.clone();
        tanh_in_place(&mut b);
        assert_eq!(b.as_slice(), x.tanh().as_slice());
        let mut c = x.clone();
        exp_in_place(&mut c);
        assert_eq!(c.as_slice(), x.exp().as_slice());
        let mut d = x.clone();
        sigmoid_in_place(&mut d);
        assert_eq!(d.as_slice(), x.sigmoid().as_slice());
    }

    #[test]
    fn mul_row_broadcast_into_matches_reference() {
        let mut r = rng();
        let x = Tensor::randn(6, 8, &mut r);
        let s = Tensor::randn(1, 8, &mut r);
        let mut out = Tensor::zeros(0, 0);
        mul_row_broadcast_into(&x, &s, &mut out);
        assert_eq!(out.as_slice(), x.mul_row_broadcast(&s).as_slice());
    }

    #[test]
    fn fused_coupling_combines_match_reference_chains() {
        let mut r = rng();
        let rows = 9;
        let dim = 10;
        let x = Tensor::randn(rows, dim, &mut r);
        let s = Tensor::randn(rows, dim, &mut r).scale(0.3);
        let t = Tensor::randn(rows, dim, &mut r);
        let mask_vals: Vec<f32> = (0..dim).map(|j| (j % 2) as f32).collect();
        let mask = Tensor::row(&mask_vals);
        let inv_mask = mask.neg().add_scalar(1.0);

        // Forward.
        let masked_x = x.mul_row_broadcast(&mask);
        let transformed = x.mul(&s.exp()).add(&t).mul_row_broadcast(&inv_mask);
        let z_ref = masked_x.add(&transformed);
        let ld_ref = s.mul_row_broadcast(&inv_mask).sum_rows();
        let mut z_fast = Tensor::zeros(0, 0);
        let mut ld_fast = Tensor::zeros(rows, 1);
        affine_coupling_forward_into(&x, &s, &t, &mask, &inv_mask, &mut z_fast, &mut ld_fast);
        assert_eq!(z_fast.as_slice(), z_ref.as_slice());
        assert_eq!(ld_fast.as_slice(), ld_ref.as_slice());

        // Inverse.
        let masked_z = x.mul_row_broadcast(&mask);
        let restored = x.sub(&t).mul(&s.neg().exp()).mul_row_broadcast(&inv_mask);
        let x_ref = masked_z.add(&restored);
        let mut x_fast = Tensor::zeros(0, 0);
        affine_coupling_inverse_into(&x, &s, &t, &mask, &inv_mask, &mut x_fast);
        assert_eq!(x_fast.as_slice(), x_ref.as_slice());
    }
}
