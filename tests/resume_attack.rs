//! Kill→resume conformance suite for `PFATTACK v1` attack checkpoints: an
//! attack halted at any checkpoint and resumed must reproduce the
//! byte-identical [`AttackOutcome`] — and the byte-identical `PFGUESS v1`
//! guess archive — of an uninterrupted run, for both the plain (static) and
//! the Dynamic+GS latent path. Knob mismatches and corrupt checkpoints must
//! surface as typed errors, never as silently divergent results.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use passflow::nn::rng as nnrng;
use passflow::{
    Attack, AttackOutcome, DynamicParams, FlowConfig, FlowError, GaussianSmoothing, Guesser,
    GuessingStrategy, PassFlow,
};
use rand::RngCore;

/// A scratch dir that removes itself (and its artifacts) on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "pfattack-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A deterministic guesser cycling through a fixed list (the integration
/// twin of the engine's unit-test fixture).
struct Cycler(Vec<String>);

impl Guesser for Cycler {
    fn name(&self) -> &str {
        "cycler"
    }
    fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
        (0..n)
            .map(|_| self.0[nnrng::uniform_index(rng, self.0.len())].clone())
            .collect()
    }
}

fn cycler() -> Cycler {
    Cycler((0..64).map(|i| format!("pw{i:03}")).collect())
}

fn targets() -> HashSet<String> {
    (0..16).map(|i| format!("pw{:03}", i * 4)).collect()
}

/// An untrained flow plus targets drawn from its own samples, so the
/// Dynamic+GS strategy finds matches and actually builds mixture priors.
fn flow_fixture() -> (PassFlow, HashSet<String>) {
    let mut rng = nnrng::seeded(42);
    let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
    let targets: HashSet<String> = flow
        .sample_passwords(300, &mut rng)
        .into_iter()
        .filter(|p| !p.is_empty())
        .collect();
    (flow, targets)
}

fn static_attack<'a>(targets: &'a HashSet<String>) -> Attack<'a> {
    Attack::new(targets)
        .budget(20_000)
        .batch_size(64)
        .checkpoints(vec![1_000, 9_999])
        .seed(7)
}

fn dynamic_attack<'a>(targets: &'a HashSet<String>) -> Attack<'a> {
    Attack::new(targets)
        .budget(1_500)
        .batch_size(128)
        .checkpoints(vec![512, 1_024])
        .strategy(GuessingStrategy::DynamicWithSmoothing {
            params: DynamicParams::new(0, 0.1, 8),
            smoothing: GaussianSmoothing::default(),
        })
        .seed(11)
        .shards(2)
        .sync_every(4)
}

#[test]
fn halted_and_resumed_static_attacks_reproduce_uninterrupted_outcomes() {
    let scratch = Scratch::new("static");
    let targets = targets();
    let guesser = cycler();

    let reference_archive = scratch.path("reference.pfg");
    let reference: AttackOutcome = static_attack(&targets)
        .archive_to(&reference_archive)
        .run(&guesser)
        .unwrap();
    let reference_bytes = std::fs::read(&reference_archive).unwrap();

    // Halt at several points: before the first report, mid-run, and past
    // the last intermediate checkpoint. halt_after snaps to the next wave
    // boundary, so these cover early, interior and late waves.
    for halt in [1u64, 5_000, 14_000] {
        let cp = scratch.path(&format!("halt-{halt}.pfa"));
        let partial = static_attack(&targets)
            .checkpoint_to(&cp)
            .halt_after(halt)
            .run(&guesser)
            .unwrap();
        assert!(cp.exists(), "halt at {halt} must leave a checkpoint");
        assert!(
            partial.checkpoints.len() < reference.checkpoints.len(),
            "halt at {halt} should be a genuine partial run"
        );
        // The partial reports must be a prefix of the uninterrupted run's.
        assert_eq!(
            partial.checkpoints.as_slice(),
            &reference.checkpoints[..partial.checkpoints.len()],
            "partial reports diverged at halt {halt}"
        );

        let resumed_archive = scratch.path(&format!("resumed-{halt}.pfg"));
        let resumed = static_attack(&targets)
            .resume(&cp)
            .archive_to(&resumed_archive)
            .run(&guesser)
            .unwrap();
        assert_eq!(resumed, reference, "resume after halt {halt} diverged");
        assert_eq!(
            std::fs::read(&resumed_archive).unwrap(),
            reference_bytes,
            "archive after halt {halt} is not byte-identical"
        );
    }
}

#[test]
fn halted_and_resumed_dynamic_gs_attacks_reproduce_uninterrupted_outcomes() {
    let scratch = Scratch::new("dynamic");
    let (flow, targets) = flow_fixture();

    let reference_archive = scratch.path("reference.pfg");
    let reference = dynamic_attack(&targets)
        .archive_to(&reference_archive)
        .run(&flow)
        .unwrap();
    assert!(
        reference.final_report().matched > 0,
        "fixture must produce matches to exercise the mixture state"
    );
    let reference_bytes = std::fs::read(&reference_archive).unwrap();

    // 600 is not a wave boundary (waves are sync_every × batch = 512
    // guesses) — the halt snaps forward, exercising mid-shard kills.
    // (Anything past 1_024 would snap to the final wave and complete.)
    for halt in [1u64, 600] {
        let cp = scratch.path(&format!("halt-{halt}.pfa"));
        let partial = dynamic_attack(&targets)
            .checkpoint_to(&cp)
            .halt_after(halt)
            .run(&flow)
            .unwrap();
        assert!(
            partial.final_report().guesses < reference.final_report().guesses
                || partial.checkpoints.len() < reference.checkpoints.len(),
            "halt at {halt} should stop early"
        );

        // Resuming with a different shard count must still be exact:
        // results are shard-count invariant, and the checkpoint does not
        // pin the shard knob.
        let resumed_archive = scratch.path(&format!("resumed-{halt}.pfg"));
        let resumed = dynamic_attack(&targets)
            .shards(1)
            .resume(&cp)
            .archive_to(&resumed_archive)
            .run(&flow)
            .unwrap();
        assert_eq!(resumed, reference, "resume after halt {halt} diverged");
        assert_eq!(
            std::fs::read(&resumed_archive).unwrap(),
            reference_bytes,
            "archive after halt {halt} is not byte-identical"
        );
    }
}

#[test]
fn periodic_checkpoints_and_resume_from_complete_are_stable() {
    let scratch = Scratch::new("cadence");
    let targets = targets();
    let guesser = cycler();
    let cp = scratch.path("rolling.pfa");
    let archive = scratch.path("run.pfg");

    let outcome = static_attack(&targets)
        .checkpoint_every(1_000)
        .checkpoint_to(&cp)
        .archive_to(&archive)
        .run(&guesser)
        .unwrap();
    assert!(cp.exists(), "completion must leave the final checkpoint");
    let archive_bytes = std::fs::read(&archive).unwrap();

    // Resuming a finished checkpoint is a no-op run: the byte-identical
    // outcome comes straight back and the archive is rewritten identically.
    let again = static_attack(&targets)
        .checkpoint_to(&cp)
        .archive_to(&archive)
        .resume(&cp)
        .run(&guesser)
        .unwrap();
    assert_eq!(again, outcome);
    assert_eq!(std::fs::read(&archive).unwrap(), archive_bytes);
}

#[test]
fn mismatched_knobs_surface_as_typed_checkpoint_errors() {
    let scratch = Scratch::new("mismatch");
    let targets = targets();
    let guesser = cycler();
    let cp = scratch.path("halted.pfa");
    static_attack(&targets)
        .checkpoint_to(&cp)
        .halt_after(5_000)
        .run(&guesser)
        .unwrap();

    fn expect_mismatch(attack: Attack<'_>, guesser: &dyn Guesser, cp: &Path, field: &str) {
        match attack.resume(cp).run(guesser) {
            Err(FlowError::CheckpointMismatch { field: f, .. }) => {
                assert_eq!(f, field, "wrong mismatch field");
            }
            other => panic!("expected a {field} mismatch, got {other:?}"),
        }
    }

    expect_mismatch(
        static_attack(&targets).budget(30_000),
        &guesser,
        &cp,
        "budget",
    );
    expect_mismatch(static_attack(&targets).seed(8), &guesser, &cp, "seed");
    expect_mismatch(
        static_attack(&targets).batch_size(128),
        &guesser,
        &cp,
        "batch_size",
    );
    expect_mismatch(
        static_attack(&targets).checkpoints(vec![2_000]),
        &guesser,
        &cp,
        "checkpoints",
    );

    let mut grown = targets.clone();
    grown.insert("extra-target".to_string());
    expect_mismatch(static_attack(&grown), &guesser, &cp, "target count");

    let mut swapped = targets.clone();
    swapped.remove("pw000");
    swapped.insert("pw001".to_string());
    expect_mismatch(static_attack(&swapped), &guesser, &cp, "target digest");

    struct Renamed(Cycler);
    impl Guesser for Renamed {
        fn name(&self) -> &str {
            "other"
        }
        fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
            self.0.generate_batch(n, rng)
        }
    }
    expect_mismatch(static_attack(&targets), &Renamed(cycler()), &cp, "guesser");
}

#[test]
fn resuming_against_different_weights_is_a_guesser_digest_mismatch() {
    let scratch = Scratch::new("weights");
    let (flow, targets) = flow_fixture();
    let cp = scratch.path("flow.pfa");
    dynamic_attack(&targets)
        .checkpoint_to(&cp)
        .halt_after(600)
        .run(&flow)
        .unwrap();

    // Same name ("PassFlow"), same architecture, different weights.
    let other = PassFlow::new(FlowConfig::tiny(), &mut nnrng::seeded(43)).unwrap();
    match dynamic_attack(&targets).resume(&cp).run(&other) {
        Err(FlowError::CheckpointMismatch { field, .. }) => {
            assert_eq!(field, "guesser digest");
        }
        other => panic!("expected a guesser digest mismatch, got {other:?}"),
    }
}

#[test]
fn corrupt_and_truncated_checkpoints_are_persistence_errors() {
    let scratch = Scratch::new("corrupt");
    let targets = targets();
    let guesser = cycler();
    let cp = scratch.path("victim.pfa");
    static_attack(&targets)
        .checkpoint_to(&cp)
        .halt_after(5_000)
        .run(&guesser)
        .unwrap();
    let pristine = std::fs::read(&cp).unwrap();

    // Truncations at several depths, a flipped payload byte, and garbage.
    for keep in [0, 10, 24, pristine.len() / 2, pristine.len() - 1] {
        std::fs::write(&cp, &pristine[..keep]).unwrap();
        match static_attack(&targets).resume(&cp).run(&guesser) {
            Err(FlowError::AttackPersistence(_)) => {}
            other => panic!("truncation to {keep} bytes: got {other:?}"),
        }
    }
    let mut flipped = pristine.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xFF;
    std::fs::write(&cp, &flipped).unwrap();
    match static_attack(&targets).resume(&cp).run(&guesser) {
        Err(FlowError::AttackPersistence(msg)) => {
            assert!(msg.contains("checksum"), "got: {msg}");
        }
        other => panic!("bit flip: got {other:?}"),
    }

    // A valid checkpoint restored verbatim still works after the scare.
    std::fs::write(&cp, &pristine).unwrap();
    static_attack(&targets).resume(&cp).run(&guesser).unwrap();
}

#[test]
fn shard_attack_archives_merge_order_independently() {
    let scratch = Scratch::new("shardmerge");
    let targets = targets();
    let guesser = cycler();

    // Two "distributed" shards of the same campaign: disjoint seeds, each
    // persisting its dedup'd guess stream.
    let a = scratch.path("shard-a.pfg");
    let b = scratch.path("shard-b.pfg");
    static_attack(&targets)
        .seed(7)
        .archive_to(&a)
        .run(&guesser)
        .unwrap();
    static_attack(&targets)
        .seed(8)
        .archive_to(&b)
        .run(&guesser)
        .unwrap();

    let ab = scratch.path("ab.pfg");
    let ba = scratch.path("ba.pfg");
    passflow::merge_archives(&[a.clone(), b.clone()], &ab).unwrap();
    passflow::merge_archives(&[b, a], &ba).unwrap();
    let merged = std::fs::read(&ab).unwrap();
    assert_eq!(std::fs::read(&ba).unwrap(), merged, "merge order leaked");

    // The union archive serves summed emission counts.
    let archive = passflow::GuessArchive::open(&ab).unwrap();
    archive.verify().unwrap();
    assert_eq!(archive.record_count(), 64, "the cycler only has 64 guesses");
    let total: u64 = archive
        .extract_prefix("pw")
        .unwrap()
        .iter()
        .map(|(_, c)| c)
        .sum();
    assert_eq!(total, 40_000, "both shards' emissions must be accounted");
}
