/root/repo/target/release/deps/parking_lot-16a534c5c6a7ed97.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-16a534c5c6a7ed97.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-16a534c5c6a7ed97.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
