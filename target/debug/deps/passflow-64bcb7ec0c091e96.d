/root/repo/target/debug/deps/passflow-64bcb7ec0c091e96.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpassflow-64bcb7ec0c091e96.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
