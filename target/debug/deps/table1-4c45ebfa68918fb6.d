/root/repo/target/debug/deps/table1-4c45ebfa68918fb6.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-4c45ebfa68918fb6: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
