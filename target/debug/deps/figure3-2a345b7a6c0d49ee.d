/root/repo/target/debug/deps/figure3-2a345b7a6c0d49ee.d: crates/bench/src/bin/figure3.rs Cargo.toml

/root/repo/target/debug/deps/libfigure3-2a345b7a6c0d49ee.rmeta: crates/bench/src/bin/figure3.rs Cargo.toml

crates/bench/src/bin/figure3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
