//! Branch-free transcendental functions shared by every float path.
//!
//! The flow applies `exp` and `tanh` to every element of every batch (the
//! coupling scale networks are tanh-bounded and the affine transform
//! exponentiates them), and libm's scalar implementations both dominate the
//! post-GEMM profile and block autovectorization. These replacements are
//! polynomial/rational approximations with no data-dependent branches, so
//! the surrounding elementwise loops vectorize; accuracy is a few ULP
//! (relative error ≲ 3e-7), far inside every tolerance the reproduction
//! uses.
//!
//! **Consistency rule:** all tensor ops ([`Tensor::exp`](crate::Tensor::exp),
//! [`Tensor::tanh`](crate::Tensor::tanh), [`Tensor::sigmoid`](crate::Tensor::sigmoid)),
//! the in-place kernels and the fused coupling kernels call *these*
//! functions, never `f32::exp` / `f32::tanh` directly — that is what keeps
//! the reference path and the inference fast path bit-identical.

/// Largest input before `exp` saturates: chosen so the power-of-two scale
/// stays at most `2^127` (finite), i.e. slightly below `ln(f32::MAX)`.
const EXP_HI: f32 = 88.37;
/// Smallest input before `exp` flushes to the tiniest normal.
const EXP_LO: f32 = -87.336_55;

/// Fast `e^x` (Cephes-style): range reduction by powers of two plus a
/// degree-5 minimax polynomial on `[-ln 2 / 2, ln 2 / 2]`.
///
/// Inputs outside `[-87.34, 88.37]` saturate: the result clamps to
/// ≈ 1.2e-38 below and ≈ 2.4e38 above (the upper bound keeps the
/// power-of-two scale at `2^127`, i.e. finite) instead of flushing to
/// 0/∞; NaN propagates.
#[inline]
pub fn fast_exp(x: f32) -> f32 {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    let x = x.clamp(EXP_LO, EXP_HI);
    let n = (x * LOG2_E).round();
    // r = x - n·ln2, in two pieces for extra precision.
    let r = n.mul_add(-LN2_HI, x);
    let r = n.mul_add(-LN2_LO, r);
    let mut p = 1.987_569_2e-4f32;
    p = p.mul_add(r, 1.398_199_9e-3);
    p = p.mul_add(r, 8.333_452e-3);
    p = p.mul_add(r, 4.166_579_6e-2);
    p = p.mul_add(r, 1.666_666_6e-1);
    p = p.mul_add(r, 5.000_000_3e-1);
    let poly = p.mul_add(r * r, r) + 1.0;
    // Scale by 2^n through the exponent bits.
    let two_n = f32::from_bits((((n as i32) + 127) << 23) as u32);
    poly * two_n
}

/// Fast `tanh(x)`: the classic odd rational approximation
/// `x·P(x²) / Q(x²)` on `[-7.99, 7.99]`, clamped to ±1 beyond.
///
/// `fast_tanh(0) == 0` exactly and the sign is preserved; NaN propagates.
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    const CLAMP: f32 = 7.998_811_7;
    let x = x.clamp(-CLAMP, CLAMP);
    let x2 = x * x;
    let mut p = -2.760_768_4e-16f32;
    p = p.mul_add(x2, 2.000_188e-13);
    p = p.mul_add(x2, -8.604_672e-11);
    p = p.mul_add(x2, 5.122_297e-8);
    p = p.mul_add(x2, 1.485_722_4e-5);
    p = p.mul_add(x2, 6.372_619_4e-4);
    p = p.mul_add(x2, 4.893_525e-3);
    let p = p * x;
    let mut q = 1.198_258_4e-6f32;
    q = q.mul_add(x2, 1.185_347_1e-4);
    q = q.mul_add(x2, 2.268_434_7e-3);
    q = q.mul_add(x2, 4.893_525e-3);
    p / q
}

/// Fast logistic sigmoid `1 / (1 + e^{-x})`, built on [`fast_exp`] so every
/// sigmoid in the workspace agrees bitwise.
#[inline]
pub fn fast_sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + fast_exp(-x))
}

/// Fast natural logarithm for **strictly positive finite** inputs
/// (Cephes-style): exponent extraction plus a degree-8 polynomial on
/// `[√0.5, √2)`. Used by the Box-Muller sampler, whose inputs live in
/// `(0, 1)`.
#[inline]
pub fn fast_ln(x: f32) -> f32 {
    const SQRT_HALF: f32 = std::f32::consts::FRAC_1_SQRT_2;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    debug_assert!(x > 0.0 && x.is_finite(), "fast_ln domain");
    let bits = x.to_bits();
    let mut e = ((bits >> 23) as i32) - 126;
    // Mantissa remapped into [0.5, 1), then normalized into [√0.5, √2).
    let mut m = f32::from_bits((bits & 0x007f_ffff) | 0x3f00_0000);
    if m < SQRT_HALF {
        m += m;
        e -= 1;
    }
    let t = m - 1.0;
    let z = t * t;
    let mut p = 7.037_683_6e-2f32;
    p = p.mul_add(t, -1.151_461e-1);
    p = p.mul_add(t, 1.167_699_9e-1);
    p = p.mul_add(t, -1.242_014_1e-1);
    p = p.mul_add(t, 1.424_932_3e-1);
    p = p.mul_add(t, -1.666_805_8e-1);
    p = p.mul_add(t, 2.000_071_5e-1);
    p = p.mul_add(t, -2.499_999_4e-1);
    p = p.mul_add(t, 3.333_333e-1);
    let e = e as f32;
    let mut y = t * z * p;
    y = e.mul_add(LN2_LO, y);
    y -= 0.5 * z;
    e.mul_add(LN2_HI, t + y)
}

/// Fast simultaneous `(sin x, cos x)` for `x ∈ [0, 2π]` (Cephes-style):
/// one shared octant reduction, two short polynomials. Used by the
/// Box-Muller sampler, which needs both values of the same angle.
#[inline]
pub fn fast_sin_cos(x: f32) -> (f32, f32) {
    const FRAC_4_PI: f32 = 1.273_239_5; // 4/π
    const DP1: f32 = 0.785_156_25;
    const DP2: f32 = 2.418_756_5e-4;
    const DP3: f32 = 3.774_895e-8;
    debug_assert!((0.0..=6.3).contains(&x), "fast_sin_cos domain");
    let mut j = (FRAC_4_PI * x) as u32;
    j += j & 1; // round up to even: reduction lands in [-π/4, π/4]
    let y = j as f32;
    let r = ((x - y * DP1) - y * DP2) - y * DP3;
    let z = r * r;
    let mut ps = -1.951_529_6e-4f32;
    ps = ps.mul_add(z, 8.332_161e-3);
    ps = ps.mul_add(z, -1.666_665_5e-1);
    let poly_sin = (ps * z).mul_add(r, r);
    let mut pc = 2.443_315_7e-5f32;
    pc = pc.mul_add(z, -1.388_731_6e-3);
    pc = pc.mul_add(z, 4.166_664_6e-2);
    let poly_cos = (pc * z).mul_add(z, 0.5f32.mul_add(-z, 1.0));
    // j is even; each quadrant step rotates (sin, cos) by π/2.
    match (j / 2) & 3 {
        0 => (poly_sin, poly_cos),
        1 => (poly_cos, -poly_sin),
        2 => (-poly_sin, -poly_cos),
        _ => (-poly_cos, poly_sin),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(fast: f32, exact: f64) -> f64 {
        let fast = fast as f64;
        if exact == 0.0 {
            fast.abs()
        } else {
            ((fast - exact) / exact).abs()
        }
    }

    #[test]
    fn exp_is_accurate_across_the_working_range() {
        let mut worst = 0.0f64;
        let mut x = -30.0f32;
        while x <= 30.0 {
            worst = worst.max(rel_err(fast_exp(x), (x as f64).exp()));
            x += 0.0173;
        }
        assert!(worst < 3e-7, "worst exp relative error {worst}");
    }

    #[test]
    fn tanh_is_accurate_across_the_working_range() {
        let mut worst = 0.0f64;
        let mut x = -9.0f32;
        while x <= 9.0 {
            worst = worst.max(rel_err(fast_tanh(x), (x as f64).tanh()));
            x += 0.0171;
        }
        assert!(worst < 3e-7, "worst tanh relative error {worst}");
    }

    #[test]
    fn exact_special_values() {
        assert_eq!(fast_exp(0.0), 1.0);
        assert_eq!(fast_tanh(0.0), 0.0);
        assert_eq!(fast_sigmoid(0.0), 0.5);
        assert!(fast_exp(f32::NAN).is_nan());
        assert!(fast_tanh(f32::NAN).is_nan());
    }

    #[test]
    fn saturation_behaviour() {
        assert!(fast_exp(1000.0).is_finite());
        assert!(fast_exp(1000.0) > 1e38);
        assert!(fast_exp(-1000.0) >= 0.0);
        assert!(fast_exp(-1000.0) < 1e-37);
        assert_eq!(fast_tanh(50.0), fast_tanh(8.0));
        assert!((fast_tanh(50.0) - 1.0).abs() < 1e-6);
        assert!((fast_tanh(-50.0) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn ln_is_accurate_on_the_unit_interval() {
        let mut worst = 0.0f64;
        let mut x = 1e-6f32;
        while x < 1.0 {
            worst = worst.max(rel_err(fast_ln(x), (x as f64).ln()));
            x += 1.7e-4;
        }
        // Also a few values above 1 for completeness.
        for &x in &[1.0f32, 2.5, 10.0, 1e4] {
            let exact = (x as f64).ln();
            let err = (fast_ln(x) as f64 - exact).abs();
            assert!(err < 1e-6, "ln({x}) error {err}");
        }
        assert!(worst < 5e-7, "worst ln relative error {worst}");
    }

    #[test]
    fn sin_cos_are_accurate_on_the_circle() {
        let mut worst = 0.0f64;
        let mut x = 0.0f32;
        while x <= std::f32::consts::TAU {
            let (s, c) = fast_sin_cos(x);
            worst = worst.max((s as f64 - (x as f64).sin()).abs());
            worst = worst.max((c as f64 - (x as f64).cos()).abs());
            x += 1.3e-4;
        }
        assert!(worst < 1e-6, "worst sin/cos absolute error {worst}");
        let (s0, c0) = fast_sin_cos(0.0);
        assert_eq!(s0, 0.0);
        assert_eq!(c0, 1.0);
    }

    #[test]
    fn tanh_is_odd() {
        for &x in &[0.1f32, 0.5, 1.0, 2.5, 7.0] {
            assert_eq!(fast_tanh(-x), -fast_tanh(x));
        }
    }
}
