//! Integration tests for the data-parallel training subsystem: worker-count
//! invariance, bit-exact checkpoint resume, v1 read compatibility and
//! early stopping.

use passflow::{
    load_checkpoint, save_flow, train, EarlyStopConfig, FlowConfig, PassFlow, Schedule,
    TrainConfig, Trainer,
};
use passflow_nn::rng as nnrng;
use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};

fn tiny_flow(seed: u64) -> PassFlow {
    let mut rng = nnrng::seeded(seed);
    PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
}

fn corpus(n: usize) -> Vec<String> {
    SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(n))
        .generate(31)
        .into_passwords()
}

fn assert_weights_bit_equal(a: &PassFlow, b: &PassFlow, context: &str) {
    for (i, (wa, wb)) in a
        .weight_snapshot()
        .iter()
        .zip(b.weight_snapshot().iter())
        .enumerate()
    {
        for (x, y) in wa.as_slice().iter().zip(wb.as_slice()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: tensor {i} differs ({x} vs {y})"
            );
        }
    }
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "passflow_training_test_{name}_{}",
        std::process::id()
    ))
}

#[test]
fn one_optimizer_step_is_worker_count_invariant_bitwise() {
    // One epoch over one macro-batch = exactly one optimizer step. The
    // step must be bit-identical whether one worker or four computed the
    // micro-batch gradients.
    let passwords = corpus(128);
    let config = TrainConfig::tiny()
        .with_epochs(1)
        .with_batch_size(128)
        .with_micro_batch(32);

    let single = tiny_flow(17);
    train(&single, &passwords, &config.clone().with_grad_workers(1)).unwrap();

    let sharded = tiny_flow(17);
    train(&sharded, &passwords, &config.with_grad_workers(4)).unwrap();

    assert_weights_bit_equal(&single, &sharded, "after one step, 1 vs 4 workers");
}

#[test]
fn full_training_runs_are_worker_count_invariant_bitwise() {
    let passwords = corpus(400);
    let base = TrainConfig::tiny()
        .with_epochs(2)
        .with_batch_size(128)
        .with_micro_batch(32)
        .with_validation_fraction(0.2);

    let reference_flow = tiny_flow(19);
    let reference = train(
        &reference_flow,
        &passwords,
        &base.clone().with_grad_workers(1),
    )
    .unwrap();

    for workers in [2, 4] {
        let flow = tiny_flow(19);
        let report = train(&flow, &passwords, &base.clone().with_grad_workers(workers)).unwrap();
        assert_eq!(report, reference, "report diverged with {workers} workers");
        assert_weights_bit_equal(
            &reference_flow,
            &flow,
            &format!("full run, 1 vs {workers} workers"),
        );
    }
}

#[test]
fn killed_run_resumes_bit_exactly_from_a_checkpoint() {
    let passwords = corpus(400);
    // Trajectory-relevant knobs must match across runs; epochs and
    // checkpoint cadence may differ (schedules are step-indexed, so the
    // epoch budget does not shape per-step math).
    let base = TrainConfig::tiny()
        .with_batch_size(128)
        .with_micro_batch(32)
        .with_validation_fraction(0.25)
        .with_schedule(Schedule::Step {
            every: 4,
            gamma: 0.5,
        });

    // Uninterrupted 6-epoch run.
    let full_flow = tiny_flow(23);
    let full_report = train(&full_flow, &passwords, &base.clone().with_epochs(6)).unwrap();

    // "Killed" run: 3 epochs, checkpointed at the epoch-3 boundary.
    let path = tmp_path("resume");
    let killed_flow = tiny_flow(23);
    let killed_report = Trainer::new(
        &killed_flow,
        base.clone().with_epochs(3).with_checkpoint_every(3),
    )
    .unwrap()
    .with_checkpoint(&path)
    .train(&passwords)
    .unwrap();
    assert_eq!(killed_report.epochs.len(), 3);

    // Resume on a *fresh* flow (weights come from the checkpoint) and run
    // to the full 6 epochs.
    let resumed_flow = tiny_flow(99); // different init: must be overwritten
    let resumed_report = Trainer::new(&resumed_flow, base.with_epochs(6))
        .unwrap()
        .resume(&passwords, &path)
        .unwrap();
    let _ = std::fs::remove_file(&path);

    // The resumed run replays epochs 3..6 bit-exactly: identical weights
    // (which also proves the Adam moments and RNG position were restored —
    // any drift there would change every subsequent update) and an
    // identical full-run report, including the pre-kill history.
    assert_weights_bit_equal(&full_flow, &resumed_flow, "uninterrupted vs resumed");
    assert_eq!(resumed_report, full_report);
}

#[test]
fn resume_rejects_mismatched_training_config() {
    let passwords = corpus(200);
    let base = TrainConfig::tiny().with_epochs(2).with_batch_size(128);
    let path = tmp_path("mismatch");
    let flow = tiny_flow(29);
    Trainer::new(&flow, base.clone())
        .unwrap()
        .with_checkpoint(&path)
        .train(&passwords)
        .unwrap();

    // A different seed makes bit-exact resume impossible; the trainer must
    // refuse rather than silently produce a different trajectory.
    let other = tiny_flow(29);
    let err = Trainer::new(&other, base.clone().with_seed(123).with_epochs(4))
        .unwrap()
        .resume(&passwords, &path)
        .unwrap_err();
    assert!(
        matches!(err, passflow::FlowError::InvalidConfig(_)),
        "unexpected error {err:?}"
    );

    // The early-stop rule shapes best-weight selection and the stop epoch,
    // so it is trajectory-relevant too.
    let err = Trainer::new(
        &other,
        base.clone()
            .with_epochs(4)
            .with_early_stop(EarlyStopConfig::new(2)),
    )
    .unwrap()
    .resume(&passwords, &path)
    .unwrap_err();
    assert!(
        matches!(err, passflow::FlowError::InvalidConfig(_)),
        "unexpected error {err:?}"
    );

    // So is the corpus itself: a different password set shifts the
    // validation split and batch partition.
    let mut altered = passwords.clone();
    altered.push("extra1".to_string());
    let err = Trainer::new(&other, base.with_epochs(4))
        .unwrap()
        .resume(&altered, &path)
        .unwrap_err();
    let _ = std::fs::remove_file(&path);
    assert!(
        matches!(err, passflow::FlowError::InvalidConfig(_)),
        "unexpected error {err:?}"
    );
}

#[test]
fn resuming_a_stopped_run_does_not_train_extra_epochs() {
    // A checkpoint written at the epoch where early stopping fired records
    // the stop; resuming it must return the completed run unchanged rather
    // than training epochs the uninterrupted run never ran.
    let passwords = corpus(400);
    let config = TrainConfig::tiny()
        .with_epochs(20)
        .with_batch_size(128)
        .with_learning_rate(1e-7)
        .with_validation_fraction(0.25)
        .with_early_stop(EarlyStopConfig::new(2).with_min_delta(0.01));

    let path = tmp_path("stopped_resume");
    let flow = tiny_flow(43);
    let report = Trainer::new(&flow, config.clone())
        .unwrap()
        .with_checkpoint(&path)
        .train(&passwords)
        .unwrap();
    assert!(report.stopped_early);

    let resumed_flow = tiny_flow(43);
    let resumed_report = Trainer::new(&resumed_flow, config)
        .unwrap()
        .resume(&passwords, &path)
        .unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        resumed_report, report,
        "resume must not extend a stopped run"
    );
    assert_weights_bit_equal(&flow, &resumed_flow, "stopped-run resume");
}

#[test]
fn v1_checkpoints_remain_readable() {
    // A weights-only v1 file (the pre-subsystem format) loads through the
    // v2 reader with bit-exact weights and no training state.
    let flow = tiny_flow(31);
    let path = tmp_path("v1_compat");
    save_flow(&flow, &path).unwrap();
    let header = std::fs::read_to_string(&path).unwrap();
    assert!(header.starts_with("PASSFLOW v1"));

    let (restored, state) = load_checkpoint(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(state.is_none(), "v1 files carry no training state");
    assert_eq!(restored.config(), flow.config());
    assert_weights_bit_equal(&flow, &restored, "v1 read-compat");

    // And a v1 checkpoint cannot seed a resume (it has no state).
    let trainer_flow = tiny_flow(31);
    let path2 = tmp_path("v1_resume");
    save_flow(&flow, &path2).unwrap();
    let err = Trainer::new(&trainer_flow, TrainConfig::tiny())
        .unwrap()
        .resume(&corpus(100), &path2)
        .unwrap_err();
    let _ = std::fs::remove_file(&path2);
    assert!(matches!(err, passflow::FlowError::IncompatibleWeights(_)));
}

#[test]
fn early_stopping_triggers_on_a_plateaued_validation_nll() {
    let passwords = corpus(400);
    // A glacial learning rate freezes the validation NLL; with patience 2
    // and a 0.01-nat margin the run must stop after epoch 2 (one
    // improving epoch + two stale ones) despite a 20-epoch budget.
    let config = TrainConfig::tiny()
        .with_epochs(20)
        .with_batch_size(128)
        .with_learning_rate(1e-7)
        .with_validation_fraction(0.25)
        .with_early_stop(EarlyStopConfig::new(2).with_min_delta(0.01));

    let flow = tiny_flow(37);
    let report = train(&flow, &passwords, &config).unwrap();
    assert!(report.stopped_early, "expected an early stop");
    assert_eq!(report.epochs.len(), 3, "1 improving + 2 stale epochs");
    assert_eq!(report.best_epoch, 0);
    for e in &report.epochs {
        assert!(e.val_nll.is_some());
    }
}

#[test]
fn trained_flow_still_attacks_after_a_checkpoint_round_trip() {
    // End-to-end: train with workers + checkpointing, reload the artifact,
    // and verify the restored flow produces identical guesses.
    let passwords = corpus(500);
    let path = tmp_path("attack_after_resume");
    let flow = tiny_flow(41);
    Trainer::new(
        &flow,
        TrainConfig::tiny()
            .with_epochs(2)
            .with_batch_size(128)
            .with_grad_workers(2),
    )
    .unwrap()
    .with_checkpoint(&path)
    .train(&passwords)
    .unwrap();

    let (restored, state) = load_checkpoint(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(state.is_some());
    let mut rng_a = nnrng::seeded(7);
    let mut rng_b = nnrng::seeded(7);
    // The checkpoint stores the *last* epoch's weights (the resumable
    // state); sampling determinism is per-weight-set.
    let a = restored.sample_passwords(50, &mut rng_a);
    let b = restored.sample_passwords(50, &mut rng_b);
    assert_eq!(a, b);
    assert_eq!(flow.sample_passwords(10, &mut nnrng::seeded(3)).len(), 10);
}
