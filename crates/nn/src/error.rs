//! Error type for the neural-network substrate.

use std::fmt;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NnError>;

/// Errors produced by tensor and network operations.
///
/// Most tensor operations panic on shape mismatch (they indicate programmer
/// error, as in other numerics libraries); `NnError` is reserved for
/// conditions a caller can reasonably handle, such as deserializing a model
/// with incompatible dimensions.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// Two tensors had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A tensor could not be constructed because the data length does not
    /// match the requested shape.
    InvalidShape {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
        /// Length of the provided buffer.
        len: usize,
    },
    /// A non-finite value (NaN or infinity) was encountered where finite
    /// values are required.
    NonFinite {
        /// Context in which the non-finite value appeared.
        context: &'static str,
    },
    /// An optimizer-state snapshot did not align with the parameter set it
    /// was loaded against.
    StateMismatch {
        /// Number of parameters the state was expected to cover.
        expected: usize,
        /// Number of state entries actually provided.
        got: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            NnError::InvalidShape { rows, cols, len } => write!(
                f,
                "cannot reshape buffer of length {len} into {rows}x{cols}"
            ),
            NnError::NonFinite { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
            NnError::StateMismatch { expected, got } => {
                write!(
                    f,
                    "optimizer state covers {got} parameters, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = NnError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn invalid_shape_display() {
        let err = NnError::InvalidShape {
            rows: 2,
            cols: 2,
            len: 3,
        };
        assert!(err.to_string().contains("length 3"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let err: Box<dyn std::error::Error> = Box::new(NnError::NonFinite { context: "loss" });
        assert!(err.to_string().contains("loss"));
    }
}
