//! The `passflow-serve` binary: run the scoring service from the shell.
//!
//! ```text
//! passflow-serve [--addr 127.0.0.1:8077] [--checkpoint model.pf]
//!                [--table table.pfs] [--table-samples 2000]
//!                [--digest breach.pfd]
//!                [--max-batch 64] [--max-wait-ms 2] [--allow-shutdown]
//!                [--deadline-ms 10000] [--breaker-failures 5]
//!                [--breaker-cooldown-ms 5000]
//!                [--lanes N] [--handlers N] [--threads N] [--quantized]
//! ```
//!
//! Without `--checkpoint` a deterministic demo flow (seed 0, `tiny`
//! config) is served under the name `default` — enough for smoke tests
//! and the CI `serve-smoke` job. A [`SampleTable`] for guess-number
//! estimates is loaded from `--table` or built on startup from
//! `--table-samples` samples.
//!
//! `--lanes` shards the micro-batcher into N independent lanes with work
//! stealing (default 1); `--handlers` sizes the request-handler pool
//! (default 64 — idle keep-alive connections cost no threads either way).
//! `--threads` sets the batcher's GEMM thread count (default: the
//! `PASSFLOW_THREADS` environment variable, else 1; always clamped to the
//! host, and further clamped so `lanes × threads ≤ host`) — scores are
//! bit-identical at any lane or thread count. `--quantized`
//! serves the model through the **int8 quantized tier** (~4× smaller
//! weights, approximate scores); the measured error bound
//! (max |Δ log-prob| over a probe wordlist) is printed at startup so the
//! operator opts in knowingly.
//!
//! The process serves until `POST /admin/shutdown` (always enabled in the
//! binary: a server you cannot stop cleanly is not operable) or until
//! stdin reaches EOF when `--until-stdin-eof` is passed, then drains and
//! exits 0. Internal failures exit non-zero with a message on stderr.

use std::sync::Arc;

use passflow_core::{load_flow, FlowConfig, PassFlow, SampleTable};
use passflow_serve::{
    serve, BatcherConfig, BreakerConfig, ModelRegistry, ServedModel, ServerConfig,
};

struct Args {
    addr: String,
    checkpoint: Option<String>,
    table: Option<String>,
    table_samples: usize,
    digest: Option<String>,
    max_batch: usize,
    max_wait_ms: u64,
    deadline_ms: u64,
    breaker_failures: u32,
    breaker_cooldown_ms: u64,
    until_stdin_eof: bool,
    lanes: usize,
    handlers: Option<usize>,
    threads: Option<usize>,
    quantized: bool,
}

fn parse_args() -> Result<Args, String> {
    let defaults = (ServerConfig::default(), BreakerConfig::default());
    let mut args = Args {
        addr: "127.0.0.1:8077".to_string(),
        checkpoint: None,
        table: None,
        table_samples: 2_000,
        digest: None,
        max_batch: 64,
        max_wait_ms: 2,
        deadline_ms: defaults.0.default_deadline.as_millis() as u64,
        breaker_failures: defaults.1.failure_threshold,
        breaker_cooldown_ms: defaults.1.cooldown.as_millis() as u64,
        until_stdin_eof: false,
        lanes: 1,
        handlers: None,
        threads: None,
        quantized: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?),
            "--table" => args.table = Some(value("--table")?),
            "--digest" => args.digest = Some(value("--digest")?),
            "--table-samples" => {
                args.table_samples = value("--table-samples")?
                    .parse()
                    .map_err(|_| "--table-samples must be a number".to_string())?;
            }
            "--max-batch" => {
                args.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|_| "--max-batch must be a number".to_string())?;
            }
            "--max-wait-ms" => {
                args.max_wait_ms = value("--max-wait-ms")?
                    .parse()
                    .map_err(|_| "--max-wait-ms must be a number".to_string())?;
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "--deadline-ms must be a number".to_string())?;
            }
            "--breaker-failures" => {
                args.breaker_failures = value("--breaker-failures")?
                    .parse()
                    .map_err(|_| "--breaker-failures must be a number".to_string())?;
            }
            "--breaker-cooldown-ms" => {
                args.breaker_cooldown_ms = value("--breaker-cooldown-ms")?
                    .parse()
                    .map_err(|_| "--breaker-cooldown-ms must be a number".to_string())?;
            }
            "--lanes" => {
                args.lanes = value("--lanes")?
                    .parse()
                    .map_err(|_| "--lanes must be a number".to_string())?;
                if args.lanes == 0 {
                    return Err("--lanes must be at least 1".to_string());
                }
            }
            "--handlers" => {
                args.handlers = Some(
                    value("--handlers")?
                        .parse()
                        .map_err(|_| "--handlers must be a number".to_string())?,
                );
            }
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|_| "--threads must be a number".to_string())?,
                );
            }
            "--quantized" => args.quantized = true,
            "--allow-shutdown" => {} // accepted for compatibility; always on
            "--until-stdin-eof" => args.until_stdin_eof = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    let flow: PassFlow = match &args.checkpoint {
        Some(path) => load_flow(path).map_err(|e| format!("loading {path:?}: {e}"))?,
        None => {
            let mut rng = passflow_nn_seeded(0);
            PassFlow::new(FlowConfig::tiny(), &mut rng)
                .map_err(|e| format!("building the demo flow: {e}"))?
        }
    };
    let table = match &args.table {
        Some(path) => Some(SampleTable::load(path).map_err(|e| format!("loading {path:?}: {e}"))?),
        None if args.table_samples > 0 => {
            eprintln!(
                "building a {}-sample strength table (pass --table-samples 0 to skip)…",
                args.table_samples
            );
            Some(SampleTable::build(&flow, args.table_samples, 7))
        }
        None => None,
    };

    let registry = Arc::new(ModelRegistry::new());
    if args.quantized {
        // Measure and surface the model's quantization error before
        // serving approximate scores — the opt-in must be informed.
        let exact = passflow_core::FlowScorer::new(&flow);
        let quantized = passflow_core::QuantizedScorer::from_scorer(&exact);
        let probe: Vec<String> = (0..512).map(|i| format!("probe{i}")).collect();
        let report = passflow_core::probe_quantization(&exact, &quantized, &probe);
        eprintln!(
            "quantized tier: max |Δ log-prob| {:.6}, mean {:.6} over {} probes; \
             weights {:.2}× smaller ({} → {} bytes)",
            report.max_abs_delta,
            report.mean_abs_delta,
            report.samples,
            report.compression(),
            report.exact_bytes,
            report.quantized_bytes
        );
        registry.insert(ServedModel::from_flow_quantized("default", &flow, 1, table));
    } else {
        registry.insert(ServedModel::from_flow("default", &flow, 1, table));
    }

    let digest = match &args.digest {
        Some(path) => Some(Arc::new(
            passflow_store::DigestStore::open(path)
                .map_err(|e| format!("loading {path:?}: {e}"))?,
        )),
        None => None,
    };
    if let Some(store) = &digest {
        eprintln!(
            "breach digest loaded: {} records in {} blocks ({} bytes)",
            store.record_count(),
            store.block_count(),
            store.file_len()
        );
    }

    let config = ServerConfig {
        addr: args
            .addr
            .parse()
            .map_err(|e| format!("bad --addr {:?}: {e}", args.addr))?,
        batcher: BatcherConfig {
            lanes: args.lanes,
            max_batch: args.max_batch,
            max_wait: std::time::Duration::from_millis(args.max_wait_ms),
            threads: passflow_nn::resolve_threads(args.threads),
            ..BatcherConfig::default()
        },
        handler_threads: args
            .handlers
            .unwrap_or(ServerConfig::default().handler_threads)
            .max(1),
        default_deadline: std::time::Duration::from_millis(args.deadline_ms),
        breaker: BreakerConfig {
            failure_threshold: args.breaker_failures.max(1),
            cooldown: std::time::Duration::from_millis(args.breaker_cooldown_ms),
        },
        allow_shutdown: true,
        digest,
        ..ServerConfig::default()
    };
    let server = serve(config, registry).map_err(|e| format!("bind failed: {e}"))?;
    eprintln!(
        "serving on http://{} with {} batcher lane(s) (POST /v1/score, \
         POST /v1/logprob, POST /v1/screen, GET /v1/range/{{prefix5}}, \
         GET /v1/models, GET /healthz, GET /metrics; \
         stop with POST /admin/shutdown)",
        server.addr(),
        args.lanes
    );

    if args.until_stdin_eof {
        // Also stop when our parent closes stdin (CI-friendly lifecycle).
        let mut sink = String::new();
        let _ = std::io::Read::read_to_string(&mut std::io::stdin(), &mut sink);
        server.shutdown();
    }
    server.join();
    eprintln!("shutdown complete");
    Ok(())
}

/// Seeded RNG without pulling `rand` trait imports into scope at the top.
fn passflow_nn_seeded(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn main() {
    if let Err(message) = run() {
        eprintln!("passflow-serve: {message}");
        std::process::exit(1);
    }
}
