//! Regenerates Table I: the Dynamic Sampling parameters per guess budget.

use passflow_bench::{emit, scale_from_env};
use passflow_eval::tables;

fn main() {
    let scale = scale_from_env();
    let table = tables::table1(&scale.budgets);
    emit(&table, "table1");
}
