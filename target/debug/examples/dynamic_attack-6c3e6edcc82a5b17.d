/root/repo/target/debug/examples/dynamic_attack-6c3e6edcc82a5b17.d: examples/dynamic_attack.rs

/root/repo/target/debug/examples/dynamic_attack-6c3e6edcc82a5b17: examples/dynamic_attack.rs

examples/dynamic_attack.rs:
