//! The legacy guessing-attack entry point, now a thin wrapper over the
//! unified [`Attack`](crate::Attack) engine.
//!
//! Historically this module implemented the evaluation protocol behind
//! Tables II and III for the flow only, while `passflow-eval` carried a
//! second, incompatible copy for the baselines. Both now delegate to
//! [`crate::engine`]; [`run_attack`] and [`AttackConfig`] remain so existing
//! callers keep compiling, and new code should use the builder API directly:
//!
//! ```rust,no_run
//! # use std::collections::HashSet;
//! # use passflow_core::{Attack, FlowConfig, PassFlow};
//! # use rand::SeedableRng;
//! # let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! # let flow = PassFlow::new(FlowConfig::tiny(), &mut rng)?;
//! # let targets: HashSet<String> = HashSet::new();
//! let outcome = Attack::new(&targets).budget(2_000).run(&flow)?;
//! # Ok::<(), passflow_core::FlowError>(())
//! ```

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::engine::{Attack, AttackOutcome};
use crate::flow::PassFlow;
use crate::sample::GuessingStrategy;

/// Configuration of a guessing attack (legacy form; the
/// [`Attack`](crate::Attack) builder expresses the same parameters).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Total number of guesses to generate.
    pub num_guesses: u64,
    /// How many latent samples are drawn and inverted per batch.
    pub batch_size: usize,
    /// Generation strategy (static / dynamic / dynamic + smoothing).
    pub strategy: GuessingStrategy,
    /// Intermediate budgets at which a
    /// [`CheckpointReport`](crate::CheckpointReport) is recorded. The final
    /// budget is always reported, whether listed here or not.
    pub checkpoints: Vec<u64>,
    /// RNG seed.
    pub seed: u64,
    /// How many non-matched guesses to keep for qualitative analysis
    /// (Table IV).
    pub nonmatched_sample_size: usize,
}

impl AttackConfig {
    /// Creates a static-sampling attack with a single final checkpoint.
    pub fn quick(num_guesses: u64) -> Self {
        AttackConfig {
            num_guesses,
            batch_size: 1024,
            strategy: GuessingStrategy::Static,
            checkpoints: Vec::new(),
            seed: 0,
            nonmatched_sample_size: 40,
        }
    }

    /// Sets the strategy (builder style).
    #[must_use]
    pub fn with_strategy(mut self, strategy: GuessingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the checkpoints (builder style). They are sorted and
    /// deduplicated; checkpoints beyond the total budget are dropped.
    #[must_use]
    pub fn with_checkpoints(mut self, checkpoints: Vec<u64>) -> Self {
        self.checkpoints = checkpoints;
        self
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sampling batch size (builder style).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Builds the equivalent [`Attack`] over `targets`.
    pub fn to_attack<'a>(&self, targets: &'a HashSet<String>) -> Attack<'a> {
        Attack::new(targets)
            .budget(self.num_guesses)
            .batch_size(self.batch_size)
            .strategy(self.strategy.clone())
            .checkpoints(self.checkpoints.clone())
            .seed(self.seed)
            .nonmatched_samples(self.nonmatched_sample_size)
    }
}

/// Runs a guessing attack with the given flow and strategy against a set of
/// target passwords (the cleaned, unique test set).
///
/// The match percentage is computed relative to `targets.len()`, mirroring
/// the paper's "% of matched passwords over the RockYou test set".
#[deprecated(
    since = "0.1.0",
    note = "use the unified engine: `passflow_core::Attack::new(targets).run(&flow)`"
)]
pub fn run_attack(
    flow: &PassFlow,
    targets: &HashSet<String>,
    config: &AttackConfig,
) -> AttackOutcome {
    config
        .to_attack(targets)
        .run(flow)
        .expect("PassFlow implements LatentGuesser, so every strategy is runnable")
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::config::{FlowConfig, TrainConfig};
    use crate::sample::{DynamicParams, GaussianSmoothing};
    use crate::train::train;
    use passflow_nn::rng as nnrng;
    use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};

    /// A small trained flow and a matching test set, shared by the tests in
    /// this module (training even a tiny flow dominates test time, so do it
    /// once).
    fn trained_fixture() -> (PassFlow, HashSet<String>) {
        use passflow_nn::Tensor;
        use std::sync::OnceLock;
        static FIXTURE: OnceLock<(Vec<Tensor>, Vec<String>)> = OnceLock::new();
        let (weights, test) = FIXTURE.get_or_init(|| {
            let corpus =
                SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(4_000)).generate(77);
            let split = corpus.paper_split(0.8, 1_500, 7);
            let mut rng = nnrng::seeded(5);
            let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
            train(
                &flow,
                &split.train,
                &TrainConfig::tiny().with_epochs(4).with_batch_size(256),
            )
            .unwrap();
            (flow.weight_snapshot(), split.test_unique)
        });
        let mut rng = nnrng::seeded(5);
        let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
        flow.load_weights(weights).unwrap();
        (flow, test.iter().cloned().collect())
    }

    #[test]
    fn static_attack_reports_consistent_counts() {
        let (flow, targets) = trained_fixture();
        let outcome = run_attack(
            &flow,
            &targets,
            &AttackConfig::quick(2_000).with_checkpoints(vec![500, 1_000]),
        );
        assert_eq!(outcome.strategy, "PassFlow-Static");
        assert_eq!(outcome.checkpoints.len(), 3);
        assert_eq!(outcome.checkpoints[0].guesses, 500);
        assert_eq!(outcome.checkpoints[1].guesses, 1_000);
        assert_eq!(outcome.final_report().guesses, 2_000);
        // Monotonicity: unique and matched never decrease with budget.
        for pair in outcome.checkpoints.windows(2) {
            assert!(pair[1].unique >= pair[0].unique);
            assert!(pair[1].matched >= pair[0].matched);
        }
        for c in &outcome.checkpoints {
            assert!(c.unique <= c.guesses);
            assert!(c.matched as usize <= targets.len());
            assert!((0.0..=100.0).contains(&c.matched_percent));
        }
        assert_eq!(
            outcome.final_report().matched as usize,
            outcome.matched_passwords.len()
        );
        assert!(outcome.at_budget(500).is_some());
        assert!(outcome.at_budget(123).is_none());
    }

    #[test]
    fn matched_passwords_are_really_in_the_target_set() {
        let (flow, targets) = trained_fixture();
        let outcome = run_attack(&flow, &targets, &AttackConfig::quick(3_000));
        for p in &outcome.matched_passwords {
            assert!(targets.contains(p));
        }
        for p in &outcome.nonmatched_samples {
            assert!(!targets.contains(p));
        }
        assert!(outcome.nonmatched_samples.len() <= 40);
    }

    #[test]
    fn attack_is_deterministic_for_fixed_seed() {
        let (flow, targets) = trained_fixture();
        let a = run_attack(&flow, &targets, &AttackConfig::quick(1_000).with_seed(3));
        let b = run_attack(&flow, &targets, &AttackConfig::quick(1_000).with_seed(3));
        let c = run_attack(&flow, &targets, &AttackConfig::quick(1_000).with_seed(4));
        assert_eq!(a, b);
        assert_ne!(a.final_report().unique, 0);
        // Different seeds explore differently (unique counts almost surely
        // differ on 1 000 guesses).
        assert_ne!(
            (a.final_report().unique, a.final_report().matched),
            (c.final_report().unique, c.final_report().matched)
        );
    }

    #[test]
    fn dynamic_attack_uses_matches_and_still_reports_consistently() {
        let (flow, targets) = trained_fixture();
        let strategy = GuessingStrategy::Dynamic(DynamicParams::new(0, 0.12, 4));
        let outcome = run_attack(
            &flow,
            &targets,
            &AttackConfig::quick(3_000).with_strategy(strategy),
        );
        assert_eq!(outcome.strategy, "PassFlow-Dynamic");
        let final_report = outcome.final_report();
        assert!(final_report.unique <= final_report.guesses);
        assert_eq!(
            final_report.matched as usize,
            outcome.matched_passwords.len()
        );
    }

    #[test]
    fn smoothing_increases_unique_guesses_under_dynamic_sampling() {
        let (flow, targets) = trained_fixture();
        // Aggressively concentrated dynamic sampling to force collisions.
        let params = DynamicParams::new(0, 0.03, 1_000);
        let without = run_attack(
            &flow,
            &targets,
            &AttackConfig::quick(2_000)
                .with_strategy(GuessingStrategy::Dynamic(params))
                .with_seed(11),
        );
        let with = run_attack(
            &flow,
            &targets,
            &AttackConfig::quick(2_000)
                .with_strategy(GuessingStrategy::DynamicWithSmoothing {
                    params,
                    smoothing: GaussianSmoothing::new(0.02, 6),
                })
                .with_seed(11),
        );
        assert!(
            with.final_report().unique >= without.final_report().unique,
            "GS should not reduce uniques: {} vs {}",
            with.final_report().unique,
            without.final_report().unique
        );
    }

    #[test]
    fn config_converts_to_the_builder_faithfully() {
        let (flow, targets) = trained_fixture();
        let config = AttackConfig::quick(1_500)
            .with_checkpoints(vec![400, 900])
            .with_seed(21)
            .with_batch_size(128);
        let from_wrapper = run_attack(&flow, &targets, &config);
        let from_builder = config.to_attack(&targets).run(&flow).unwrap();
        assert_eq!(from_wrapper, from_builder);
    }

    #[test]
    fn empty_target_set_yields_zero_percent() {
        let (flow, _) = trained_fixture();
        let outcome = run_attack(&flow, &HashSet::new(), &AttackConfig::quick(200));
        assert_eq!(outcome.final_report().matched, 0);
        assert_eq!(outcome.final_report().matched_percent, 0.0);
    }
}
