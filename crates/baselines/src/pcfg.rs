//! Weir-style probabilistic context-free grammar (PCFG) guesser.
//!
//! Weir et al. (S&P 2009, reference [43] of the paper) model passwords as a
//! sequence of segments of a single character class (letters, digits,
//! symbols). The grammar learns (1) the distribution over structure
//! templates such as `L5 D2`, and (2) for digit and symbol segments, the
//! distribution over concrete terminal strings; letter segments are filled
//! from the frequency-ranked dictionary of letter segments seen in training.

use std::collections::HashMap;

use rand::{Rng, RngCore};

use passflow_core::{Guesser, ProbabilityModel};
use passflow_nn::rng as nnrng;
use passflow_passwords::stats::CharClass;

/// One segment of a structure template: a character class and a length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Segment {
    class: CharClass,
    len: usize,
}

/// A Weir-style PCFG password guesser.
#[derive(Clone, Debug)]
pub struct PcfgModel {
    /// Structure templates and their observed counts.
    structures: Vec<(Vec<Segment>, u32)>,
    /// Structure counts keyed by template, for O(1) scoring lookups.
    structure_counts: HashMap<Vec<Segment>, u32>,
    /// Total observations across all structures (invariant of training).
    structure_total: f64,
    /// Terminal strings per segment, with counts.
    terminals: HashMap<Segment, Vec<(String, u32)>>,
    /// Total observations per segment (invariant of training).
    terminal_totals: HashMap<Segment, f64>,
    max_len: usize,
}

fn segment_password(password: &str) -> Vec<(Segment, String)> {
    let mut segments: Vec<(Segment, String)> = Vec::new();
    for c in password.chars() {
        let class = CharClass::of(c);
        match segments.last_mut() {
            Some((segment, text)) if segment.class == class => {
                segment.len += 1;
                text.push(c);
            }
            _ => segments.push((Segment { class, len: 1 }, c.to_string())),
        }
    }
    segments
}

impl PcfgModel {
    /// Learns structure and terminal distributions from a corpus.
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty.
    pub fn train(passwords: &[String], max_len: usize) -> Self {
        assert!(!passwords.is_empty(), "training corpus must not be empty");
        let mut structure_counts: HashMap<Vec<Segment>, u32> = HashMap::new();
        let mut terminal_counts: HashMap<Segment, HashMap<String, u32>> = HashMap::new();

        for password in passwords {
            if password.is_empty() || password.chars().count() > max_len {
                continue;
            }
            let segments = segment_password(password);
            let structure: Vec<Segment> = segments.iter().map(|(s, _)| *s).collect();
            *structure_counts.entry(structure).or_default() += 1;
            for (segment, text) in segments {
                *terminal_counts
                    .entry(segment)
                    .or_default()
                    .entry(text)
                    .or_default() += 1;
            }
        }
        assert!(
            !structure_counts.is_empty(),
            "no usable passwords in the training corpus"
        );

        let mut structures: Vec<(Vec<Segment>, u32)> = structure_counts
            .iter()
            .map(|(s, c)| (s.clone(), *c))
            .collect();
        // Tie-break equally frequent structures by the template itself:
        // `HashMap` iteration order is randomized per process, and without a
        // total order here the sampling distribution — and therefore every
        // "same seed, same guesses" guarantee — would drift across runs.
        structures.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let structure_total: f64 = structures.iter().map(|(_, c)| f64::from(*c)).sum();
        let terminals: HashMap<Segment, Vec<(String, u32)>> = terminal_counts
            .into_iter()
            .map(|(segment, counts)| {
                let mut list: Vec<(String, u32)> = counts.into_iter().collect();
                list.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                (segment, list)
            })
            .collect();
        let terminal_totals = terminals
            .iter()
            .map(|(segment, list)| {
                (
                    *segment,
                    list.iter().map(|(_, c)| f64::from(*c)).sum::<f64>(),
                )
            })
            .collect();

        PcfgModel {
            structures,
            structure_counts,
            structure_total,
            terminals,
            terminal_totals,
            max_len,
        }
    }

    /// Number of distinct structure templates learned.
    pub fn num_structures(&self) -> usize {
        self.structures.len()
    }

    /// The most frequent structure template, as a compact string such as
    /// `"L6D2"`.
    pub fn top_structure(&self) -> String {
        Self::format_structure(&self.structures[0].0)
    }

    fn format_structure(structure: &[Segment]) -> String {
        structure
            .iter()
            .map(|s| format!("{}{}", s.class.code(), s.len))
            .collect()
    }

    fn sample_structure<R: Rng + ?Sized>(&self, rng: &mut R) -> &[Segment] {
        let weights: Vec<f32> = self.structures.iter().map(|(_, c)| *c as f32).collect();
        &self.structures[nnrng::sample_discrete(&weights, rng)].0
    }

    fn sample_terminal<R: Rng + ?Sized>(&self, segment: Segment, rng: &mut R) -> String {
        match self.terminals.get(&segment) {
            Some(list) => {
                let weights: Vec<f32> = list.iter().map(|(_, c)| *c as f32).collect();
                list[nnrng::sample_discrete(&weights, rng)].0.clone()
            }
            // Unseen segment (cannot happen for structures learned from the
            // same corpus, but keep sampling total): fill with 'a' or '1'.
            None => {
                let filler = match segment.class {
                    CharClass::Letter => 'a',
                    CharClass::Digit => '1',
                    CharClass::Symbol => '!',
                };
                std::iter::repeat_n(filler, segment.len).collect()
            }
        }
    }

    /// Exact log-probability of `password` under the grammar, or `None` if
    /// the password uses a structure or terminal never seen in training
    /// (the grammar assigns it probability zero), is empty, or exceeds the
    /// maximum length.
    ///
    /// A password segments uniquely into maximal same-class runs, so its
    /// probability is exactly the structure probability times each
    /// segment's terminal probability — the same distribution
    /// [`sample_password`](Self::sample_password) draws from, which is what
    /// makes the grammar an *exact* [`ProbabilityModel`]: summed over the
    /// grammar's full support, `exp(log_prob)` is 1 (asserted by
    /// `tests/strength.rs`).
    pub fn log_prob(&self, password: &str) -> Option<f64> {
        if password.is_empty() || password.chars().count() > self.max_len {
            return None;
        }
        let segments = segment_password(password);
        let structure: Vec<Segment> = segments.iter().map(|(s, _)| *s).collect();
        let structure_count = *self.structure_counts.get(&structure)?;
        let mut total = (f64::from(structure_count) / self.structure_total).ln();
        for (segment, text) in segments {
            let list = self.terminals.get(&segment)?;
            let count = list.iter().find(|(t, _)| *t == text).map(|(_, c)| *c)?;
            let segment_total = self.terminal_totals[&segment];
            total += (f64::from(count) / segment_total).ln();
        }
        Some(total)
    }

    /// Samples a single password.
    pub fn sample_password<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let structure = self.sample_structure(rng).to_vec();
        let mut out = String::new();
        for segment in structure {
            out.push_str(&self.sample_terminal(segment, rng));
        }
        out.chars().take(self.max_len).collect()
    }
}

impl Guesser for PcfgModel {
    fn name(&self) -> &str {
        "PCFG"
    }

    fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
        (0..n).map(|_| self.sample_password(rng)).collect()
    }
}

impl ProbabilityModel for PcfgModel {
    fn password_log_prob(&self, password: &str) -> Option<f64> {
        self.log_prob(password)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use passflow_passwords::stats::structure_template;
    use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};

    fn corpus(n: usize) -> Vec<String> {
        SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(n))
            .generate(53)
            .into_passwords()
    }

    #[test]
    fn segmentation_groups_runs_of_the_same_class() {
        let segments = segment_password("abc12!x");
        let classes: Vec<(char, usize)> = segments
            .iter()
            .map(|(s, _)| (s.class.code(), s.len))
            .collect();
        assert_eq!(classes, vec![('L', 3), ('D', 2), ('S', 1), ('L', 1)]);
        let texts: Vec<&str> = segments.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, vec!["abc", "12", "!", "x"]);
    }

    #[test]
    fn training_learns_structures_and_terminals() {
        let model = PcfgModel::train(&corpus(3_000), 10);
        assert!(model.num_structures() > 10);
        // In a RockYou-like corpus the dominant structures are all-letters or
        // letters+digits.
        let top = model.top_structure();
        assert!(top.starts_with('L'), "unexpected top structure {top}");
    }

    #[test]
    fn samples_follow_learned_structures() {
        let train = corpus(3_000);
        let model = PcfgModel::train(&train, 10);
        let mut rng = nnrng::seeded(2);
        let train_templates: std::collections::HashSet<String> =
            train.iter().map(|p| structure_template(p)).collect();
        for _ in 0..100 {
            let p = model.sample_password(&mut rng);
            assert!(!p.is_empty());
            assert!(p.chars().count() <= 10);
            assert!(
                train_templates.contains(&structure_template(&p)),
                "sample {p} has unseen structure"
            );
        }
    }

    #[test]
    fn generates_some_training_passwords_verbatim() {
        // A PCFG recombines observed terminals, so frequent training
        // passwords should re-appear among a few thousand guesses.
        let train = corpus(3_000);
        let model = PcfgModel::train(&train, 10);
        let mut rng = nnrng::seeded(3);
        let guesses = model.generate_batch(3_000, &mut rng);
        let train_set: std::collections::HashSet<&String> = train.iter().collect();
        let hits = guesses.iter().filter(|g| train_set.contains(g)).count();
        assert!(hits > 0, "no guess ever matched the training corpus");
    }

    #[test]
    fn guesser_trait_works() {
        let model = PcfgModel::train(&corpus(500), 10);
        let mut rng = nnrng::seeded(4);
        assert_eq!(model.generate_batch(10, &mut rng).len(), 10);
        assert_eq!(model.name(), "PCFG");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_corpus_rejected() {
        let _ = PcfgModel::train(&[], 10);
    }

    #[test]
    fn long_passwords_are_ignored_during_training() {
        let passwords = vec!["short1".to_string(), "waaaaaaaaaaaaytoolong123".to_string()];
        let model = PcfgModel::train(&passwords, 10);
        assert_eq!(model.num_structures(), 1);
    }
}
