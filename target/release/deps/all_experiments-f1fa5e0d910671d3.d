/root/repo/target/release/deps/all_experiments-f1fa5e0d910671d3.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/release/deps/all_experiments-f1fa5e0d910671d3: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
