//! The password character set.
//!
//! PassFlow encodes each character as its index in a fixed alphabet,
//! normalized by the alphabet size. Index `0` is reserved for the padding
//! symbol that fills positions beyond the end of a password, so a password of
//! length `k < max_len` occupies the first `k` slots of its feature vector.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Default character set: lowercase, uppercase, digits and common symbols —
/// the characters that dominate leaked password corpora.
const DEFAULT_CHARS: &str =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789!@#$%^&*()-_+=.?";

/// A bidirectional mapping between characters and dense indices.
///
/// Index `0` is always the padding symbol; real characters occupy indices
/// `1..=len()`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alphabet {
    chars: Vec<char>,
}

impl Default for Alphabet {
    fn default() -> Self {
        Self::from_chars(DEFAULT_CHARS.chars())
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Alphabet({} symbols)", self.chars.len())
    }
}

impl Alphabet {
    /// Builds an alphabet from an iterator of characters, preserving first
    /// occurrence order and dropping duplicates.
    pub fn from_chars(chars: impl IntoIterator<Item = char>) -> Self {
        let mut seen = Vec::new();
        for c in chars {
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        Alphabet { chars: seen }
    }

    /// Builds the smallest alphabet covering every character in the given
    /// passwords (useful for tests with restricted corpora).
    pub fn from_passwords<'a>(passwords: impl IntoIterator<Item = &'a str>) -> Self {
        Self::from_chars(passwords.into_iter().flat_map(|p| p.chars()))
    }

    /// Number of real characters (excluding the padding symbol).
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// Returns `true` if the alphabet contains no characters.
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// Total number of symbols including padding; this is the normalization
    /// constant used by the encoder.
    pub fn num_symbols(&self) -> usize {
        self.chars.len() + 1
    }

    /// Index of a character (1-based; 0 is padding), or `None` if the
    /// character is not part of the alphabet.
    pub fn index_of(&self, c: char) -> Option<usize> {
        self.chars.iter().position(|&x| x == c).map(|i| i + 1)
    }

    /// Character at the given index, or `None` for index 0 (padding) and
    /// out-of-range indices.
    pub fn char_at(&self, index: usize) -> Option<char> {
        if index == 0 {
            None
        } else {
            self.chars.get(index - 1).copied()
        }
    }

    /// Returns `true` if every character of `password` is in the alphabet.
    pub fn covers(&self, password: &str) -> bool {
        password.chars().all(|c| self.index_of(c).is_some())
    }

    /// Iterator over the real characters in index order.
    pub fn iter(&self) -> impl Iterator<Item = char> + '_ {
        self.chars.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_alphabet_covers_common_passwords() {
        let a = Alphabet::default();
        assert!(a.covers("password123"));
        assert!(a.covers("P@ssw0rd!"));
        assert!(a.covers("jimmy91"));
        assert!(!a.covers("contraseña"));
    }

    #[test]
    fn indices_are_one_based_and_round_trip() {
        let a = Alphabet::default();
        for c in "az09!".chars() {
            let idx = a.index_of(c).unwrap();
            assert!(idx >= 1);
            assert_eq!(a.char_at(idx), Some(c));
        }
        assert_eq!(a.char_at(0), None);
        assert_eq!(a.char_at(a.num_symbols() + 5), None);
    }

    #[test]
    fn from_chars_deduplicates_preserving_order() {
        let a = Alphabet::from_chars("abca".chars());
        assert_eq!(a.len(), 3);
        assert_eq!(a.index_of('a'), Some(1));
        assert_eq!(a.index_of('b'), Some(2));
        assert_eq!(a.index_of('c'), Some(3));
    }

    #[test]
    fn from_passwords_builds_minimal_cover() {
        let a = Alphabet::from_passwords(["abc", "cde"]);
        assert_eq!(a.len(), 5);
        assert!(a.covers("abcde"));
        assert!(!a.covers("f"));
    }

    #[test]
    fn num_symbols_includes_padding() {
        let a = Alphabet::from_chars("xyz".chars());
        assert_eq!(a.len(), 3);
        assert_eq!(a.num_symbols(), 4);
    }

    #[test]
    fn display_and_iter() {
        let a = Alphabet::from_chars("ab".chars());
        assert!(a.to_string().contains('2'));
        assert_eq!(a.iter().collect::<String>(), "ab");
        assert!(!a.is_empty());
    }
}
