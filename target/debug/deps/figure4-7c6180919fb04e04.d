/root/repo/target/debug/deps/figure4-7c6180919fb04e04.d: crates/bench/src/bin/figure4.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4-7c6180919fb04e04.rmeta: crates/bench/src/bin/figure4.rs Cargo.toml

crates/bench/src/bin/figure4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
