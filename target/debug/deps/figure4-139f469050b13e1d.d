/root/repo/target/debug/deps/figure4-139f469050b13e1d.d: crates/bench/src/bin/figure4.rs Cargo.toml

/root/repo/target/debug/deps/libfigure4-139f469050b13e1d.rmeta: crates/bench/src/bin/figure4.rs Cargo.toml

crates/bench/src/bin/figure4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
