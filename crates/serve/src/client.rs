//! A minimal blocking HTTP/1.1 client for loopback use.
//!
//! The conformance tests, the load generator and the serve example all
//! need the same few lines of "open a socket, write a request, parse a
//! response" — this module keeps them in one place. It is intentionally
//! not a general HTTP client: one host, `Content-Length` framing only,
//! keep-alive by default.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code plus body bytes.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (per `Content-Length`).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy; serving responses are always UTF-8).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the server.
pub struct Connection {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Connection {
    /// Connects to `addr` with `timeout` applied to connect and reads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn open(addr: SocketAddr, timeout: Duration) -> std::io::Result<Connection> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Connection { reader, stream })
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; malformed responses surface as
    /// `InvalidData`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        self.send(method, path, body)?;
        self.read_response()
    }

    /// Writes one request without waiting for the response (the pipelining
    /// half; pair with [`read_response`](Self::read_response)).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) -> std::io::Result<()> {
        let body = body.unwrap_or("");
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nhost: loopback\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        )?;
        self.stream.flush()
    }

    /// Reads one response off the connection.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; malformed responses surface as
    /// `InvalidData`.
    pub fn read_response(&mut self) -> std::io::Result<ClientResponse> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before a response",
            ));
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("truncated response headers"));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("malformed content-length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse { status, body })
    }

    /// The raw stream (for tests that want to write split/partial bytes).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// One-shot convenience: open, request, close.
///
/// # Errors
///
/// Propagates socket errors.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    Connection::open(addr, Duration::from_secs(30))?.request(method, path, body)
}
