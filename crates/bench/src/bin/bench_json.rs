//! Emits the repo's benchmark trajectory as JSON (`BENCH_*.json`).
//!
//! A minimal xtask-style harness: it times the acceptance benchmarks — the
//! flow inverse on the `eval_6x48` architecture, the end-to-end guessing
//! attack, one training epoch at 1 vs N gradient workers, and the strength
//! meter's table-build/lookup/scoring path — plus the GEMM microkernel, a
//! GEMM size × thread-count sweep (with in-bench bit-equality asserts
//! against the single-threaded result), and the int8 quantized tier
//! against its exact f32 counterpart — and writes the medians to a JSON
//! file so CI and successive PRs can track a machine-local trajectory.
//! The JSON layout (`passflow-bench-v2`) is specified once in DESIGN.md,
//! "Artifact schemas"; the header records `host_cpus`, the compiling
//! rustc, and the RUSTFLAGS in effect (target-cpu provenance), because
//! none of the throughput numbers are comparable without them.
//!
//! ```text
//! cargo run --release -p passflow-bench --bin bench_json -- \
//!     [--quick] [--out BENCH_local.json]
//! ```

use std::collections::HashSet;
use std::fmt::Write as _;
use std::time::Instant;

use passflow_core::{
    Attack, FlowConfig, FlowWorkspace, GuessingStrategy, PassFlow, ProbabilityModel, SampleTable,
    TrainConfig, Trainer,
};
use passflow_nn::rng as nnrng;
use passflow_nn::Tensor;
use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};

/// Median seconds/iteration over `samples` timed samples of an adaptively
/// chosen iteration count (mirrors the vendored criterion shim).
fn median_secs(samples: usize, mut body: impl FnMut()) -> f64 {
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            body();
        }
        if start.elapsed().as_millis() >= 5 || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    let mut per_iter: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                body();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    per_iter[per_iter.len() / 2]
}

struct Entry {
    name: String,
    seconds_per_iter: f64,
    elements_per_iter: u64,
}

/// Summary of the quantized tier's fidelity, emitted in the JSON header
/// alongside the timing rows so the speedup always travels with its error.
struct QuantSummary {
    max_abs_delta_logprob: f64,
    mean_abs_delta_logprob: f64,
    compression: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_local.json".to_string());
    let samples = if quick { 3 } else { 15 };

    let mut entries = Vec::new();

    // -- GEMM microkernel ---------------------------------------------------
    let mut rng = nnrng::seeded(9);
    let a = Tensor::randn(256, 64, &mut rng);
    let b = Tensor::randn(64, 64, &mut rng);
    let mut out = Tensor::default();
    let s = median_secs(samples, || {
        passflow_nn::kernels::matmul_into(&a, &b, &mut out);
    });
    entries.push(Entry {
        name: "tensor/matmul_256x64x64".to_string(),
        seconds_per_iter: s,
        elements_per_iter: 256 * 64 * 64,
    });

    // -- GEMM size × thread-count sweep -------------------------------------
    // The ROADMAP asks for the scaling curve, not one point. Each
    // (shape, threads) cell is timed independently, and every threaded
    // result is asserted bit-identical to the single-threaded one — the
    // contract the row-partitioned kernel keeps at any thread count. On a
    // single-vCPU host the thread counts tie; the `host_cpus` header field
    // records which regime produced the numbers.
    {
        use passflow_nn::ThreadPool;
        for &(m, k, n) in &[(64usize, 64usize, 64usize), (256, 64, 64), (256, 256, 256)] {
            let mut rng = nnrng::seeded(41);
            let a = Tensor::randn(m, k, &mut rng);
            let b = Tensor::randn(k, n, &mut rng);
            let mut reference = Tensor::default();
            passflow_nn::kernels::matmul_into(&a, &b, &mut reference);
            for threads in [1usize, 2, 4] {
                let pool = (threads > 1).then(|| ThreadPool::new(threads));
                let mut out = Tensor::default();
                let s = median_secs(samples, || {
                    passflow_nn::kernels::matmul_into_with(&a, &b, &mut out, pool.as_ref());
                });
                assert_eq!(
                    out.as_slice(),
                    reference.as_slice(),
                    "GEMM at {threads} threads must be bit-identical to 1 thread"
                );
                entries.push(Entry {
                    name: format!("gemm/{m}x{k}x{n}/threads_{threads}"),
                    seconds_per_iter: s,
                    elements_per_iter: (m * k * n) as u64,
                });
            }
        }
    }

    // -- quantized tier: int8 linear kernel vs exact f32 --------------------
    // A deliberately memory-bound shape: at 1024×1024 the f32 weight matrix
    // is 4 MiB per pass while the int8 copy is 1 MiB, so the quantized row
    // isolates the tier's bandwidth advantage rather than ALU throughput.
    let quant_summary;
    {
        use passflow_nn::{LinearSnapshot, QuantizedLinearSnapshot};
        let (m, k, n) = (16usize, 1024usize, 1024usize);
        let mut rng = nnrng::seeded(43);
        let exact =
            LinearSnapshot::new(Tensor::randn(k, n, &mut rng), Tensor::randn(1, n, &mut rng));
        let quantized = QuantizedLinearSnapshot::from_snapshot(&exact);
        let x = Tensor::randn(m, k, &mut rng);
        let mut out = Tensor::default();
        let s = median_secs(samples, || {
            exact.forward_into(&x, &mut out);
        });
        entries.push(Entry {
            name: format!("quantized/linear_f32_{m}x{k}x{n}"),
            seconds_per_iter: s,
            elements_per_iter: (m * k * n) as u64,
        });
        let s = median_secs(samples, || {
            quantized.forward_into(&x, &mut out, None);
        });
        entries.push(Entry {
            name: format!("quantized/linear_int8_{m}x{k}x{n}"),
            seconds_per_iter: s,
            elements_per_iter: (m * k * n) as u64,
        });

        // Flow level: exact vs int8 password scoring through the real
        // FlowScorer / QuantizedScorer path — encoded, bounded inputs, the
        // domain the documented error bound is stated for. Two
        // architectures: the narrow acceptance one (weights fit L2, so the
        // int8 tier's convert overhead makes it a modest loss) and a wide
        // one whose f32 residual blocks are 4 MiB each — past this host's
        // L2 — where the 4×-smaller int8 weight stream wins. The crossover
        // is the point of the tier: it exists for wide scoring-only models,
        // not for the narrow acceptance architecture.
        let wordlist = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(2_000))
            .generate(29)
            .into_passwords();
        for (arch, couplings, hidden, batch, arch_samples) in [
            ("eval_6x48", 6usize, 48usize, 2_000usize, samples.min(10)),
            ("wide_2x1024", 2, 1_024, 256, samples.min(3)),
        ] {
            let mut rng = nnrng::seeded(47);
            let flow = PassFlow::new(
                FlowConfig::evaluation()
                    .with_coupling_layers(couplings)
                    .with_hidden_size(hidden),
                &mut rng,
            )
            .expect("valid config");
            let slice = &wordlist[..batch];
            let exact = passflow_core::FlowScorer::new(&flow);
            let quantized = passflow_core::QuantizedScorer::from_scorer(&exact);
            let s = median_secs(arch_samples, || {
                std::hint::black_box(exact.log_probs(slice));
            });
            entries.push(Entry {
                name: format!("quantized/logprob_exact_{batch}/{arch}"),
                seconds_per_iter: s,
                elements_per_iter: batch as u64,
            });
            let s = median_secs(arch_samples, || {
                std::hint::black_box(quantized.log_probs(slice));
            });
            entries.push(Entry {
                name: format!("quantized/logprob_int8_{batch}/{arch}"),
                seconds_per_iter: s,
                elements_per_iter: batch as u64,
            });
        }
    }

    // -- inverse_256 / eval_6x48 (the acceptance micro-bench) ---------------
    let mut rng = nnrng::seeded(11);
    let flow = PassFlow::new(
        FlowConfig::evaluation()
            .with_coupling_layers(6)
            .with_hidden_size(48),
        &mut rng,
    )
    .expect("valid config");
    let mut rng = nnrng::seeded(3);
    let z = flow.sample_latent(256, &mut rng);
    let s = median_secs(samples, || {
        flow.inverse(&z);
    });
    entries.push(Entry {
        name: "flow_pass/inverse_256/eval_6x48".to_string(),
        seconds_per_iter: s,
        elements_per_iter: 256,
    });
    let snapshot = flow.snapshot();
    let mut ws = FlowWorkspace::new();
    let mut x = Tensor::default();
    let s = median_secs(samples, || {
        snapshot.inverse_into(&z, &mut ws, &mut x);
    });
    entries.push(Entry {
        name: "flow_pass/inverse_into_256/eval_6x48".to_string(),
        seconds_per_iter: s,
        elements_per_iter: 256,
    });

    // -- train_epoch throughput: 1 vs N gradient workers --------------------
    // One full epoch (encode excluded) on a 2 048-password corpus; the
    // worker counts shard identical micro-batches, so the ratio is a pure
    // thread-scaling measurement. On a single-vCPU host the worker counts
    // tie (see "host_cpus" in the emitted JSON); with ≥ 4 cores the
    // 4-worker epoch runs close to 4× the 1-worker throughput.
    {
        let train_corpus =
            SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(2_048)).generate(17);
        let passwords = train_corpus.into_passwords();
        let train_samples = if quick { 2 } else { 5 };
        for (name, workers) in [
            ("train/epoch_2048x256/workers_1", 1usize),
            ("train/epoch_2048x256/workers_4", 4usize),
        ] {
            let mut rng = nnrng::seeded(33);
            let flow = PassFlow::new(
                FlowConfig::evaluation()
                    .with_coupling_layers(6)
                    .with_hidden_size(48),
                &mut rng,
            )
            .expect("valid config");
            let config = TrainConfig::evaluation()
                .with_epochs(1)
                .with_batch_size(256)
                .with_micro_batch(64)
                .with_grad_workers(workers);
            let trainer = Trainer::new(&flow, config).expect("valid train config");
            let s = median_secs(train_samples, || {
                trainer.train(&passwords).expect("training succeeds");
            });
            entries.push(Entry {
                name: name.to_string(),
                seconds_per_iter: s,
                elements_per_iter: 2_048,
            });
        }
    }

    // -- end-to-end guessing attack (the acceptance macro-bench) ------------
    let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(6_000)).generate(21);
    let split = corpus.paper_split(0.8, 2_000, 21);
    let mut rng = nnrng::seeded(22);
    let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).expect("valid config");
    let epochs = if quick { 1 } else { 3 };
    passflow_core::train(
        &flow,
        &split.train,
        &TrainConfig::tiny().with_epochs(epochs).with_batch_size(256),
    )
    .expect("training succeeds");
    let targets: HashSet<String> = split.test_set();
    let budget = 2_000u64;
    for (name, strategy) in [
        ("guessing/attack_2000/static", GuessingStrategy::Static),
        (
            "guessing/attack_2000/dynamic_gs",
            GuessingStrategy::paper_default(budget),
        ),
    ] {
        let s = median_secs(samples.min(10), || {
            Attack::new(&targets)
                .budget(budget)
                .strategy(strategy.clone())
                .run(&flow)
                .expect("flow attacks always run");
        });
        entries.push(Entry {
            name: name.to_string(),
            seconds_per_iter: s,
            elements_per_iter: budget,
        });
    }

    // -- strength meter: table build, lookups, sharded wordlist scoring -----
    // Reuses the trained attack flow. The lookup bench is the strength
    // meter's steady state: scores are precomputed, so it times the pure
    // rank-interpolation path (binary search + cumulative weights).
    {
        let table_samples = if quick { 2_000 } else { 10_000 };
        let t0 = Instant::now();
        let table = SampleTable::build(&flow, table_samples, 7);
        entries.push(Entry {
            name: "strength/table_build".to_string(),
            seconds_per_iter: t0.elapsed().as_secs_f64(),
            elements_per_iter: table_samples as u64,
        });

        let wordlist = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(10_000))
            .generate(23)
            .into_passwords();
        let scores: Vec<f64> = flow
            .password_log_probs(&wordlist)
            .into_iter()
            .flatten()
            .collect();
        let s = median_secs(samples, || {
            for &lp in &scores {
                std::hint::black_box(table.estimate(lp));
            }
        });
        entries.push(Entry {
            name: "strength/lookup_10k".to_string(),
            seconds_per_iter: s,
            elements_per_iter: scores.len() as u64,
        });

        let slice = &wordlist[..1_000];
        let s = median_secs(samples.min(10), || {
            std::hint::black_box(passflow_core::score_wordlist(&flow, &table, slice, 1));
        });
        entries.push(Entry {
            name: "strength/score_wordlist_1000".to_string(),
            seconds_per_iter: s,
            elements_per_iter: 1_000,
        });

        // Quantized-tier fidelity, measured on the *trained* flow — the
        // regime the tier serves. (An untrained flow amplifies int8 weight
        // error through each coupling's `exp(s)` and reports a uselessly
        // pessimistic delta.)
        let exact = passflow_core::FlowScorer::new(&flow);
        let quantized = passflow_core::QuantizedScorer::from_scorer(&exact);
        let report = passflow_core::probe_quantization(&exact, &quantized, &wordlist);
        quant_summary = QuantSummary {
            max_abs_delta_logprob: report.max_abs_delta,
            mean_abs_delta_logprob: report.mean_abs_delta,
            compression: report.compression(),
        };
    }

    // -- digest store: build throughput, 4-way merge, range lookups ---------
    // `build_1M` ingests distinct synthetic digests (SHA-1 of an integer
    // counter — cheaper than generating passwords, same store-side work)
    // through the external-sort builder with spills forced; `merge_4way`
    // unions four shard artifacts; `range_lookup` is the serving hot path
    // (binary-searched block + prefix-decompressed scan per query).
    {
        use passflow_store::{sha1, DigestConfig, DigestStore, DigestStoreBuilder};

        let scratch = std::env::temp_dir();
        let stamp = std::process::id();
        let build_records: u64 = if quick { 100_000 } else { 1_000_000 };
        let path = scratch.join(format!("pfbench-build-{stamp}.pfd"));
        let t0 = Instant::now();
        let mut builder = DigestStoreBuilder::new(DigestConfig::default())
            .with_memory_records(1 << 18)
            .with_scratch_dir(&scratch);
        for i in 0..build_records {
            builder
                .add_digest(&sha1::sha1(&i.to_le_bytes()), 1)
                .expect("digest ingest");
        }
        let stats = builder.finish(&path).expect("digest build");
        entries.push(Entry {
            name: "digest/build_1M".to_string(),
            seconds_per_iter: t0.elapsed().as_secs_f64(),
            elements_per_iter: build_records,
        });
        assert_eq!(stats.record_count, build_records, "SHA-1 never collided");

        let shard_paths: Vec<std::path::PathBuf> = (0..4)
            .map(|s| scratch.join(format!("pfbench-shard-{stamp}-{s}.pfd")))
            .collect();
        let shard_records = build_records / 8;
        for (s, shard_path) in shard_paths.iter().enumerate() {
            let mut builder = DigestStoreBuilder::new(DigestConfig::default());
            // Shards overlap pairwise so the merge exercises count summing.
            let lo = s as u64 * shard_records / 2;
            for i in lo..lo + shard_records {
                builder
                    .add_digest(&sha1::sha1(&i.to_le_bytes()), 1)
                    .expect("digest ingest");
            }
            builder.finish(shard_path).expect("shard build");
        }
        let merged = scratch.join(format!("pfbench-merged-{stamp}.pfd"));
        let t0 = Instant::now();
        let stats = passflow_store::merge_artifacts(&shard_paths, &merged).expect("merge");
        entries.push(Entry {
            name: "digest/merge_4way".to_string(),
            seconds_per_iter: t0.elapsed().as_secs_f64(),
            elements_per_iter: stats.record_count,
        });

        let store = DigestStore::open(&path).expect("open digest");
        let prefixes: Vec<String> = (0..256)
            .map(|i| sha1::to_hex(&sha1::sha1(&(i as u64).to_le_bytes()))[..5].to_string())
            .collect();
        let s = median_secs(samples, || {
            for prefix in &prefixes {
                std::hint::black_box(store.range(prefix).expect("range query"));
            }
        });
        entries.push(Entry {
            name: "digest/range_lookup".to_string(),
            seconds_per_iter: s,
            elements_per_iter: prefixes.len() as u64,
        });

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&merged);
        for shard_path in &shard_paths {
            let _ = std::fs::remove_file(shard_path);
        }
    }

    // -- emit ---------------------------------------------------------------
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    // Provenance captured at compile time by build.rs; the RUSTFLAGS line
    // is where `-C target-cpu=...` shows up, so the JSON says which ISA
    // the kernels were compiled for.
    let rustc_version = env!("PASSFLOW_BENCH_RUSTC");
    let rustflags = env!("PASSFLOW_BENCH_RUSTFLAGS")
        .replace('\\', "\\\\")
        .replace('"', "\\\"");
    let simd = if passflow_nn::kernels::simd_tile_available() {
        "avx2+fma"
    } else {
        "scalar"
    };
    let mut json = format!(
        "{{\n  \"schema\": \"passflow-bench-v2\",\n  \"host_cpus\": {host_cpus},\n  \
         \"rustc_version\": \"{rustc_version}\",\n  \"rustflags\": \"{rustflags}\",\n  \
         \"simd_tile\": \"{simd}\",\n  \"quantized\": {{ \
         \"max_abs_delta_logprob\": {:.9}, \"mean_abs_delta_logprob\": {:.9}, \
         \"compression\": {:.3} }},\n  \"results\": {{\n",
        quant_summary.max_abs_delta_logprob,
        quant_summary.mean_abs_delta_logprob,
        quant_summary.compression,
    );
    for (i, e) in entries.iter().enumerate() {
        let rate = e.elements_per_iter as f64 / e.seconds_per_iter;
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"seconds_per_iter\": {:.9}, \"elements_per_second\": {:.0} }}{}",
            e.name, e.seconds_per_iter, rate, comma
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("writing benchmark JSON");
    println!("{json}");
    println!("wrote {out_path}");
}
