//! The unified guessing-attack engine.
//!
//! Every experiment in the paper — Tables II/III, the dynamic-sampling and
//! smoothing ablations, the baseline comparisons — is an instance of one
//! protocol: *generate guesses under a budget, count uniques and test-set
//! matches at checkpoints*. This module implements that protocol once,
//! behind two abstractions:
//!
//! * [`Guesser`] — anything that can generate batches of password guesses
//!   (the flow, the Markov / PCFG / GAN / CWAE baselines, user models), with
//!   the optional [`LatentGuesser`] extension exposing the latent-space
//!   operations that make Dynamic Sampling and Gaussian smoothing possible;
//! * [`Attack`] — a builder over the attack parameters that executes the
//!   protocol through [`AttackEngine`]: budget-aligned chunking, parallel
//!   sharded generation with per-chunk deterministic RNG streams (the same
//!   seed produces the same [`CheckpointReport`]s for *any* shard count),
//!   dedup via a [`ShardedSet`], and streaming checkpoint reports through an
//!   observer callback.
//!
//! Long-running distributed attacks persist their progress as `PFATTACK v1`
//! checkpoints ([`Attack::checkpoint_every`] / [`Attack::resume`]) and their
//! dedup'd guess streams as `PFGUESS v1` sorted archives
//! ([`Attack::archive_to`]); a killed attack resumed from any checkpoint
//! reproduces the byte-identical outcome and archive of an uninterrupted
//! run, and shard archives merge order-independently (DESIGN.md,
//! "Distributed attacks").
//!
//! ```rust
//! use passflow_core::{Attack, FlowConfig, GuessingStrategy, PassFlow};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let flow = PassFlow::new(FlowConfig::tiny(), &mut rng)?;
//! let targets = flow.sample_passwords(32, &mut rng).into_iter().collect();
//!
//! let outcome = Attack::new(&targets)
//!     .budget(2_000)
//!     .checkpoints(vec![500, 1_000])
//!     .strategy(GuessingStrategy::Static)
//!     .observer(|report| eprintln!("{} guesses in", report.guesses))
//!     .shards(4)
//!     .run(&flow)?;
//! assert_eq!(outcome.final_report().guesses, 2_000);
//! # Ok::<(), passflow_core::FlowError>(())
//! ```

mod attack;
mod checkpoint;
mod guesser;
mod sharded;

pub use attack::{Attack, AttackEngine, AttackOutcome, CheckpointReport};
pub use guesser::{
    FlowSession, GuessSession, Guesser, LatentGuesser, LatentSession, StatelessLatentSession,
    StatelessSession,
};
pub use sharded::ShardedSet;
