//! A deliberately small HTTP/1.1 layer over `std::net`.
//!
//! The server speaks exactly the subset the wire schema needs — `GET` and
//! `POST`, `Content-Length` framing, keep-alive and pipelining — and treats
//! everything else as a protocol error with a precise 4xx/5xx status.
//! Every limit is enforced *while reading*, so an adversarial peer can
//! never make the server buffer an unbounded request line, header block or
//! body; partial/split reads are handled naturally by reading through a
//! [`BufRead`] until each syntactic element is complete. The conformance
//! suite in `tests/serve.rs` drives this parser with malformed request
//! lines, oversized headers, split writes and pipelined bursts.

use std::io::{BufRead, Read, Write};
use std::time::{Duration, Instant};

/// Maximum bytes in the request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 4096;
/// Maximum number of request headers.
pub const MAX_HEADERS: usize = 64;
/// Maximum bytes in a single header line.
pub const MAX_HEADER_LINE: usize = 4096;
/// Maximum request body size in bytes.
pub const MAX_BODY: usize = 1 << 20;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), uppercased by the wire format.
    pub method: String,
    /// Request target path (query strings are not used by the API).
    pub path: String,
    /// `(lowercased-name, value)` header pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a (lowercase) header name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A protocol-level rejection: the status line and message the peer gets.
///
/// Protocol errors poison the byte stream (the parser cannot know where
/// the broken request ends), so the connection always closes after the
/// error response. Semantic errors in well-framed requests (bad JSON, an
/// unknown model) are not `HttpError`s — they flow through the router as
/// ordinary responses and keep the connection alive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code to respond with.
    pub status: u16,
    /// Human-readable reason included in the JSON error body.
    pub message: String,
}

impl HttpError {
    fn fatal(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// The result of trying to read one request off a connection.
pub enum ReadOutcome {
    /// A complete, well-formed request.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The bytes on the wire are not a well-formed request.
    Error(HttpError),
}

/// Reads one HTTP/1.1 request from `reader`, enforcing all size limits.
///
/// Returns [`ReadOutcome::Closed`] on clean EOF before the first byte, and
/// [`ReadOutcome::Error`] (with the right 4xx status) for malformed or
/// oversized input, truncated bodies, or unsupported framing. I/O errors
/// (including read timeouts) surface as errors with status 408.
pub fn read_request<R: BufRead>(reader: &mut R) -> ReadOutcome {
    // -- request line ------------------------------------------------------
    let line = match read_line_limited(reader, MAX_REQUEST_LINE) {
        Ok(None) => return ReadOutcome::Closed,
        Ok(Some(LimitedLine::Line(line))) => line,
        Ok(Some(LimitedLine::TooLong)) => {
            return ReadOutcome::Error(HttpError::fatal(414, "request line too long"));
        }
        Ok(Some(LimitedLine::Truncated)) => {
            return ReadOutcome::Error(HttpError::fatal(400, "truncated request line"));
        }
        Ok(Some(LimitedLine::NotUtf8)) => {
            return ReadOutcome::Error(HttpError::fatal(400, "request line is not UTF-8"));
        }
        Err(_) => return ReadOutcome::Error(HttpError::fatal(408, "read failed or timed out")),
    };
    if line.is_empty() {
        return ReadOutcome::Error(HttpError::fatal(400, "empty request line"));
    }
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return ReadOutcome::Error(HttpError::fatal(400, "malformed request line"));
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return ReadOutcome::Error(HttpError::fatal(400, "malformed method"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => {
            return ReadOutcome::Error(HttpError::fatal(505, "unsupported HTTP version"));
        }
    };

    // -- headers -----------------------------------------------------------
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line_limited(reader, MAX_HEADER_LINE) {
            Ok(Some(LimitedLine::Line(line))) => line,
            Ok(Some(LimitedLine::TooLong)) => {
                return ReadOutcome::Error(HttpError::fatal(431, "header line too long"));
            }
            Ok(Some(LimitedLine::Truncated)) | Ok(None) => {
                return ReadOutcome::Error(HttpError::fatal(400, "truncated header block"));
            }
            Ok(Some(LimitedLine::NotUtf8)) => {
                return ReadOutcome::Error(HttpError::fatal(400, "header line is not UTF-8"));
            }
            Err(_) => {
                return ReadOutcome::Error(HttpError::fatal(408, "read failed or timed out"));
            }
        };
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return ReadOutcome::Error(HttpError::fatal(431, "too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return ReadOutcome::Error(HttpError::fatal(400, "malformed header line"));
        };
        if name.is_empty() || name.contains(' ') {
            return ReadOutcome::Error(HttpError::fatal(400, "malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    // -- framing -----------------------------------------------------------
    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return ReadOutcome::Error(HttpError::fatal(501, "chunked bodies are not supported"));
    }
    let content_length = match find("content-length") {
        None => 0usize,
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return ReadOutcome::Error(HttpError::fatal(400, "malformed content-length"));
            }
        },
    };
    if content_length > MAX_BODY {
        return ReadOutcome::Error(HttpError::fatal(413, "request body too large"));
    }

    // -- body --------------------------------------------------------------
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        if let Err(e) = reader.read_exact(&mut body) {
            let status = if e.kind() == std::io::ErrorKind::UnexpectedEof {
                400
            } else {
                408
            };
            return ReadOutcome::Error(HttpError::fatal(status, "truncated request body"));
        }
    }

    let keep_alive = match find("connection").map(str::to_ascii_lowercase) {
        Some(v) if v == "close" => false,
        Some(v) if v == "keep-alive" => true,
        _ => http11,
    };

    ReadOutcome::Request(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
        keep_alive,
    })
}

/// One CRLF/LF-terminated line read under a byte cap.
enum LimitedLine {
    /// A complete line (terminator stripped).
    Line(String),
    /// The cap was hit before a terminator arrived; the stream is poisoned.
    TooLong,
    /// EOF arrived mid-line.
    Truncated,
    /// The line terminated but its bytes are not valid UTF-8.
    NotUtf8,
}

/// Reads bytes until `\n` or `cap`, without ever buffering more than `cap`
/// bytes. `Ok(None)` means clean EOF before any byte arrived.
fn read_line_limited<R: BufRead>(
    reader: &mut R,
    cap: usize,
) -> std::io::Result<Option<LimitedLine>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // EOF: clean only if nothing of this line was read yet.
            return if line.is_empty() {
                Ok(None)
            } else {
                Ok(Some(LimitedLine::Truncated))
            };
        }
        let take = buf.len().min(cap + 1 - line.len());
        if let Some(nl) = buf[..take].iter().position(|&b| b == b'\n') {
            line.extend_from_slice(&buf[..nl]);
            reader.consume(nl + 1);
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return match String::from_utf8(line) {
                Ok(s) => Ok(Some(LimitedLine::Line(s))),
                Err(_) => Ok(Some(LimitedLine::NotUtf8)),
            };
        }
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if line.len() > cap {
            return Ok(Some(LimitedLine::TooLong));
        }
    }
}

/// A [`BufRead`] wrapper enforcing a **wall-clock budget per request** —
/// the slow-loris defense. Per-read socket timeouts only bound the gap
/// between bytes; a peer dribbling one byte per second passes every
/// per-read check while pinning a handler forever. The budget arms when
/// the first byte of a request arrives (idle keep-alive gaps are free) and
/// every subsequent `fill_buf` checks total elapsed time; when the budget
/// is blown the read fails with [`std::io::ErrorKind::TimedOut`], which
/// [`read_request`] turns into a 408 and a closed connection. Call
/// [`rearm`](Self::rearm) between requests.
#[derive(Debug)]
pub struct BudgetReader<R> {
    inner: R,
    budget: Duration,
    started: Option<Instant>,
}

impl<R: BufRead> BudgetReader<R> {
    /// Wraps `inner` with a per-request wall-clock `budget`.
    pub fn new(inner: R, budget: Duration) -> BudgetReader<R> {
        BudgetReader {
            inner,
            budget,
            started: None,
        }
    }

    /// Disarms the budget until the next byte arrives (call between
    /// keep-alive requests, so idle gaps do not count against anyone).
    pub fn rearm(&mut self) {
        self.started = None;
    }

    /// The wrapped reader. The connection multiplexer uses this to check
    /// for already-buffered pipelined bytes before parking a socket (a
    /// parked socket is watched with `peek`, which cannot see bytes that
    /// moved into userspace buffers) and to reach the underlying stream.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    fn check(&self) -> std::io::Result<()> {
        if let Some(started) = self.started {
            if started.elapsed() > self.budget {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "request read budget exhausted",
                ));
            }
        }
        Ok(())
    }
}

impl<R: BufRead> Read for BudgetReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.check()?;
        let n = self.inner.read(buf)?;
        if n > 0 && self.started.is_none() {
            self.started = Some(Instant::now());
        }
        Ok(n)
    }
}

impl<R: BufRead> BufRead for BudgetReader<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        self.check()?;
        let armed = self.started.is_some();
        let buf = self.inner.fill_buf()?;
        if !buf.is_empty() && !armed {
            self.started = Some(Instant::now());
        }
        Ok(buf)
    }

    fn consume(&mut self, amt: usize) {
        self.inner.consume(amt);
    }
}

/// Canonical reason phrases for the statuses the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Internal Server Error",
    }
}

/// Writes a complete response with `Content-Length` framing.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> ReadOutcome {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_complete_post() {
        let raw = b"POST /v1/score HTTP/1.1\r\ncontent-length: 4\r\nHost: x\r\n\r\nbody";
        match parse(raw) {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/v1/score");
                assert_eq!(req.body, b"body");
                assert!(req.keep_alive);
                assert_eq!(req.header("host"), Some("x"));
            }
            _ => panic!("expected a request"),
        }
    }

    #[test]
    fn clean_eof_is_closed_and_partial_is_an_error() {
        assert!(matches!(parse(b""), ReadOutcome::Closed));
        match parse(b"GET / HT") {
            ReadOutcome::Error(e) => assert_eq!(e.status, 400, "EOF mid-line is truncation"),
            _ => panic!("partial request line must error"),
        }
        // Non-UTF-8 bytes in the request line are malformed, not "too long".
        match parse(b"GET /caf\xe9 HTTP/1.1\r\n\r\n") {
            ReadOutcome::Error(e) => assert_eq!(e.status, 400),
            _ => panic!("non-UTF-8 request line must error"),
        }
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET  / HTTP/1.1\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
        ] {
            match parse(raw) {
                ReadOutcome::Error(e) => assert_eq!(e.status, 400, "{raw:?}"),
                _ => panic!("{raw:?} must be rejected"),
            }
        }
    }

    #[test]
    fn oversized_elements_hit_their_limits() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        match parse(long_line.as_bytes()) {
            ReadOutcome::Error(e) => assert_eq!(e.status, 414),
            _ => panic!("long request line must be rejected"),
        }
        let big_header = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "v".repeat(MAX_HEADER_LINE)
        );
        match parse(big_header.as_bytes()) {
            ReadOutcome::Error(e) => assert_eq!(e.status, 431),
            _ => panic!("oversized header must be rejected"),
        }
        let many: String = (0..MAX_HEADERS + 1)
            .map(|i| format!("h{i}: v\r\n"))
            .collect();
        match parse(format!("GET / HTTP/1.1\r\n{many}\r\n").as_bytes()) {
            ReadOutcome::Error(e) => assert_eq!(e.status, 431),
            _ => panic!("too many headers must be rejected"),
        }
        let body = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        match parse(body.as_bytes()) {
            ReadOutcome::Error(e) => assert_eq!(e.status, 413),
            _ => panic!("oversized body must be rejected"),
        }
    }

    #[test]
    fn framing_oddities_are_rejected() {
        for (raw, status) in [
            (&b"GET / HTTP/2\r\n\r\n"[..], 505),
            (b"GET / HTTP/1.1\r\nbad header\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\ncontent-length: nan\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", 501),
            (b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort", 400),
        ] {
            match parse(raw) {
                ReadOutcome::Error(e) => assert_eq!(e.status, status, "{raw:?}"),
                _ => panic!("{raw:?} must be rejected"),
            }
        }
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n";
        match parse(close) {
            ReadOutcome::Request(r) => assert!(!r.keep_alive),
            _ => panic!(),
        }
        let one_zero = b"GET / HTTP/1.0\r\n\r\n";
        match parse(one_zero) {
            ReadOutcome::Request(r) => assert!(!r.keep_alive),
            _ => panic!(),
        }
        let ka10 = b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n";
        match parse(ka10) {
            ReadOutcome::Request(r) => assert!(r.keep_alive),
            _ => panic!(),
        }
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(&raw[..]);
        for expected in ["/healthz", "/metrics"] {
            match read_request(&mut reader) {
                ReadOutcome::Request(r) => assert_eq!(r.path, expected),
                _ => panic!("pipelined request lost"),
            }
        }
        assert!(matches!(read_request(&mut reader), ReadOutcome::Closed));
    }

    #[test]
    fn budget_reader_cuts_off_dribbling_peers() {
        /// Serves one byte per fill_buf, sleeping first — a loopback
        /// slow-loris.
        struct Dribble {
            left: usize,
            delay: Duration,
            buf: [u8; 1],
            buffered: bool,
        }
        impl Read for Dribble {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let inner = self.fill_buf()?;
                let n = inner.len().min(buf.len());
                buf[..n].copy_from_slice(&inner[..n]);
                self.consume(n);
                Ok(n)
            }
        }
        impl BufRead for Dribble {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                if !self.buffered {
                    if self.left == 0 {
                        return Ok(&[]);
                    }
                    std::thread::sleep(self.delay);
                    self.left -= 1;
                    self.buf[0] = b'G';
                    self.buffered = true;
                }
                Ok(&self.buf)
            }
            fn consume(&mut self, amt: usize) {
                if amt > 0 {
                    self.buffered = false;
                }
            }
        }

        let dribble = Dribble {
            left: 1000,
            delay: Duration::from_millis(5),
            buf: [0],
            buffered: false,
        };
        let mut reader = BudgetReader::new(dribble, Duration::from_millis(25));
        match read_request(&mut reader) {
            ReadOutcome::Error(e) => assert_eq!(e.status, 408, "budget blown is a timeout"),
            _ => panic!("a dribbling peer must be cut off"),
        }

        // Rearmed, a prompt request still parses fine.
        let prompt = BufReader::new(&b"GET /healthz HTTP/1.1\r\n\r\n"[..]);
        let mut reader = BudgetReader::new(prompt, Duration::from_secs(5));
        reader.rearm();
        assert!(matches!(read_request(&mut reader), ReadOutcome::Request(_)));
    }

    #[test]
    fn response_writer_frames_correctly() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
