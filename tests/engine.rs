//! Cross-crate conformance tests for the unified attack engine: every
//! guesser in the workspace — the four baselines and `PassFlow` under all
//! three of the paper's strategies — runs through the same
//! [`Attack`](passflow::Attack) protocol, and the engine's invariants hold
//! for each of them.

use std::collections::HashSet;
use std::sync::OnceLock;

use passflow::baselines::{Cwae, CwaeConfig, MarkovModel, PassGan, PassGanConfig, PcfgModel};
use passflow::nn::rng as nnrng;
use passflow::{
    train, Attack, AttackOutcome, CorpusConfig, DynamicParams, FlowConfig, GaussianSmoothing,
    Guesser, GuessingStrategy, PassFlow, PasswordEncoder, SyntheticCorpusGenerator, TrainConfig,
};

struct Fixture {
    guessers: Vec<Box<dyn Guesser>>,
    targets: HashSet<String>,
}

/// One trained instance of every guesser in the workspace, sharing a corpus.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let corpus =
            SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(8_000)).generate(404);
        let split = corpus.paper_split(0.8, 2_500, 404);
        let encoder = PasswordEncoder::default();

        let mut rng = nnrng::seeded(405);
        let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).expect("valid config");
        train(
            &flow,
            &split.train,
            &TrainConfig::tiny().with_epochs(3).with_batch_size(256),
        )
        .expect("training succeeds");

        let guessers: Vec<Box<dyn Guesser>> = vec![
            Box::new(flow),
            Box::new(MarkovModel::train(&split.train, 3, 10)),
            Box::new(PcfgModel::train(&split.train, 10)),
            Box::new(PassGan::train(
                &split.train,
                encoder.clone(),
                PassGanConfig::tiny().with_iterations(20),
            )),
            Box::new(Cwae::train(
                &split.train,
                encoder,
                CwaeConfig::tiny().with_epochs(2),
            )),
        ];
        Fixture {
            guessers,
            targets: split.test_set(),
        }
    })
}

fn check_invariants(outcome: &AttackOutcome, targets: &HashSet<String>, budget: u64) {
    assert_eq!(outcome.final_report().guesses, budget);
    for pair in outcome.checkpoints.windows(2) {
        assert!(pair[0].guesses < pair[1].guesses);
        assert!(pair[1].unique >= pair[0].unique);
        assert!(pair[1].matched >= pair[0].matched);
    }
    for report in &outcome.checkpoints {
        assert!(report.unique >= 1);
        assert!(report.unique <= report.guesses);
        assert!(report.matched as usize <= targets.len());
        assert!((0.0..=100.0).contains(&report.matched_percent));
    }
    assert_eq!(
        outcome.final_report().matched as usize,
        outcome.matched_passwords.len()
    );
    for matched in &outcome.matched_passwords {
        assert!(targets.contains(matched));
    }
}

#[test]
fn every_guesser_runs_through_the_same_engine() {
    let fixture = fixture();
    let budget = 2_000u64;
    for guesser in &fixture.guessers {
        let outcome = Attack::new(&fixture.targets)
            .budget(budget)
            .batch_size(256)
            .checkpoints(vec![500, 1_000])
            .seed(1)
            .run(guesser.as_ref())
            .unwrap_or_else(|e| panic!("{} failed: {e}", guesser.name()));
        assert_eq!(outcome.checkpoints.len(), 3, "{}", guesser.name());
        check_invariants(&outcome, &fixture.targets, budget);
    }
}

#[test]
fn shard_count_is_irrelevant_for_every_guesser() {
    let fixture = fixture();
    for guesser in &fixture.guessers {
        let run = |shards: usize| {
            Attack::new(&fixture.targets)
                .budget(1_024)
                .batch_size(100)
                .checkpoints(vec![256, 512])
                .seed(2)
                .shards(shards)
                .run(guesser.as_ref())
                .unwrap()
        };
        assert_eq!(run(1), run(8), "{} diverged across shards", guesser.name());
    }
}

#[test]
fn flow_strategies_all_run_through_the_engine() {
    let fixture = fixture();
    let flow = &fixture.guessers[0];
    let params = DynamicParams::new(0, 0.1, 8);
    let strategies = [
        GuessingStrategy::Static,
        GuessingStrategy::Dynamic(params),
        GuessingStrategy::DynamicWithSmoothing {
            params,
            smoothing: GaussianSmoothing::default(),
        },
    ];
    for strategy in strategies {
        let label = strategy.label();
        let outcome = Attack::new(&fixture.targets)
            .budget(1_500)
            .batch_size(256)
            .strategy(strategy)
            .seed(3)
            .run(flow.as_ref())
            .unwrap_or_else(|e| panic!("{label} failed: {e}"));
        assert_eq!(outcome.strategy, label);
        check_invariants(&outcome, &fixture.targets, 1_500);
    }
}

#[test]
fn latent_strategies_fail_cleanly_for_plain_guessers() {
    let fixture = fixture();
    // guessers[1] is the Markov model: no latent space.
    let err = Attack::new(&fixture.targets)
        .budget(100)
        .strategy(GuessingStrategy::Dynamic(DynamicParams::new(0, 0.1, 8)))
        .run(fixture.guessers[1].as_ref())
        .unwrap_err();
    assert!(err.to_string().contains("latent access"));
}

#[test]
fn observer_streams_the_same_reports_the_outcome_returns() {
    let fixture = fixture();
    for guesser in &fixture.guessers {
        let mut streamed = Vec::new();
        let outcome = Attack::new(&fixture.targets)
            .budget(1_000)
            .batch_size(128)
            .checkpoints(vec![250, 750])
            .observer(|report| streamed.push(report.clone()))
            .run(guesser.as_ref())
            .unwrap();
        assert_eq!(streamed, outcome.checkpoints, "{}", guesser.name());
    }
}
