/root/repo/target/debug/deps/table2-55cdb0107bb3b3a6.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-55cdb0107bb3b3a6: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
