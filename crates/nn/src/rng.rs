//! Deterministic RNG helpers.
//!
//! Every component in the reproduction accepts a seed so experiments are
//! repeatable; this module centralizes the conversion from seeds to RNGs and
//! provides a few sampling utilities shared across crates.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a new deterministic RNG from a base seed and a stream index.
///
/// Use this to give each worker/epoch/layer its own independent stream while
/// keeping the whole experiment reproducible from a single seed.
pub fn derived(seed: u64, stream: u64) -> StdRng {
    // SplitMix64-style mixing keeps the derived seeds well separated.
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

/// Draws a single standard-normal sample.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    let theta = 2.0 * std::f32::consts::PI * u2;
    (-2.0 * crate::math::fast_ln(u1)).sqrt() * crate::math::fast_sin_cos(theta).1
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(mean: f32, std: f32, rng: &mut R) -> f32 {
    mean + std * standard_normal(rng)
}

/// Draws a uniform index in `[0, n)` without modulo bias.
///
/// A plain `next_u32() % n` over-represents the first `2^32 mod n` indices;
/// this rejection-samples instead: draws below `2^32 mod n` are discarded,
/// making every index exactly equally likely. For power-of-two `n` the
/// rejection threshold is zero, so the RNG consumption (and therefore any
/// seeded stream) is identical to the modulo draw.
///
/// # Panics
///
/// Panics if `n` is zero or does not fit in `u32`.
pub fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
    assert!(n > 0, "n must be positive");
    let n32 = u32::try_from(n).expect("n must fit in u32");
    // `2^32 mod n`, computed without 64-bit arithmetic.
    let threshold = n32.wrapping_neg() % n32;
    loop {
        let r = rng.next_u32();
        if r >= threshold {
            return (r % n32) as usize;
        }
    }
}

/// Samples an index from a discrete distribution given by unnormalized
/// non-negative weights.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to zero.
pub fn sample_discrete<R: Rng + ?Sized>(weights: &[f32], rng: &mut R) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(5);
        let mut b = seeded(5);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = derived(5, 0);
        let mut b = derived(5, 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn derived_is_deterministic() {
        let mut a = derived(5, 3);
        let mut b = derived(5, 3);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(11);
        let samples: Vec<f32> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = seeded(12);
        let samples: Vec<f32> = (0..20_000).map(|_| normal(3.0, 0.5, &mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        assert!((mean - 3.0).abs() < 0.03, "mean={mean}");
    }

    #[test]
    fn uniform_index_has_no_modulo_bias() {
        // n = 3 leaves 2^32 mod 3 = 1 rejected value; with plain modulo the
        // first index would be over-represented by ~1 draw in 2^32 — too
        // small to see — so instead verify the distribution is flat for a
        // non-power-of-two n at test scale and that the stream matches the
        // modulo draw for a power-of-two n (the compatibility guarantee the
        // attack tests rely on).
        let mut rng = seeded(21);
        let n = 3;
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[uniform_index(&mut rng, n)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 10_000.0).abs() < 400.0,
                "index {i} drawn {c} times"
            );
        }

        let mut a = seeded(22);
        let mut b = seeded(22);
        for _ in 0..1_000 {
            assert_eq!(uniform_index(&mut a, 64), (b.next_u32() as usize) % 64);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn uniform_index_rejects_zero() {
        let mut rng = seeded(1);
        uniform_index(&mut rng, 0);
    }

    #[test]
    fn sample_discrete_follows_weights() {
        let mut rng = seeded(13);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_discrete(&weights, &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f32 / counts[0] as f32;
        assert!((ratio - 3.0).abs() < 0.5, "ratio={ratio}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn sample_discrete_rejects_empty() {
        let mut rng = seeded(1);
        sample_discrete(&[], &mut rng);
    }
}
