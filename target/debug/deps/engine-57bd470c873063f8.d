/root/repo/target/debug/deps/engine-57bd470c873063f8.d: tests/engine.rs

/root/repo/target/debug/deps/engine-57bd470c873063f8: tests/engine.rs

tests/engine.rs:
