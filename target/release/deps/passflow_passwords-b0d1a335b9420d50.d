/root/repo/target/release/deps/passflow_passwords-b0d1a335b9420d50.d: crates/passwords/src/lib.rs crates/passwords/src/alphabet.rs crates/passwords/src/dataset.rs crates/passwords/src/encoding.rs crates/passwords/src/generator.rs crates/passwords/src/stats.rs crates/passwords/src/wordlists.rs

/root/repo/target/release/deps/libpassflow_passwords-b0d1a335b9420d50.rlib: crates/passwords/src/lib.rs crates/passwords/src/alphabet.rs crates/passwords/src/dataset.rs crates/passwords/src/encoding.rs crates/passwords/src/generator.rs crates/passwords/src/stats.rs crates/passwords/src/wordlists.rs

/root/repo/target/release/deps/libpassflow_passwords-b0d1a335b9420d50.rmeta: crates/passwords/src/lib.rs crates/passwords/src/alphabet.rs crates/passwords/src/dataset.rs crates/passwords/src/encoding.rs crates/passwords/src/generator.rs crates/passwords/src/stats.rs crates/passwords/src/wordlists.rs

crates/passwords/src/lib.rs:
crates/passwords/src/alphabet.rs:
crates/passwords/src/dataset.rs:
crates/passwords/src/encoding.rs:
crates/passwords/src/generator.rs:
crates/passwords/src/stats.rs:
crates/passwords/src/wordlists.rs:
