/root/repo/target/debug/deps/table3-2199fa6b23295ecb.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-2199fa6b23295ecb: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
