/root/repo/target/release/deps/figure2-8cbc80612ccf4758.d: crates/bench/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-8cbc80612ccf4758: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
