//! Online serving end-to-end: train a small flow, serve it over HTTP with
//! adaptive micro-batching, score passwords through the wire, hot-swap a
//! newly trained checkpoint under live load, and shut down cleanly.
//!
//! Every step assert-checks its own output, so this example doubles as the
//! CI smoke test for the serving subsystem (exit code ≠ 0 on any failure).
//!
//! ```text
//! cargo run --release --example serve
//! ```

use std::sync::Arc;
use std::time::Duration;

use passflow::serve::client::{self, Connection};
use passflow::serve::{serve, BatcherConfig, ModelRegistry, ServedModel, ServerConfig};
use passflow::{
    load_flow, save_flow, train, CorpusConfig, FlowConfig, PassFlow, ProbabilityModel, SampleTable,
    SyntheticCorpusGenerator, TrainConfig,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. A small trained flow plus its strength table.
    // ------------------------------------------------------------------
    let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small()).generate(17);
    let split = corpus.paper_split(0.8, 3_000, 17);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let flow = PassFlow::new(FlowConfig::tiny(), &mut rng)?;
    train(&flow, &split.train, &TrainConfig::tiny().with_epochs(3))?;
    let table = SampleTable::build(&flow, 2_000, 7);

    let registry = Arc::new(ModelRegistry::new());
    registry.insert(ServedModel::from_flow("default", &flow, 1, Some(table)));

    // ------------------------------------------------------------------
    // 2. Serve on an ephemeral loopback port.
    // ------------------------------------------------------------------
    let config = ServerConfig {
        batcher: BatcherConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            ..BatcherConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = serve(config, Arc::clone(&registry))?;
    let addr = server.addr();
    println!("serving on http://{addr}");

    let health = client::request(addr, "GET", "/healthz", None)?;
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"models\":[\"default\"]"));
    println!("GET /healthz        → {} {}", health.status, health.text());

    // ------------------------------------------------------------------
    // 3. Score through the wire; the served score must equal direct
    //    scoring, bit for bit (the batcher never changes results).
    // ------------------------------------------------------------------
    let response = client::request(
        addr,
        "POST",
        "/v1/score",
        Some(r#"{"passwords":["123456","jimmy91","zq!7Kp#2vX"]}"#),
    )?;
    assert_eq!(response.status, 200, "{}", response.text());
    let text = response.text();
    println!("POST /v1/score      → {} {text}", response.status);
    // Results preserve input order; pull each object's hex bit pattern.
    let wire_bits: Vec<u64> = text
        .split("\"log_prob_bits\":\"")
        .skip(1)
        .map(|rest| u64::from_str_radix(&rest[..16], 16).expect("16 hex digits"))
        .collect();
    let probes = ["123456", "jimmy91", "zq!7Kp#2vX"];
    assert_eq!(wire_bits.len(), probes.len(), "one score per probe");
    for (pw, bits) in probes.iter().zip(wire_bits) {
        let direct = flow.password_log_prob(pw).expect("encodable probe");
        assert_eq!(
            bits,
            direct.to_bits(),
            "{pw}: served score must equal direct scoring bit-for-bit"
        );
    }
    assert!(
        text.contains("\"log2_guess_number\":"),
        "score responses carry guess-number estimates when a table is loaded"
    );

    let logprob = client::request(
        addr,
        "POST",
        "/v1/logprob",
        Some(r#"{"passwords":["dragon","waytoolongtoencode"]}"#),
    )?;
    assert_eq!(logprob.status, 200);
    assert!(
        logprob.text().contains("null"),
        "unencodable passwords must score null"
    );
    println!(
        "POST /v1/logprob    → {} {}",
        logprob.status,
        logprob.text()
    );

    // ------------------------------------------------------------------
    // 4. Hot-swap a newly trained checkpoint under live load: persist,
    //    reload (the PR 3 checkpoint path), train it further, swap.
    // ------------------------------------------------------------------
    let dir = std::path::Path::new("target/serve_example");
    std::fs::create_dir_all(dir)?;
    let ckpt = dir.join("flow.pf");
    save_flow(&flow, &ckpt)?;
    let reloaded = load_flow(&ckpt)?;
    train(&reloaded, &split.train, &TrainConfig::tiny().with_epochs(1))?;

    // Keep background load running across the swap.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let loader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> u64 {
            let mut conn = Connection::open(addr, Duration::from_secs(30)).expect("connect");
            let mut completed = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let r = conn
                    .request("POST", "/v1/score", Some(r#"{"passwords":["jimmy91"]}"#))
                    .expect("request under load");
                assert_eq!(r.status, 200, "no dropped requests across a swap");
                completed += 1;
            }
            completed
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    let table_v2 = SampleTable::build(&reloaded, 2_000, 7);
    registry
        .swap(ServedModel::from_flow(
            "default",
            &reloaded,
            2,
            Some(table_v2),
        ))
        .expect("default is registered");
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let under_swap = loader.join().expect("load thread");
    assert!(under_swap > 0, "load must flow during the swap");
    println!("hot-swapped to version 2 under load ({under_swap} requests, zero dropped)");

    let swapped = client::request(
        addr,
        "POST",
        "/v1/score",
        Some(r#"{"passwords":["jimmy91"]}"#),
    )?;
    assert!(
        swapped.text().contains("\"version\":2"),
        "post-swap responses must carry the new version: {}",
        swapped.text()
    );
    let v2_direct = reloaded.password_log_prob("jimmy91").expect("encodable");
    assert!(
        swapped
            .text()
            .contains(&format!("{:016x}", v2_direct.to_bits())),
        "post-swap scores must come from the new weights"
    );

    // ------------------------------------------------------------------
    // 5. Metrics, then clean shutdown.
    // ------------------------------------------------------------------
    let metrics = client::request(addr, "GET", "/metrics", None)?.text();
    assert!(metrics.contains("passflow_requests_total{endpoint=\"score\",status=\"2xx\"}"));
    assert!(metrics.contains("passflow_batch_size_bucket"));
    assert!(metrics.contains("passflow_request_latency_seconds{quantile=\"0.99\"}"));
    println!(
        "GET /metrics        → {} lines of exposition",
        metrics.lines().count()
    );

    server.shutdown();
    server.join();
    println!("clean shutdown — serving example passed");
    Ok(())
}
