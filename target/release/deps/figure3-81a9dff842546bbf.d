/root/repo/target/release/deps/figure3-81a9dff842546bbf.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-81a9dff842546bbf: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
