//! `PFTRACE v1` request traces: record, synthesize and replay serving
//! workloads deterministically.
//!
//! A trace is a compact, versioned binary artifact describing a request
//! stream — inter-arrival gaps, endpoint mix and (heavy-tailed) batch
//! sizes — without storing any password text. Each record carries a
//! `pw_seed` from which its passwords are *derived* (SplitMix64 over a
//! lowercase+digits charset), so:
//!
//! * traces are small (16 bytes per request, no matter the batch size),
//! * replaying the same trace always issues the byte-identical request
//!   multiset, on any machine, at any lane count — which is what makes
//!   "multi-lane serving is bit-identical to single-lane" an assertable
//!   property at the workload level rather than per-request,
//! * recorded production traffic could be re-seeded, shipped and replayed
//!   without ever moving a real password.
//!
//! ## Byte layout (all integers little-endian)
//!
//! ```text
//! header — 32 bytes
//!   0   8  magic          b"PFTRACE1"
//!   8   4  version        u32 = 1
//!   12  8  record_count   u64
//!   20  8  seed           u64 (synth seed, or 0 for recorded traces)
//!   28  4  checksum       u32 FNV-1a over all record bytes
//! record — 16 bytes, record_count times
//!   0   4  gap_us         u32 microseconds since the previous request
//!   4   1  endpoint       u8: 0 = /v1/score, 1 = /v1/logprob, 2 = /v1/screen
//!   5   1  batch          u8 passwords in the request (1..=255)
//!   6   2  reserved       u16 = 0
//!   8   8  pw_seed        u64 SplitMix64 seed for the password derivation
//! ```
//!
//! Loading rejects bad magic, unknown versions, truncated or oversized
//! bodies, and checksum mismatches — a corrupt benchmark input fails
//! loudly instead of silently measuring the wrong workload.

use std::io::{Read, Write};
use std::net::SocketAddr;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::client::Connection;
use crate::json;

/// Magic bytes opening every trace file.
pub const TRACE_MAGIC: [u8; 8] = *b"PFTRACE1";
/// Current format version.
pub const TRACE_VERSION: u32 = 1;
/// Header size in bytes.
const HEADER_LEN: usize = 32;
/// Record size in bytes.
const RECORD_LEN: usize = 16;

/// The endpoint a trace record replays against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/score` — strength scoring.
    Score,
    /// `POST /v1/logprob` — log-probabilities only.
    LogProb,
    /// `POST /v1/screen` — scoring plus breach membership.
    Screen,
}

impl Endpoint {
    fn from_byte(byte: u8) -> Result<Endpoint, String> {
        match byte {
            0 => Ok(Endpoint::Score),
            1 => Ok(Endpoint::LogProb),
            2 => Ok(Endpoint::Screen),
            other => Err(format!("unknown endpoint tag {other}")),
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            Endpoint::Score => 0,
            Endpoint::LogProb => 1,
            Endpoint::Screen => 2,
        }
    }

    /// The request path this endpoint replays against.
    pub fn path(self) -> &'static str {
        match self {
            Endpoint::Score => "/v1/score",
            Endpoint::LogProb => "/v1/logprob",
            Endpoint::Screen => "/v1/screen",
        }
    }
}

/// One request in a trace: when (relative), where, and how big.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Microseconds since the previous record (0 for the first, or for
    /// requests fired back-to-back in a burst).
    pub gap_us: u32,
    /// Which endpoint the request hits.
    pub endpoint: Endpoint,
    /// Passwords in the request body (1..=255).
    pub batch: u8,
    /// Seed the request's passwords are derived from.
    pub pw_seed: u64,
}

impl TraceRecord {
    /// Derives this record's passwords: `batch` strings of 6–13
    /// lowercase+digit characters from SplitMix64 over `pw_seed`. Pure —
    /// same record, same passwords, forever.
    pub fn passwords(&self) -> Vec<String> {
        const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        let mut state = self.pw_seed;
        (0..self.batch.max(1))
            .map(|_| {
                let len = 6 + (splitmix64(&mut state) % 8) as usize;
                (0..len)
                    .map(|_| CHARSET[(splitmix64(&mut state) % CHARSET.len() as u64) as usize])
                    .map(char::from)
                    .collect()
            })
            .collect()
    }

    /// The JSON request body replay sends (passwords derived on the fly).
    pub fn body(&self) -> String {
        let items: Vec<String> = self
            .passwords()
            .into_iter()
            .map(|p| format!("\"{p}\""))
            .collect();
        format!("{{\"passwords\":[{}]}}", items.join(","))
    }

    fn to_bytes(self) -> [u8; RECORD_LEN] {
        let mut bytes = [0u8; RECORD_LEN];
        bytes[0..4].copy_from_slice(&self.gap_us.to_le_bytes());
        bytes[4] = self.endpoint.to_byte();
        bytes[5] = self.batch;
        // bytes 6..8 reserved, already zero
        bytes[8..16].copy_from_slice(&self.pw_seed.to_le_bytes());
        bytes
    }

    fn from_bytes(bytes: &[u8]) -> Result<TraceRecord, String> {
        if bytes[6] != 0 || bytes[7] != 0 {
            return Err("reserved record bytes must be zero".to_string());
        }
        Ok(TraceRecord {
            gap_us: u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")),
            endpoint: Endpoint::from_byte(bytes[4])?,
            batch: bytes[5],
            pw_seed: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        })
    }
}

/// Tuning for [`Trace::synth`]: a seeded synthetic workload shaped like
/// real password-screening traffic — bursty arrivals, a heavy-tailed
/// batch-size distribution, and a configurable endpoint mix.
#[derive(Clone, Copy, Debug)]
pub struct TraceSynthProfile {
    /// Mean inter-arrival gap in microseconds (exponential, with bursts).
    pub mean_gap_us: u32,
    /// Out of 1000 requests, how many arrive back-to-back with the
    /// previous one (gap 0) — models clients firing batched check-ups.
    pub burst_per_mille: u32,
    /// Out of 1000 requests, how many hit `/v1/screen`.
    pub screen_per_mille: u32,
    /// Out of 1000 requests, how many hit `/v1/logprob`.
    pub logprob_per_mille: u32,
    /// Cap on the heavy-tailed per-request batch size (1..=255).
    pub max_batch: u8,
}

impl Default for TraceSynthProfile {
    fn default() -> Self {
        TraceSynthProfile {
            mean_gap_us: 500,
            burst_per_mille: 300,
            screen_per_mille: 100,
            logprob_per_mille: 100,
            max_batch: 32,
        }
    }
}

/// A versioned request trace: the synth seed (0 for recorded traces) plus
/// the ordered records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The seed [`Trace::synth`] was called with (0 for recorded traces).
    pub seed: u64,
    /// The request stream, in arrival order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Synthesizes a `count`-request trace from `seed`. Fully
    /// deterministic: same seed and profile, same trace, any machine.
    pub fn synth(seed: u64, count: usize, profile: &TraceSynthProfile) -> Trace {
        let mut state = seed ^ 0x5055_4654_5241_4345; // domain-separate from pw seeds
        let records = (0..count)
            .map(|_| {
                let roll = splitmix64(&mut state) % 1000;
                let endpoint = if roll < profile.screen_per_mille as u64 {
                    Endpoint::Screen
                } else if roll < (profile.screen_per_mille + profile.logprob_per_mille) as u64 {
                    Endpoint::LogProb
                } else {
                    Endpoint::Score
                };
                let gap_us = if splitmix64(&mut state) % 1000 < profile.burst_per_mille as u64 {
                    0
                } else {
                    // Exponential inter-arrival via inverse CDF.
                    let u = to_unit(splitmix64(&mut state));
                    (-(profile.mean_gap_us as f64) * u.ln()).min(u32::MAX as f64) as u32
                };
                // Heavy-tailed batch size: Pareto(α≈1.16) truncated at
                // max_batch — mostly singletons, occasional big batches.
                let u = to_unit(splitmix64(&mut state));
                let batch = (1.0 / u.powf(1.0 / 1.16))
                    .min(profile.max_batch.max(1) as f64)
                    .max(1.0) as u8;
                let pw_seed = splitmix64(&mut state);
                TraceRecord {
                    gap_us,
                    endpoint,
                    batch,
                    pw_seed,
                }
            })
            .collect();
        Trace { seed, records }
    }

    /// Serializes the trace (header + records + checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(self.records.len() * RECORD_LEN);
        for record in &self.records {
            body.extend_from_slice(&record.to_bytes());
        }
        let mut bytes = Vec::with_capacity(HEADER_LEN + body.len());
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&body).to_le_bytes());
        bytes.extend_from_slice(&body);
        bytes
    }

    /// Parses a serialized trace.
    ///
    /// # Errors
    ///
    /// Rejects bad magic, unknown versions, length mismatches, nonzero
    /// reserved bytes, unknown endpoint tags and checksum mismatches.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, String> {
        if bytes.len() < HEADER_LEN {
            return Err(format!("trace too short: {} bytes", bytes.len()));
        }
        if bytes[0..8] != TRACE_MAGIC {
            return Err("bad magic: not a PFTRACE file".to_string());
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != TRACE_VERSION {
            return Err(format!("unsupported trace version {version}"));
        }
        let count = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        let seed = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        let checksum = u32::from_le_bytes(bytes[28..32].try_into().expect("4 bytes"));
        let body = &bytes[HEADER_LEN..];
        if body.len() != count * RECORD_LEN {
            return Err(format!(
                "length mismatch: header says {count} records, body holds {} bytes",
                body.len()
            ));
        }
        if fnv1a(body) != checksum {
            return Err("checksum mismatch: trace is corrupt".to_string());
        }
        let records = body
            .chunks_exact(RECORD_LEN)
            .map(TraceRecord::from_bytes)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Trace { seed, records })
    }

    /// Writes the trace to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(&self.to_bytes())?;
        file.flush()
    }

    /// Loads a trace from `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; format errors surface as `InvalidData`.
    pub fn load(path: &Path) -> std::io::Result<Trace> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Trace::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Total passwords across all records (the workload's row count).
    pub fn total_passwords(&self) -> u64 {
        self.records.iter().map(|r| r.batch.max(1) as u64).sum()
    }
}

/// One replayed request's observable outcome — everything that must be
/// invariant across lane counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Index of the trace record this outcome belongs to.
    pub index: usize,
    /// HTTP status the server answered.
    pub status: u16,
    /// Exact IEEE-754 bit patterns (`log_prob_bits`) per password, in
    /// request order; `"null"` for unencodable passwords. Empty for
    /// non-200 answers.
    pub bits: Vec<String>,
    /// Breach verdicts (`"true"`/`"false"`/`"null"`) per password for
    /// `/v1/screen` records; empty for the scoring endpoints.
    pub verdicts: Vec<String>,
}

/// Replays `trace` against a live server on `addr` with a pool of
/// `clients` keep-alive connections, honoring inter-arrival gaps.
///
/// Records are dispatched in trace order: each client claims the next
/// record, sleeps until its cumulative offset from replay start, fires,
/// and parses the response. Outcomes come back sorted by record index, so
/// two replays of the same trace are directly comparable — the
/// cross-lane-count bit-identity check in `tests/trace.rs` and the bench
/// is `assert_eq!(outcomes_a, outcomes_b)`.
///
/// # Errors
///
/// Returns the first connection-level error any client hits (HTTP error
/// statuses are outcomes, not errors).
pub fn replay(
    addr: SocketAddr,
    trace: &Trace,
    clients: usize,
) -> std::io::Result<Vec<ReplayOutcome>> {
    // Cumulative send offsets from replay start.
    let mut offsets = Vec::with_capacity(trace.records.len());
    let mut acc = Duration::ZERO;
    for record in &trace.records {
        acc += Duration::from_micros(record.gap_us as u64);
        offsets.push(acc);
    }
    let offsets = Arc::new(offsets);
    let records = Arc::new(trace.records.clone());
    let next = Arc::new(AtomicUsize::new(0));
    let outcomes = Arc::new(Mutex::new(Vec::with_capacity(records.len())));
    let start = Instant::now();

    let mut threads = Vec::new();
    for _ in 0..clients.max(1) {
        let records = Arc::clone(&records);
        let offsets = Arc::clone(&offsets);
        let next = Arc::clone(&next);
        let outcomes = Arc::clone(&outcomes);
        threads.push(std::thread::spawn(move || -> std::io::Result<()> {
            let mut conn = Connection::open(addr, Duration::from_secs(30))?;
            loop {
                let index = next.fetch_add(1, Ordering::SeqCst);
                let Some(record) = records.get(index) else {
                    return Ok(());
                };
                let target = start + offsets[index];
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                let response =
                    conn.request("POST", record.endpoint.path(), Some(&record.body()))?;
                let (bits, verdicts) = if response.status == 200 {
                    extract_outcome_fields(&response.text())
                } else {
                    (Vec::new(), Vec::new())
                };
                outcomes
                    .lock()
                    .expect("replay outcomes lock")
                    .push(ReplayOutcome {
                        index,
                        status: response.status,
                        bits,
                        verdicts,
                    });
            }
        }));
    }
    let mut first_error = None;
    for thread in threads {
        match thread.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => first_error = first_error.or(Some(e)),
            Err(_) => {
                first_error =
                    first_error.or_else(|| Some(std::io::Error::other("replay client panicked")));
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    let mut outcomes = Arc::try_unwrap(outcomes)
        .expect("all clients joined")
        .into_inner()
        .expect("replay outcomes lock");
    outcomes.sort_by_key(|o| o.index);
    Ok(outcomes)
}

/// Pulls the per-password `log_prob_bits` strings (and, for screen
/// responses, the `breached` verdicts) out of a response body; `"null"`
/// for null results.
fn extract_outcome_fields(body: &str) -> (Vec<String>, Vec<String>) {
    let Ok(doc) = json::parse(body) else {
        return (Vec::new(), Vec::new());
    };
    let Some(results) = doc.get("results").and_then(|r| r.as_arr()) else {
        return (Vec::new(), Vec::new());
    };
    let bits = results
        .iter()
        .map(|entry| {
            entry
                .get("log_prob_bits")
                .and_then(|b| b.as_str())
                .unwrap_or("null")
                .to_string()
        })
        .collect();
    let verdicts = results
        .iter()
        .filter_map(|entry| entry.get("breached").map(|v| v.to_string()))
        .collect();
    (bits, verdicts)
}

/// SplitMix64: tiny, seedable, and identical everywhere — the only RNG
/// the trace format depends on.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a u64 to (0, 1] — never 0, so `ln` and `powf` stay finite.
fn to_unit(x: u64) -> f64 {
    ((x >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

/// FNV-1a over `bytes` (32-bit).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &byte in bytes {
        hash ^= byte as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_is_deterministic_and_seed_sensitive() {
        let profile = TraceSynthProfile::default();
        let a = Trace::synth(7, 200, &profile);
        let b = Trace::synth(7, 200, &profile);
        let c = Trace::synth(8, 200, &profile);
        assert_eq!(a, b, "same seed must synthesize the same trace");
        assert_ne!(a, c, "different seeds must differ");
        assert!(a
            .records
            .iter()
            .all(|r| (1..=255).contains(&(r.batch as u32))));
        // The endpoint mix must actually mix.
        assert!(a.records.iter().any(|r| r.endpoint == Endpoint::Score));
        assert!(a.records.iter().any(|r| r.endpoint == Endpoint::Screen));
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let trace = Trace::synth(42, 300, &TraceSynthProfile::default());
        let bytes = trace.to_bytes();
        let parsed = Trace::from_bytes(&bytes).expect("valid trace");
        assert_eq!(parsed, trace);
        assert_eq!(parsed.to_bytes(), bytes, "re-serialization is stable");
    }

    #[test]
    fn corruption_is_rejected() {
        let trace = Trace::synth(1, 10, &TraceSynthProfile::default());
        let good = trace.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(Trace::from_bytes(&bad_magic).unwrap_err().contains("magic"));

        let mut bad_version = good.clone();
        bad_version[8] = 99;
        assert!(Trace::from_bytes(&bad_version)
            .unwrap_err()
            .contains("version"));

        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(Trace::from_bytes(&flipped)
            .unwrap_err()
            .contains("checksum"));

        let truncated = &good[..good.len() - RECORD_LEN];
        assert!(Trace::from_bytes(truncated)
            .unwrap_err()
            .contains("mismatch"));
    }

    #[test]
    fn passwords_derive_deterministically_from_the_record_seed() {
        let record = TraceRecord {
            gap_us: 0,
            endpoint: Endpoint::Score,
            batch: 5,
            pw_seed: 0xDEADBEEF,
        };
        let a = record.passwords();
        let b = record.passwords();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|p| (6..=13).contains(&p.len())));
        assert!(a.iter().all(|p| p
            .bytes()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit())));
        let other = TraceRecord {
            pw_seed: 0xDEADBEF0,
            ..record
        };
        assert_ne!(a, other.passwords(), "different seeds, different passwords");
    }
}
