//! The Monte-Carlo guess-number estimator and its persisted sample table.
//!
//! Following Dell'Amico & Filippone (CCS 2015), draw `N` passwords
//! `x_1 … x_N` i.i.d. from the model and keep their log-probabilities
//! `ℓ_i = log p(x_i)`, sorted descending. For a query password with score
//! `ℓ`, the *guess number* — its expected position in a descending-
//! probability enumeration — is estimated by importance sampling:
//!
//! ```text
//! Ĝ(ℓ) = (1/N) · Σ_{i : ℓ_i > ℓ} exp(−ℓ_i)        (ties count half)
//! ```
//!
//! because each sample `x_i` stronger than the query represents
//! `1/(N·p(x_i))` distinct passwords at its probability level. Sorting once
//! and precomputing the running log-sum-exp of `−ℓ_i` (and of `−2ℓ_i`, for
//! the variance) turns every query into a binary search plus a rank
//! interpolation over the cumulative weights — microseconds per lookup,
//! with a standard-error-based confidence interval derived from the same
//! sums. See DESIGN.md ("Strength estimation") for the derivation and error
//! bounds.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use rand::RngCore;

use passflow_nn::rng as nnrng;

use crate::error::{FlowError, Result};

use super::{run_chunks, ProbabilityModel};

/// Magic line identifying a persisted sample table; the version suffix is
/// bumped on any layout change so stale tables fail loudly.
const MAGIC_V1: &str = "PFSTRENGTH v1";

/// z-score of the two-sided 95% normal confidence interval.
const Z95: f64 = 1.959_964;

/// Passwords sampled per build chunk. Each chunk draws from its own RNG
/// stream keyed by the chunk index, so the table is a pure function of
/// `(model, samples, seed)` — never of the shard count that built it.
const BUILD_CHUNK: usize = 1024;

// ---------------------------------------------------------------------------
// Estimates
// ---------------------------------------------------------------------------

/// An optimal-attacker guess-number estimate with its confidence interval.
///
/// Ranks are reported on the log₂ scale (the "bits of security" strength
/// meters use); [`guess_number`](Self::guess_number) converts back. The
/// interval is the ±z·SE normal interval of the Monte-Carlo estimator at
/// 95% confidence, clamped to `rank ≥ 1`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StrengthEstimate {
    /// log₂ of the estimated guess number (position in a descending-
    /// probability enumeration, starting at 1).
    pub log2_guess_number: f64,
    /// log₂ of the lower 95% confidence bound.
    pub log2_ci_low: f64,
    /// log₂ of the upper 95% confidence bound.
    pub log2_ci_high: f64,
    /// Table samples strictly more probable than the query.
    pub samples_above: usize,
}

impl StrengthEstimate {
    /// The estimated guess number (`2^log2_guess_number`).
    pub fn guess_number(&self) -> f64 {
        self.log2_guess_number.exp2()
    }

    /// The 95% confidence interval as plain guess numbers.
    pub fn ci(&self) -> (f64, f64) {
        (self.log2_ci_low.exp2(), self.log2_ci_high.exp2())
    }
}

/// A sampling-attack rank estimate: the expected number of **unique**
/// guesses the engine's static sampling attacker generates before (and
/// including) the query password, with a confidence interval.
///
/// This is the quantity an [`Attack`](crate::Attack) run measures directly
/// (see [`attack_unique_rank`](super::attack_unique_rank)): in an i.i.d.
/// guess stream, a password `y` precedes the query `x` with probability
/// `p(y) / (p(y) + p(x))`, so the expected unique rank is
///
/// ```text
/// R(x) = 1 + Σ_{y≠x} p(y) / (p(y) + p(x))
/// ```
///
/// and `Σ_y p(y)/(p(y)+p(x)) = E_{y∼p}[1/(p(y)+p(x))]`, estimated as
/// `(1/N) Σ_i 1/(p(x_i)+p(x))` over the table samples (the query's own
/// occurrences among the samples add at most ½ to the estimate, far inside
/// the interval). The interval combines the Monte-Carlo standard error with
/// the rank's own run-to-run variance (bounded by `R − 1`), so a single
/// engine measurement is expected to land inside it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingRankEstimate {
    /// Expected unique-guess rank (≥ 1).
    pub rank: f64,
    /// Lower 95% confidence bound (≥ 1).
    pub ci_low: f64,
    /// Upper 95% confidence bound.
    pub ci_high: f64,
}

impl SamplingRankEstimate {
    /// Whether a measured rank falls inside the confidence interval.
    pub fn contains(&self, measured: f64) -> bool {
        self.ci_low <= measured && measured <= self.ci_high
    }
}

// ---------------------------------------------------------------------------
// Sample table
// ---------------------------------------------------------------------------

/// A persisted, versioned Monte-Carlo sample table for one model.
///
/// Build once ([`build`](Self::build) /
/// [`build_sharded`](Self::build_sharded)), persist with
/// [`save`](Self::save), and answer strength queries forever after in
/// microseconds ([`estimate`](Self::estimate)) — no guess enumeration, no
/// model evaluation beyond scoring the query password itself.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleTable {
    model_name: String,
    seed: u64,
    /// Sample log-probabilities, sorted descending (most probable first).
    log_probs: Vec<f64>,
    /// `cum_log_w[i] = ln Σ_{j≤i} exp(−ℓ_j)` — running importance weights.
    cum_log_w: Vec<f64>,
    /// `cum_log_w2[i] = ln Σ_{j≤i} exp(−2ℓ_j)` — for the standard error.
    cum_log_w2: Vec<f64>,
    /// Samples the model declined to score (dropped from the table).
    dropped: usize,
}

/// Numerically stable `ln(eᵃ + eᵇ)`.
fn log_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

impl SampleTable {
    /// Builds a table of `samples` passwords drawn from `model`, on one
    /// thread. Identical to [`build_sharded`](Self::build_sharded) with any
    /// shard count.
    pub fn build(model: &dyn ProbabilityModel, samples: usize, seed: u64) -> SampleTable {
        Self::build_sharded(model, samples, seed, 1)
    }

    /// Builds a table of `samples` passwords drawn from `model`, sampling
    /// and scoring chunks on `shards` worker threads.
    ///
    /// Mirroring the attack engine's guarantee, sharding is a throughput
    /// knob only: each chunk draws from an RNG stream keyed by
    /// `(seed, chunk index)` and chunk outputs are folded in chunk order,
    /// so the table is byte-identical for any shard count.
    pub fn build_sharded(
        model: &dyn ProbabilityModel,
        samples: usize,
        seed: u64,
        shards: usize,
    ) -> SampleTable {
        let num_chunks = samples.div_ceil(BUILD_CHUNK);
        let produce = |chunk: usize| -> Vec<Option<f64>> {
            let len = BUILD_CHUNK.min(samples - chunk * BUILD_CHUNK);
            let mut rng = nnrng::derived(seed, chunk as u64);
            let rng: &mut dyn RngCore = &mut rng;
            let guesses = model.generate_batch(len, rng);
            model.password_log_probs(&guesses)
        };
        let chunk_scores = run_chunks(num_chunks, shards.max(1), &produce);

        let mut log_probs: Vec<f64> = Vec::with_capacity(samples);
        let mut dropped = 0usize;
        for score in chunk_scores.into_iter().flatten() {
            match score {
                Some(lp) => log_probs.push(lp),
                None => dropped += 1,
            }
        }
        // Descending by probability; total order via total_cmp so NaNs (a
        // misbehaving model) cannot poison the sort.
        log_probs.sort_by(|a, b| b.total_cmp(a));
        Self::from_sorted(model.name(), seed, log_probs, dropped)
    }

    /// Assembles a table from already-sorted log-probabilities (descending),
    /// rebuilding the cumulative weight arrays.
    fn from_sorted(
        model_name: &str,
        seed: u64,
        log_probs: Vec<f64>,
        dropped: usize,
    ) -> SampleTable {
        let mut cum_log_w = Vec::with_capacity(log_probs.len());
        let mut cum_log_w2 = Vec::with_capacity(log_probs.len());
        let mut acc = f64::NEG_INFINITY;
        let mut acc2 = f64::NEG_INFINITY;
        for &lp in &log_probs {
            acc = log_add_exp(acc, -lp);
            acc2 = log_add_exp(acc2, -2.0 * lp);
            cum_log_w.push(acc);
            cum_log_w2.push(acc2);
        }
        SampleTable {
            model_name: model_name.to_string(),
            seed,
            log_probs,
            cum_log_w,
            cum_log_w2,
            dropped,
        }
    }

    /// Name of the model the table was built from (a [`Guesser::name`]
    /// label; callers should score queries with the same model).
    ///
    /// [`Guesser::name`]: crate::Guesser::name
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Seed the samples were drawn with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of scored samples backing the estimator.
    pub fn len(&self) -> usize {
        self.log_probs.len()
    }

    /// Whether the table holds no samples.
    pub fn is_empty(&self) -> bool {
        self.log_probs.is_empty()
    }

    /// Samples the model could not score during the build (excluded from
    /// the table; a nonzero count slightly biases ranks downward).
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Optimal-attacker guess number for a password with natural-log
    /// probability `log_prob`: one binary search over the sorted samples
    /// plus a rank interpolation over the precomputed cumulative weights.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn estimate(&self, log_prob: f64) -> StrengthEstimate {
        assert!(!self.is_empty(), "cannot estimate from an empty table");
        let n = self.log_probs.len() as f64;
        // Descending order: strictly-greater prefix, then the tied run.
        let above = self.log_probs.partition_point(|&v| v > log_prob);
        let geq = self.log_probs.partition_point(|&v| v >= log_prob);
        let ties = geq - above;

        // Rank interpolation: all strictly-stronger samples count fully,
        // samples tied with the query count half (the query sits in the
        // middle of its probability level).
        let log_w_above = if above > 0 {
            self.cum_log_w[above - 1]
        } else {
            f64::NEG_INFINITY
        };
        let log_w2_above = if above > 0 {
            self.cum_log_w2[above - 1]
        } else {
            f64::NEG_INFINITY
        };
        let (log_w, log_w2) = if ties > 0 {
            let tie = (ties as f64 * 0.5).ln() - log_prob;
            let tie2 = (ties as f64 * 0.5).ln() - 2.0 * log_prob;
            (
                log_add_exp(log_w_above, tie),
                log_add_exp(log_w2_above, tie2),
            )
        } else {
            (log_w_above, log_w2_above)
        };

        let log_g = log_w - n.ln();
        let g = log_g.exp(); // +inf beyond ~e709 — handled by f64 semantics.

        // Rank offset: with no tied samples the query sits just after the
        // stronger mass (`+1`); with ties, half the tie weight is already in
        // `g` and the query's expected position within its own level of K
        // equal-probability passwords is (K+1)/2 = K/2 + ½, so only ½ more.
        let offset = if ties > 0 { 0.5 } else { 1.0 };
        let rank = g + offset;

        // SE of the mean of N importance weights: Var = (M2 − G²)/N with
        // M2 = (1/N)·Σ wᵢ². Computed relative to G so extreme scales stay
        // finite: (se/G)² = (M2/G² − 1)/N.
        let se_rel = if g > 0.0 && log_w2 > f64::NEG_INFINITY {
            let log_m2 = log_w2 - n.ln();
            ((log_m2 - 2.0 * log_g).exp() - 1.0).max(0.0).sqrt() / n.sqrt()
        } else {
            0.0
        };
        let low = ((g * (1.0 - Z95 * se_rel)).max(0.0) + offset).max(1.0);
        let high = (g * (1.0 + Z95 * se_rel) + offset).max(1.0);

        StrengthEstimate {
            log2_guess_number: rank.max(1.0).log2(),
            log2_ci_low: low.log2(),
            log2_ci_high: high.log2(),
            samples_above: above,
        }
    }

    /// Convenience: scores `password` with `model` and estimates its guess
    /// number; `None` if the model cannot score it.
    pub fn estimate_password(
        &self,
        model: &dyn ProbabilityModel,
        password: &str,
    ) -> Option<StrengthEstimate> {
        model
            .password_log_prob(password)
            .map(|lp| self.estimate(lp))
    }

    /// Sampling-attack rank for a password with natural-log probability
    /// `log_prob` — the expected unique-guess count of the engine's static
    /// sampling attacker (see [`SamplingRankEstimate`]). O(N) per query.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn sampling_rank(&self, log_prob: f64) -> SamplingRankEstimate {
        assert!(!self.is_empty(), "cannot estimate from an empty table");
        let n = self.log_probs.len() as f64;
        // t_i = 1/(p(x_i) + p(x)), computed as exp(−ln(e^{ℓ_i} + e^ℓ})).
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for &lp in &self.log_probs {
            let t = (-log_add_exp(lp, log_prob)).exp();
            sum += t;
            sum_sq += t * t;
        }
        let mean = sum / n;
        let rank = 1.0 + mean;
        // Monte-Carlo variance of the mean …
        let var_mc = ((sum_sq / n) - mean * mean).max(0.0) / n;
        // … plus the rank's own run-to-run variance, Σ q(1−q) ≤ R − 1.
        let var_rank = (rank - 1.0).max(0.0);
        let half_width = Z95 * (var_mc + var_rank).sqrt();
        SamplingRankEstimate {
            rank,
            ci_low: (rank - half_width).max(1.0),
            ci_high: rank + half_width,
        }
    }

    // -----------------------------------------------------------------
    // Persistence
    // -----------------------------------------------------------------

    /// Serializes the table to a writer in the versioned `PFSTRENGTH v1`
    /// text format (log-probabilities as hexadecimal IEEE-754 bit patterns,
    /// like the `PASSFLOW` checkpoint formats — bit-exact round trips,
    /// diff-able files).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::IncompatibleWeights`] on I/O failure.
    pub fn save_to_writer<W: Write>(&self, writer: &mut W) -> Result<()> {
        let io_err =
            |e: std::io::Error| FlowError::IncompatibleWeights(format!("write failed: {e}"));
        writeln!(writer, "{MAGIC_V1}").map_err(io_err)?;
        writeln!(writer, "model {}", self.model_name).map_err(io_err)?;
        writeln!(writer, "seed {}", self.seed).map_err(io_err)?;
        writeln!(writer, "dropped {}", self.dropped).map_err(io_err)?;
        writeln!(writer, "samples {}", self.log_probs.len()).map_err(io_err)?;
        for line in self.log_probs.chunks(256) {
            let words: Vec<String> = line
                .iter()
                .map(|v| format!("{:016x}", v.to_bits()))
                .collect();
            writeln!(writer, "{}", words.join(" ")).map_err(io_err)?;
        }
        writeln!(writer, "end").map_err(io_err)
    }

    /// Saves the table to a file (see [`save_to_writer`](Self::save_to_writer)).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::IncompatibleWeights`] on I/O failure.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let mut buf = Vec::new();
        self.save_to_writer(&mut buf)?;
        fs::write(path, buf)
            .map_err(|e| FlowError::IncompatibleWeights(format!("write failed: {e}")))
    }

    /// Deserializes a table from a reader, validating the format version
    /// and rebuilding the cumulative weight arrays.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::IncompatibleWeights`] if the header, version or
    /// sample block is malformed.
    pub fn load_from_reader<R: Read>(reader: R) -> Result<SampleTable> {
        let malformed = |msg: &str| FlowError::IncompatibleWeights(format!("sample table: {msg}"));
        let mut lines = BufReader::new(reader).lines();
        let mut next_line = |what: &str| -> Result<String> {
            lines
                .next()
                .transpose()
                .map_err(|e| malformed(&format!("read failed: {e}")))?
                .ok_or_else(|| malformed(&format!("missing {what}")))
        };

        let magic = next_line("magic")?;
        if magic.trim() != MAGIC_V1 {
            return Err(malformed(&format!(
                "unsupported format {:?} (expected {MAGIC_V1:?})",
                magic.trim()
            )));
        }
        let field = |line: String, key: &str| -> Result<String> {
            line.strip_prefix(key)
                .map(|rest| rest.trim().to_string())
                .ok_or_else(|| malformed(&format!("expected {key:?} line, got {line:?}")))
        };
        let model_name = field(next_line("model")?, "model")?;
        let seed: u64 = field(next_line("seed")?, "seed")?
            .parse()
            .map_err(|_| malformed("bad seed"))?;
        let dropped: usize = field(next_line("dropped")?, "dropped")?
            .parse()
            .map_err(|_| malformed("bad dropped count"))?;
        let samples: usize = field(next_line("samples")?, "samples")?
            .parse()
            .map_err(|_| malformed("bad sample count"))?;

        let mut log_probs: Vec<f64> = Vec::with_capacity(samples);
        while log_probs.len() < samples {
            let line = next_line("sample block")?;
            for word in line.split_whitespace() {
                let bits = u64::from_str_radix(word, 16)
                    .map_err(|_| malformed(&format!("bad sample word {word:?}")))?;
                log_probs.push(f64::from_bits(bits));
            }
        }
        if log_probs.len() != samples {
            return Err(malformed("sample block longer than declared"));
        }
        if next_line("end marker")?.trim() != "end" {
            return Err(malformed("missing end marker"));
        }
        if log_probs.windows(2).any(|w| w[0].total_cmp(&w[1]).is_lt()) {
            return Err(malformed("samples are not sorted descending"));
        }
        Ok(Self::from_sorted(&model_name, seed, log_probs, dropped))
    }

    /// Loads a table from a file (see
    /// [`load_from_reader`](Self::load_from_reader)).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::IncompatibleWeights`] if the file cannot be
    /// read or is malformed.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<SampleTable> {
        let file = fs::File::open(path)
            .map_err(|e| FlowError::IncompatibleWeights(format!("open failed: {e}")))?;
        Self::load_from_reader(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    /// A toy exact model: four passwords with fixed probabilities.
    struct Toy;

    const TOY: [(&str, f64); 4] = [("a", 0.4), ("b", 0.3), ("c", 0.2), ("d", 0.1)];

    impl crate::engine::Guesser for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
            (0..n)
                .map(|_| {
                    let u = (rng.next_u32() as f64) / (u32::MAX as f64);
                    let mut acc = 0.0;
                    for (pw, p) in TOY {
                        acc += p;
                        if u <= acc {
                            return pw.to_string();
                        }
                    }
                    "d".to_string()
                })
                .collect()
        }
    }

    impl ProbabilityModel for Toy {
        fn password_log_prob(&self, password: &str) -> Option<f64> {
            TOY.iter()
                .find(|(pw, _)| *pw == password)
                .map(|(_, p)| p.ln())
        }
    }

    #[test]
    fn estimates_recover_exact_ranks_on_a_toy_model() {
        let table = SampleTable::build(&Toy, 4_000, 3);
        assert_eq!(table.dropped(), 0);
        // True descending-probability ranks: a=1, b=2, c=3, d=4.
        for (i, (pw, _)) in TOY.iter().enumerate() {
            let lp = Toy.password_log_prob(pw).unwrap();
            let est = table.estimate(lp);
            let true_rank = (i + 1) as f64;
            let (lo, hi) = est.ci();
            assert!(
                lo <= true_rank && true_rank <= hi,
                "{pw}: rank {true_rank} outside [{lo:.2}, {hi:.2}] (est {:.2})",
                est.guess_number()
            );
        }
    }

    #[test]
    fn estimates_are_monotone_in_probability() {
        let table = SampleTable::build(&Toy, 2_000, 5);
        let ranks: Vec<f64> = TOY
            .iter()
            .map(|(pw, _)| {
                table
                    .estimate(Toy.password_log_prob(pw).unwrap())
                    .guess_number()
            })
            .collect();
        for pair in ranks.windows(2) {
            assert!(pair[0] <= pair[1], "ranks must grow as probability falls");
        }
        // An impossible password ranks beyond every sample.
        let worst = table.estimate(-40.0);
        assert!(worst.guess_number() >= ranks[3]);
        assert_eq!(worst.samples_above, table.len());
    }

    #[test]
    fn sharded_build_is_identical_to_sequential() {
        let sequential = SampleTable::build(&Toy, 3_000, 7);
        for shards in [2, 4, 8] {
            let sharded = SampleTable::build_sharded(&Toy, 3_000, 7, shards);
            assert_eq!(sharded, sequential, "shards={shards} diverged");
        }
    }

    #[test]
    fn save_load_round_trips_bit_exactly() {
        let table = SampleTable::build(&Toy, 1_500, 11);
        let mut buf = Vec::new();
        table.save_to_writer(&mut buf).unwrap();
        let loaded = SampleTable::load_from_reader(&buf[..]).unwrap();
        assert_eq!(loaded, table);
        assert_eq!(loaded.model_name(), "toy");
        assert_eq!(loaded.seed(), 11);
    }

    #[test]
    fn loader_rejects_malformed_tables() {
        let bad_magic = b"PFSTRENGTH v9\nmodel t\nseed 0\ndropped 0\nsamples 0\nend\n";
        assert!(SampleTable::load_from_reader(&bad_magic[..]).is_err());

        let table = SampleTable::build(&Toy, 64, 1);
        let mut buf = Vec::new();
        table.save_to_writer(&mut buf).unwrap();
        // Truncated sample block.
        let cut = buf.len() - 40;
        assert!(SampleTable::load_from_reader(&buf[..cut]).is_err());

        // Unsorted samples are rejected.
        let unsorted =
            b"PFSTRENGTH v1\nmodel t\nseed 0\ndropped 0\nsamples 2\nbff0000000000000 bfe0000000000000\nend\n";
        assert!(SampleTable::load_from_reader(&unsorted[..]).is_err());
    }

    #[test]
    fn sampling_rank_tracks_theory_on_the_toy_model() {
        let table = SampleTable::build(&Toy, 4_000, 13);
        // Exact expected unique rank of "a": 1 + Σ_{y≠a} p(y)/(p(y)+p(a)).
        let pa = 0.4;
        let exact: f64 = 1.0 + [0.3, 0.2, 0.1].iter().map(|p| p / (p + pa)).sum::<f64>();
        let est = table.sampling_rank(pa.ln());
        assert!(
            est.contains(exact),
            "exact {exact:.3} outside [{:.3}, {:.3}]",
            est.ci_low,
            est.ci_high
        );
        assert!(est.ci_low >= 1.0);
    }

    #[test]
    #[should_panic(expected = "empty table")]
    fn empty_table_estimates_panic() {
        let table = SampleTable::from_sorted("empty", 0, Vec::new(), 0);
        let _ = table.estimate(-1.0);
    }
}
