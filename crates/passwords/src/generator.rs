//! Synthetic "RockYou-like" corpus generation.
//!
//! The RockYou leak the paper evaluates on cannot be redistributed, so the
//! reproduction generates a corpus with the same *statistical shape*:
//!
//! * a heavy head of extremely common passwords ("123456", "password", …)
//!   repeated many times (leaks contain huge numbers of duplicates),
//! * name/word roots composed with years, digit suffixes and capitalization,
//! * leet-speak substitutions,
//! * keyboard walks,
//! * a thin tail of near-random strings.
//!
//! Component probabilities follow published analyses of leaked corpora
//! (roughly: a third bare words/names, a third word+digits, the rest split
//! between common passwords, walks, leet variants and noise). Frequencies of
//! the head are Zipf-distributed so that deduplication removes a realistic
//! fraction of the corpus.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::PasswordCorpus;
use crate::wordlists::{
    COMMON_WORDS, DIGIT_SUFFIXES, FIRST_NAMES, KEYBOARD_WALKS, LEET_SUBSTITUTIONS, TOP_PASSWORDS,
};
use passflow_nn::rng as nnrng;

/// Configuration for [`SyntheticCorpusGenerator`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Total number of password instances to generate (with duplicates, like
    /// a real leak).
    pub size: usize,
    /// Maximum password length; longer compositions are truncated at
    /// generation time so every password is usable by the encoder.
    pub max_len: usize,
    /// Zipf exponent controlling how skewed the head of the distribution is.
    /// RockYou's head is roughly Zipfian with exponent close to 1.
    pub zipf_exponent: f64,
    /// Fraction of instances drawn from the Zipf head of very common
    /// passwords.
    pub head_fraction: f64,
}

impl CorpusConfig {
    /// A small corpus (30K instances) suitable for unit tests and examples.
    pub fn small() -> Self {
        CorpusConfig {
            size: 30_000,
            max_len: 10,
            zipf_exponent: 1.0,
            head_fraction: 0.25,
        }
    }

    /// The default evaluation corpus (300K instances): large enough for the
    /// relative comparisons in the tables, small enough for CPU training.
    pub fn evaluation() -> Self {
        CorpusConfig {
            size: 300_000,
            max_len: 10,
            zipf_exponent: 1.0,
            head_fraction: 0.25,
        }
    }

    /// A corpus whose size mimics the paper's full RockYou setting
    /// (~29.5M length-≤10 passwords). Only practical for long offline runs.
    pub fn paper_scale() -> Self {
        CorpusConfig {
            size: 29_500_000,
            max_len: 10,
            zipf_exponent: 1.0,
            head_fraction: 0.25,
        }
    }

    /// Returns a copy of the configuration with a different total size.
    #[must_use]
    pub fn with_size(mut self, size: usize) -> Self {
        self.size = size;
        self
    }
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self::evaluation()
    }
}

/// Generates synthetic corpora that stand in for the RockYou leak.
#[derive(Clone, Debug)]
pub struct SyntheticCorpusGenerator {
    config: CorpusConfig,
    /// Precomputed Zipf weights over [`TOP_PASSWORDS`].
    head_weights: Vec<f32>,
}

impl SyntheticCorpusGenerator {
    /// Creates a generator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration requests a zero-sized corpus or a
    /// `head_fraction` outside `[0, 1]`.
    pub fn new(config: CorpusConfig) -> Self {
        assert!(config.size > 0, "corpus size must be positive");
        assert!(
            (0.0..=1.0).contains(&config.head_fraction),
            "head_fraction must be in [0, 1]"
        );
        assert!(config.max_len >= 4, "max_len must be at least 4");
        let head_weights = (1..=TOP_PASSWORDS.len())
            .map(|rank| (1.0 / (rank as f64).powf(config.zipf_exponent)) as f32)
            .collect();
        SyntheticCorpusGenerator {
            config,
            head_weights,
        }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Generates a corpus deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> PasswordCorpus {
        let mut rng = nnrng::seeded(seed);
        let mut passwords = Vec::with_capacity(self.config.size);
        for _ in 0..self.config.size {
            passwords.push(self.sample_password(&mut rng));
        }
        PasswordCorpus::new(passwords)
    }

    /// Samples a single password instance.
    pub fn sample_password<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let p: f64 = rng.gen();
        let password = if p < self.config.head_fraction {
            self.sample_head(rng)
        } else {
            let style: f64 = rng.gen();
            if style < 0.28 {
                self.sample_bare_word(rng)
            } else if style < 0.62 {
                self.sample_word_digits(rng)
            } else if style < 0.72 {
                self.sample_leet(rng)
            } else if style < 0.80 {
                self.sample_keyboard_walk(rng)
            } else if style < 0.88 {
                self.sample_word_word(rng)
            } else if style < 0.95 {
                self.sample_digits_only(rng)
            } else {
                self.sample_random_tail(rng)
            }
        };
        self.truncate(password)
    }

    fn truncate(&self, password: String) -> String {
        if password.chars().count() <= self.config.max_len {
            password
        } else {
            password.chars().take(self.config.max_len).collect()
        }
    }

    fn sample_head<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let idx = nnrng::sample_discrete(&self.head_weights, rng);
        TOP_PASSWORDS[idx].to_string()
    }

    fn pick_root<R: Rng + ?Sized>(&self, rng: &mut R) -> &'static str {
        if rng.gen_bool(0.55) {
            FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())]
        } else {
            COMMON_WORDS[rng.gen_range(0..COMMON_WORDS.len())]
        }
    }

    fn maybe_capitalize<R: Rng + ?Sized>(&self, word: &str, rng: &mut R) -> String {
        if rng.gen_bool(0.12) {
            let mut chars = word.chars();
            match chars.next() {
                Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        } else {
            word.to_string()
        }
    }

    fn sample_bare_word<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let root = self.pick_root(rng);
        self.maybe_capitalize(root, rng)
    }

    fn sample_word_digits<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let root = self.pick_root(rng);
        let root = self.maybe_capitalize(root, rng);
        let suffix = match rng.gen_range(0..10u8) {
            // Birth years are a dominant suffix class ("jimmy91").
            0..=3 => {
                let year = rng.gen_range(1950..2012);
                if rng.gen_bool(0.6) {
                    format!("{:02}", year % 100)
                } else {
                    format!("{year}")
                }
            }
            4..=6 => DIGIT_SUFFIXES[rng.gen_range(0..DIGIT_SUFFIXES.len())].to_string(),
            _ => format!("{}", rng.gen_range(0..100)),
        };
        format!("{root}{suffix}")
    }

    fn sample_leet<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let root = self.pick_root(rng).to_string();
        let mut out = String::with_capacity(root.len());
        for c in root.chars() {
            let candidates: Vec<char> = LEET_SUBSTITUTIONS
                .iter()
                .filter(|(from, _)| *from == c)
                .map(|&(_, to)| to)
                .collect();
            if !candidates.is_empty() && rng.gen_bool(0.45) {
                out.push(candidates[rng.gen_range(0..candidates.len())]);
            } else {
                out.push(c);
            }
        }
        if rng.gen_bool(0.3) {
            out.push_str(&format!("{}", rng.gen_range(0..10)));
        }
        out
    }

    fn sample_keyboard_walk<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let walk = KEYBOARD_WALKS[rng.gen_range(0..KEYBOARD_WALKS.len())];
        if rng.gen_bool(0.2) {
            format!("{walk}{}", rng.gen_range(0..10))
        } else {
            walk.to_string()
        }
    }

    fn sample_word_word<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let a = self.pick_root(rng);
        let b = self.pick_root(rng);
        format!("{a}{b}")
    }

    fn sample_digits_only<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        let len = rng.gen_range(5..=self.config.max_len.min(10));
        if rng.gen_bool(0.35) {
            // Dates: DDMMYYYY or MMDDYY style.
            let day = rng.gen_range(1..29);
            let month = rng.gen_range(1..13);
            let year = rng.gen_range(1950..2012);
            return format!("{day:02}{month:02}{year}")
                .chars()
                .take(len)
                .collect();
        }
        (0..len)
            .map(|_| char::from(b'0' + rng.gen_range(0..10u8)))
            .collect()
    }

    fn sample_random_tail<R: Rng + ?Sized>(&self, rng: &mut R) -> String {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        let len = rng.gen_range(6..=self.config.max_len.min(10));
        (0..len)
            .map(|_| char::from(CHARS[rng.gen_range(0..CHARS.len())]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::PasswordEncoder;
    use std::collections::HashMap;

    #[test]
    fn generates_requested_size_with_bounded_length() {
        let gen = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(5_000));
        let corpus = gen.generate(1);
        assert_eq!(corpus.len(), 5_000);
        assert!(corpus.iter().all(|p| p.chars().count() <= 10));
        assert!(corpus.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(2_000));
        let a = gen.generate(42);
        let b = gen.generate(42);
        let c = gen.generate(43);
        assert_eq!(a.passwords(), b.passwords());
        assert_ne!(a.passwords(), c.passwords());
    }

    #[test]
    fn corpus_has_heavy_duplicates_like_a_real_leak() {
        let gen = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(20_000));
        let corpus = gen.generate(3);
        let unique = corpus.unique_count();
        // RockYou has ~14.3M unique out of ~32.5M (≈44%); the synthetic corpus
        // should also lose a substantial fraction to duplicates, and must not
        // be all-duplicates either.
        let ratio = unique as f64 / corpus.len() as f64;
        assert!(ratio > 0.3 && ratio < 0.95, "unique ratio was {ratio}");
    }

    #[test]
    fn most_common_password_is_a_top_list_entry() {
        let gen = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(30_000));
        let corpus = gen.generate(5);
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for p in corpus.iter() {
            *counts.entry(p.as_str()).or_default() += 1;
        }
        let (most_common, count) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert!(
            TOP_PASSWORDS.contains(most_common),
            "most common was {most_common} ({count} occurrences)"
        );
    }

    #[test]
    fn all_passwords_are_encodable_with_default_encoder() {
        let gen = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(5_000));
        let corpus = gen.generate(9);
        let encoder = PasswordEncoder::default();
        let unencodable: Vec<&String> = corpus.iter().filter(|p| !encoder.can_encode(p)).collect();
        assert!(
            unencodable.is_empty(),
            "unencodable passwords: {unencodable:?}"
        );
    }

    #[test]
    fn corpus_mixes_structural_classes() {
        let gen = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(20_000));
        let corpus = gen.generate(11);
        let with_digits = corpus
            .iter()
            .filter(|p| p.chars().any(|c| c.is_ascii_digit()))
            .count();
        let letters_only = corpus
            .iter()
            .filter(|p| p.chars().all(|c| c.is_ascii_alphabetic()))
            .count();
        let digits_only = corpus
            .iter()
            .filter(|p| p.chars().all(|c| c.is_ascii_digit()))
            .count();
        let n = corpus.len();
        assert!(with_digits as f64 / n as f64 > 0.3);
        assert!(letters_only as f64 / n as f64 > 0.1);
        assert!(digits_only as f64 / n as f64 > 0.05);
    }

    #[test]
    fn config_constructors_differ_in_scale() {
        assert!(CorpusConfig::small().size < CorpusConfig::evaluation().size);
        assert!(CorpusConfig::evaluation().size < CorpusConfig::paper_scale().size);
        assert_eq!(CorpusConfig::default(), CorpusConfig::evaluation());
    }

    #[test]
    #[should_panic(expected = "size must be positive")]
    fn zero_size_rejected() {
        let _ = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(0));
    }
}
