//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! masking strategy (Table VI), number of coupling layers and hidden width.
//! These measure the *cost* side of the ablations (inference throughput);
//! the quality side is measured by the `table6` experiment binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use passflow_core::{FlowConfig, MaskStrategy, PassFlow};
use passflow_nn::rng as nnrng;

fn make_flow(config: FlowConfig) -> PassFlow {
    let mut rng = nnrng::seeded(17);
    PassFlow::new(config, &mut rng).expect("valid config")
}

fn bench_masking_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("masking_inverse_256");
    group.throughput(Throughput::Elements(256));
    for masking in [
        MaskStrategy::CharRun(1),
        MaskStrategy::CharRun(2),
        MaskStrategy::Horizontal,
    ] {
        let flow = make_flow(FlowConfig::tiny().with_masking(masking));
        let mut rng = nnrng::seeded(18);
        let z = flow.sample_latent(256, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(masking.label()), &z, |b, z| {
            b.iter(|| flow.inverse(z))
        });
    }
    group.finish();
}

fn bench_depth_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupling_layers_inverse_256");
    group.throughput(Throughput::Elements(256));
    for layers in [4usize, 8, 12, 18] {
        let flow = make_flow(
            FlowConfig::tiny()
                .with_coupling_layers(layers)
                .with_hidden_size(32),
        );
        let mut rng = nnrng::seeded(19);
        let z = flow.sample_latent(256, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(layers), &z, |b, z| {
            b.iter(|| flow.inverse(z))
        });
    }
    group.finish();
}

fn bench_width_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("hidden_width_inverse_256");
    group.throughput(Throughput::Elements(256));
    for hidden in [16usize, 64, 256] {
        let flow = make_flow(FlowConfig::tiny().with_hidden_size(hidden));
        let mut rng = nnrng::seeded(20);
        let z = flow.sample_latent(256, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(hidden), &z, |b, z| {
            b.iter(|| flow.inverse(z))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_masking_strategies,
    bench_depth_scaling,
    bench_width_scaling
);
criterion_main!(benches);
