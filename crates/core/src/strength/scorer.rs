//! A detached, `Send + Sync` batch-scoring handle over a flow snapshot.
//!
//! [`FlowScorer`] is the serving-side entry point into the fused
//! log-probability path: it owns an immutable [`FlowSnapshot`], a clone of
//! the flow's encoder and the quantization-cell volume, so any thread can
//! score password batches without borrowing the [`PassFlow`] it came from —
//! and without observing later weight mutations. A trainer can keep
//! updating the live flow while a server keeps answering from the exported
//! snapshot; swapping in new weights is just building a fresh scorer.
//!
//! Scores are **bit-identical** to
//! [`ProbabilityModel::password_log_prob`](super::ProbabilityModel) on the
//! flow the snapshot was exported from: every fused kernel is row-
//! independent, so batching requests together never changes a result
//! (asserted by `tests/strength.rs` and the serving suite in
//! `tests/serve.rs`).

use std::sync::Arc;

use passflow_nn::{Tensor, ThreadPool};
use passflow_passwords::PasswordEncoder;

use crate::fastpath::{FlowSnapshot, FlowWorkspace, QuantizedFlowSnapshot};
use crate::flow::PassFlow;

/// Rows scored per fused call; bounds scratch memory without affecting
/// results (row-independent kernels).
const CHUNK_ROWS: usize = 1024;

/// The shared encode-chunk-score loop behind both scoring tiers.
///
/// `out` is cleared and refilled with one entry per input password, in
/// input order; unencodable passwords score `None`. `score` is called per
/// chunk with (encoded batch, workspace, log-prob output). If `pool` is
/// `Some`, it is installed into `ws` for the duration of the call (a
/// caller-installed pool is left alone when `pool` is `None`).
fn score_chunked(
    encoder: &PasswordEncoder,
    log_cell_volume: f64,
    pool: Option<&Arc<ThreadPool>>,
    passwords: &[String],
    ws: &mut FlowWorkspace,
    out: &mut Vec<Option<f64>>,
    mut score: impl FnMut(&Tensor, &mut FlowWorkspace, &mut Tensor),
) {
    if let Some(pool) = pool {
        ws.set_thread_pool(Some(Arc::clone(pool)));
    }
    out.clear();
    out.resize(passwords.len(), None);

    let mut lp = Tensor::default();
    let mut rows: Vec<Vec<f32>> = Vec::with_capacity(CHUNK_ROWS.min(passwords.len()));
    let mut row_indices: Vec<usize> = Vec::with_capacity(CHUNK_ROWS.min(passwords.len()));

    let mut flush =
        |rows: &mut Vec<Vec<f32>>, row_indices: &mut Vec<usize>, out: &mut Vec<Option<f64>>| {
            if rows.is_empty() {
                return;
            }
            let x = Tensor::from_rows(rows);
            score(&x, ws, &mut lp);
            for (slot, &idx) in lp.as_slice().iter().zip(row_indices.iter()) {
                out[idx] = Some(f64::from(*slot) + log_cell_volume);
            }
            rows.clear();
            row_indices.clear();
        };

    for (i, password) in passwords.iter().enumerate() {
        if let Some(features) = encoder.encode(password) {
            rows.push(features);
            row_indices.push(i);
            if rows.len() == CHUNK_ROWS {
                flush(&mut rows, &mut row_indices, out);
            }
        }
    }
    flush(&mut rows, &mut row_indices, out);
}

/// An owned, immutable scoring handle: snapshot + encoder + cell volume.
///
/// Cheap to clone (the snapshot is shared behind an [`Arc`]); `Send + Sync`,
/// so one scorer can be shared by any number of serving threads.
#[derive(Clone, Debug)]
pub struct FlowScorer {
    snapshot: Arc<FlowSnapshot>,
    encoder: PasswordEncoder,
    log_cell_volume: f64,
    pool: Option<Arc<ThreadPool>>,
}

impl FlowScorer {
    /// Exports a scorer from the flow's current weights (reusing the flow's
    /// cached snapshot when it is current).
    ///
    /// The scorer is detached: later weight mutations on `flow` do not
    /// affect it.
    pub fn new(flow: &PassFlow) -> FlowScorer {
        FlowScorer {
            snapshot: flow.snapshot(),
            encoder: flow.encoder().clone(),
            log_cell_volume: flow.log_cell_volume(),
            pool: None,
        }
    }

    /// Runs this scorer's GEMMs on a pool of `threads` threads (resolved
    /// through [`passflow_nn::clamp_threads`] by callers; `threads <= 1`
    /// keeps the serial path). Scores are bit-identical at any thread count
    /// — this is purely a throughput knob.
    pub fn with_threads(mut self, threads: usize) -> FlowScorer {
        self.pool = if threads > 1 {
            Some(Arc::new(ThreadPool::new(threads)))
        } else {
            None
        };
        self
    }

    /// The flow snapshot this scorer reads.
    pub fn snapshot(&self) -> &Arc<FlowSnapshot> {
        &self.snapshot
    }

    /// The log-volume of one quantization cell (added to every score).
    pub fn log_cell_volume(&self) -> f64 {
        self.log_cell_volume
    }

    /// Dimensionality of the underlying flow.
    pub fn dim(&self) -> usize {
        self.snapshot.dim()
    }

    /// The encoder the scorer canonicalizes passwords with.
    pub fn encoder(&self) -> &PasswordEncoder {
        &self.encoder
    }

    /// Scores one password; `None` if it cannot be encoded. Bit-identical
    /// to scoring it inside any batch.
    pub fn log_prob(&self, password: &str) -> Option<f64> {
        let mut ws = FlowWorkspace::new();
        let mut out = vec![None];
        self.log_probs_with(
            std::slice::from_ref(&password.to_string()),
            &mut ws,
            &mut out,
        );
        out[0]
    }

    /// Scores a batch of passwords, allocating a fresh workspace.
    ///
    /// Returns exactly one entry per input password, in input order;
    /// unencodable passwords score `None`.
    pub fn log_probs(&self, passwords: &[String]) -> Vec<Option<f64>> {
        let mut ws = FlowWorkspace::new();
        let mut out = Vec::new();
        self.log_probs_with(passwords, &mut ws, &mut out);
        out
    }

    /// Scores a batch of passwords into `out` through a caller-managed
    /// workspace — the allocation-free steady-state form used by the
    /// serving batcher, which keeps one workspace alive across ticks.
    ///
    /// `out` is cleared and refilled with one entry per input password, in
    /// input order. Results are bit-identical for any chunking of the same
    /// passwords (each output row depends only on its own input row) and at
    /// any thread count.
    pub fn log_probs_with(
        &self,
        passwords: &[String],
        ws: &mut FlowWorkspace,
        out: &mut Vec<Option<f64>>,
    ) {
        score_chunked(
            &self.encoder,
            self.log_cell_volume,
            self.pool.as_ref(),
            passwords,
            ws,
            out,
            |x, ws, lp| self.snapshot.log_prob_into(x, ws, lp),
        );
    }
}

// ---------------------------------------------------------------------------
// Quantized tier
// ---------------------------------------------------------------------------

/// The opt-in int8 scoring handle: same contract as [`FlowScorer`], ~4×
/// smaller weights, **approximate** scores.
///
/// Build one with [`QuantizedScorer::new`] and measure its error with
/// [`probe_quantization`] before serving from it — the bound is a property
/// of the weights, not a universal constant. Scores remain deterministic,
/// batching-invariant and thread-count invariant.
#[derive(Clone, Debug)]
pub struct QuantizedScorer {
    snapshot: Arc<QuantizedFlowSnapshot>,
    encoder: PasswordEncoder,
    log_cell_volume: f64,
    pool: Option<Arc<ThreadPool>>,
}

impl QuantizedScorer {
    /// Quantizes the flow's current weights into a detached scoring handle.
    pub fn new(flow: &PassFlow) -> QuantizedScorer {
        QuantizedScorer::from_scorer(&FlowScorer::new(flow))
    }

    /// Quantizes the snapshot behind an existing exact scorer (inheriting
    /// its encoder, cell volume and thread pool).
    pub fn from_scorer(scorer: &FlowScorer) -> QuantizedScorer {
        QuantizedScorer {
            snapshot: Arc::new(scorer.snapshot.quantize()),
            encoder: scorer.encoder.clone(),
            log_cell_volume: scorer.log_cell_volume,
            pool: scorer.pool.clone(),
        }
    }

    /// See [`FlowScorer::with_threads`].
    pub fn with_threads(mut self, threads: usize) -> QuantizedScorer {
        self.pool = if threads > 1 {
            Some(Arc::new(ThreadPool::new(threads)))
        } else {
            None
        };
        self
    }

    /// Dimensionality of the underlying flow.
    pub fn dim(&self) -> usize {
        self.snapshot.dim()
    }

    /// The encoder the scorer canonicalizes passwords with.
    pub fn encoder(&self) -> &PasswordEncoder {
        &self.encoder
    }

    /// Bytes held by the quantized coupling networks.
    pub fn memory_bytes(&self) -> usize {
        self.snapshot.memory_bytes()
    }

    /// Scores one password (approximate); `None` if it cannot be encoded.
    pub fn log_prob(&self, password: &str) -> Option<f64> {
        let mut ws = FlowWorkspace::new();
        let mut out = vec![None];
        self.log_probs_with(
            std::slice::from_ref(&password.to_string()),
            &mut ws,
            &mut out,
        );
        out[0]
    }

    /// Scores a batch of passwords (approximate), allocating a fresh
    /// workspace.
    pub fn log_probs(&self, passwords: &[String]) -> Vec<Option<f64>> {
        let mut ws = FlowWorkspace::new();
        let mut out = Vec::new();
        self.log_probs_with(passwords, &mut ws, &mut out);
        out
    }

    /// Scores a batch of passwords into `out` through a caller-managed
    /// workspace; same contract as [`FlowScorer::log_probs_with`], with
    /// quantized (approximate) values.
    pub fn log_probs_with(
        &self,
        passwords: &[String],
        ws: &mut FlowWorkspace,
        out: &mut Vec<Option<f64>>,
    ) {
        score_chunked(
            &self.encoder,
            self.log_cell_volume,
            self.pool.as_ref(),
            passwords,
            ws,
            out,
            |x, ws, lp| self.snapshot.log_prob_into(x, ws, lp),
        );
    }
}

/// The measured quantization error of a model over a probe wordlist —
/// the per-model report the issue requires before anyone serves from the
/// int8 tier.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizationReport {
    /// Passwords that encoded and were scored by both tiers.
    pub samples: usize,
    /// Passwords the encoder rejected (scored by neither tier).
    pub skipped: usize,
    /// max |log p_exact − log p_quantized| over the probe set.
    pub max_abs_delta: f64,
    /// mean |log p_exact − log p_quantized| over the probe set.
    pub mean_abs_delta: f64,
    /// Bytes of f32 coupling-network weights in the exact snapshot.
    pub exact_bytes: usize,
    /// Bytes of int8 weights + scales in the quantized snapshot.
    pub quantized_bytes: usize,
}

impl QuantizationReport {
    /// Weight-memory compression ratio (exact ÷ quantized).
    pub fn compression(&self) -> f64 {
        if self.quantized_bytes == 0 {
            return 0.0;
        }
        self.exact_bytes as f64 / self.quantized_bytes as f64
    }
}

/// Measures the quantized tier's scoring error against the exact tier over
/// a probe wordlist.
///
/// The exact tier is bit-identical to `PassFlow::log_prob_reference` (the
/// conformance suite's oracle), so the deltas here are exactly the deltas
/// against the reference implementation. Callers assert
/// `report.max_abs_delta` against their documented bound before opting in.
pub fn probe_quantization(
    exact: &FlowScorer,
    quantized: &QuantizedScorer,
    passwords: &[String],
) -> QuantizationReport {
    let exact_scores = exact.log_probs(passwords);
    let quant_scores = quantized.log_probs(passwords);
    let mut samples = 0usize;
    let mut skipped = 0usize;
    let mut max_abs_delta = 0.0f64;
    let mut sum_abs_delta = 0.0f64;
    for (e, q) in exact_scores.iter().zip(quant_scores.iter()) {
        match (e, q) {
            (Some(e), Some(q)) => {
                let delta = (e - q).abs();
                max_abs_delta = max_abs_delta.max(delta);
                sum_abs_delta += delta;
                samples += 1;
            }
            (None, None) => skipped += 1,
            _ => unreachable!("both tiers share one encoder"),
        }
    }
    QuantizationReport {
        samples,
        skipped,
        max_abs_delta,
        mean_abs_delta: if samples > 0 {
            sum_abs_delta / samples as f64
        } else {
            0.0
        },
        exact_bytes: exact.snapshot.memory_bytes(),
        quantized_bytes: quantized.snapshot.memory_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use crate::strength::ProbabilityModel;
    use passflow_nn::rng as nnrng;

    fn tiny_flow(seed: u64) -> PassFlow {
        let mut rng = nnrng::seeded(seed);
        PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn scorer_matches_the_flow_bit_for_bit() {
        let flow = tiny_flow(71);
        let scorer = FlowScorer::new(&flow);
        for pw in ["jimmy91", "123456", "", "dragon"] {
            match (flow.password_log_prob(pw), scorer.log_prob(pw)) {
                (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits(), "{pw:?}"),
                (None, None) => {}
                other => panic!("flow/scorer disagree for {pw:?}: {other:?}"),
            }
        }
        assert!(scorer.log_prob("waytoolongtoencode").is_none());
    }

    #[test]
    fn scorer_is_detached_from_later_weight_mutations() {
        let flow = tiny_flow(72);
        let scorer = FlowScorer::new(&flow);
        let before = scorer.log_prob("monkey12").unwrap();
        for p in flow.parameters() {
            p.set_value(p.value().add_scalar(0.125));
        }
        // The live flow moved; the detached scorer did not.
        let after_live = flow.password_log_prob("monkey12").unwrap();
        let after_scorer = scorer.log_prob("monkey12").unwrap();
        assert_ne!(before.to_bits(), after_live.to_bits());
        assert_eq!(before.to_bits(), after_scorer.to_bits());
    }

    #[test]
    fn workspace_reuse_and_chunking_do_not_change_scores() {
        let flow = tiny_flow(73);
        let scorer = FlowScorer::new(&flow);
        let passwords: Vec<String> = (0..50).map(|i| format!("pw{i}")).collect();
        let whole = scorer.log_probs(&passwords);
        let mut ws = FlowWorkspace::new();
        let mut out = Vec::new();
        let mut pieced = Vec::new();
        for chunk in passwords.chunks(7) {
            scorer.log_probs_with(chunk, &mut ws, &mut out);
            pieced.extend(out.iter().copied());
        }
        assert_eq!(whole.len(), pieced.len());
        for (a, b) in whole.iter().zip(pieced.iter()) {
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        }
    }

    #[test]
    fn scorer_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowScorer>();
        assert_send_sync::<QuantizedScorer>();
    }

    #[test]
    fn threaded_scorer_is_bit_identical_to_serial() {
        let flow = tiny_flow(74);
        let serial = FlowScorer::new(&flow);
        let threaded = FlowScorer::new(&flow).with_threads(3);
        let passwords: Vec<String> = (0..40).map(|i| format!("secret{i}")).collect();
        let a = serial.log_probs(&passwords);
        let b = threaded.log_probs(&passwords);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.map(f64::to_bits), y.map(f64::to_bits));
        }
    }

    #[test]
    fn quantized_scorer_tracks_exact_and_reports_error() {
        let flow = tiny_flow(75);
        let exact = FlowScorer::new(&flow);
        let quantized = QuantizedScorer::from_scorer(&exact);
        let passwords: Vec<String> = (0..60)
            .map(|i| format!("pw{i}"))
            .chain(["waytoolongtoencode".to_string()])
            .collect();
        let report = probe_quantization(&exact, &quantized, &passwords);
        assert_eq!(report.samples, 60);
        assert_eq!(report.skipped, 1);
        assert!(report.max_abs_delta.is_finite());
        assert!(report.mean_abs_delta <= report.max_abs_delta);
        // The tiny test flow's layers are narrow, so per-row scales and the
        // f32 bias eat into the 4× weight compression; production-width
        // layers approach 4×.
        assert!(
            report.compression() > 2.0,
            "int8 weights must be markedly smaller, got {:.2}×",
            report.compression()
        );
        // Unencodable passwords score None on both tiers.
        assert!(quantized.log_prob("waytoolongtoencode").is_none());
    }

    #[test]
    fn quantized_scores_are_deterministic_and_thread_invariant() {
        let flow = tiny_flow(76);
        let quantized = QuantizedScorer::new(&flow);
        let passwords: Vec<String> = (0..30).map(|i| format!("hunter{i}")).collect();
        let once = quantized.log_probs(&passwords);
        let twice = quantized.log_probs(&passwords);
        let threaded = QuantizedScorer::new(&flow)
            .with_threads(4)
            .log_probs(&passwords);
        for ((a, b), c) in once.iter().zip(twice.iter()).zip(threaded.iter()) {
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
            assert_eq!(a.map(f64::to_bits), c.map(f64::to_bits));
        }
    }
}
