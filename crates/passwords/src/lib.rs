//! # passflow-passwords
//!
//! Password-data substrate for the PassFlow reproduction:
//!
//! * [`Alphabet`] — the character set passwords are drawn from, with
//!   char ↔ index mapping,
//! * [`PasswordEncoder`] — the paper's encoding of a password into a
//!   fixed-length numeric feature vector normalized by the alphabet size
//!   (Section IV-D), and the inverse decoding,
//! * [`SyntheticCorpusGenerator`] — a synthetic "RockYou-like" corpus
//!   generator standing in for the RockYou leak, which cannot be
//!   redistributed (see DESIGN.md §2),
//! * [`PasswordCorpus`] — corpus container with the paper's cleaning and
//!   splitting pipeline (length filter, 80/20 split, dedup, train/test
//!   intersection removal, training subsampling),
//! * [`stats`] — structural statistics used to analyze generated guesses.
//!
//! ## Example
//!
//! ```rust
//! use passflow_passwords::{CorpusConfig, PasswordCorpus, PasswordEncoder, SyntheticCorpusGenerator};
//!
//! let generator = SyntheticCorpusGenerator::new(CorpusConfig::small());
//! let corpus = generator.generate(7);
//! let split = corpus.paper_split(0.8, 1_000, 7);
//! assert!(!split.train.is_empty());
//! assert!(!split.test_unique.is_empty());
//!
//! let encoder = PasswordEncoder::default();
//! let features = encoder.encode("jimmy91").unwrap();
//! assert_eq!(features.len(), encoder.max_len());
//! assert_eq!(encoder.decode(&features), "jimmy91");
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod alphabet;
mod dataset;
mod encoding;
mod generator;
pub mod stats;
mod wordlists;

pub use alphabet::Alphabet;
pub use dataset::{CorpusSplit, PasswordCorpus};
pub use encoding::PasswordEncoder;
pub use generator::{CorpusConfig, SyntheticCorpusGenerator};
