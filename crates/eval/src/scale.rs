//! Experiment scale presets and the shared evaluation workbench.
//!
//! The paper's evaluation trains on up to 23.5M passwords and generates up
//! to 10⁸ guesses on GPU hardware; this reproduction runs on CPU, so every
//! experiment driver is parameterized by an [`EvalScale`]. The default scale
//! preserves the *relative* comparisons (which method wins, how the curves
//! bend) at a fraction of the cost; [`EvalScale::paper`] carries the paper's
//! original numbers for offline runs.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use passflow_baselines::{CwaeConfig, PassGanConfig};
use passflow_core::{FlowConfig, PassFlow, Result, TrainConfig, TrainingReport};
use passflow_nn::rng as nnrng;
use passflow_passwords::{CorpusConfig, CorpusSplit, SyntheticCorpusGenerator};

/// Scale parameters shared by all experiment drivers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvalScale {
    /// Size of the synthetic corpus (instances, with duplicates).
    pub corpus_size: usize,
    /// Training subsample size (the paper's 300K).
    pub train_subsample: usize,
    /// Guess budgets evaluated in the tables (the paper's 10⁴…10⁸).
    pub budgets: Vec<u64>,
    /// Flow architecture.
    pub flow_config: FlowConfig,
    /// Flow training setup.
    pub train_config: TrainConfig,
    /// WGAN baseline setup.
    pub gan_config: PassGanConfig,
    /// CWAE baseline setup.
    pub cwae_config: CwaeConfig,
    /// Latent batch size used by the guessing attack.
    pub attack_batch: usize,
    /// Worker shards the attack engine generates guesses on. Results are
    /// shard-count-invariant; this only sets the parallelism.
    pub attack_shards: usize,
    /// Master seed; derived seeds are used for corpus generation, training
    /// and attacks.
    pub seed: u64,
}

impl EvalScale {
    /// A smoke-test scale that runs in seconds (used by unit and integration
    /// tests).
    pub fn smoke() -> Self {
        EvalScale {
            corpus_size: 5_000,
            train_subsample: 1_500,
            budgets: vec![1_000, 3_000],
            flow_config: FlowConfig::tiny(),
            train_config: TrainConfig::tiny().with_epochs(4),
            gan_config: PassGanConfig::tiny().with_iterations(40),
            cwae_config: CwaeConfig::tiny().with_epochs(3),
            attack_batch: 512,
            attack_shards: 2,
            seed: 7,
        }
    }

    /// The default CPU-scale evaluation: small enough to run all tables on a
    /// laptop in under an hour, large enough that the relative ordering of
    /// the methods (the shape of Tables II/III and Figure 5) is stable.
    ///
    /// The corpus size matches the paper's 300K-sample training-set setting;
    /// the test set is ~14K unique passwords and guess budgets reach
    /// 3 × 10⁵.
    pub fn default_scale() -> Self {
        EvalScale {
            corpus_size: 300_000,
            train_subsample: 20_000,
            budgets: vec![10_000, 100_000, 300_000],
            flow_config: FlowConfig::evaluation()
                .with_coupling_layers(8)
                .with_hidden_size(64),
            train_config: TrainConfig::evaluation().with_epochs(40),
            gan_config: PassGanConfig::evaluation(),
            cwae_config: CwaeConfig::evaluation(),
            attack_batch: 4_096,
            attack_shards: 8,
            seed: 7,
        }
    }

    /// The paper's original scale (RockYou-sized corpus, 300K training
    /// samples, budgets up to 10⁸, the 18-layer architecture). Only suitable
    /// for long offline runs.
    pub fn paper() -> Self {
        EvalScale {
            corpus_size: CorpusConfig::paper_scale().size,
            train_subsample: 300_000,
            budgets: vec![10_000, 100_000, 1_000_000, 10_000_000, 100_000_000],
            flow_config: FlowConfig::paper(),
            train_config: TrainConfig::paper(),
            gan_config: PassGanConfig {
                iterations: 20_000,
                ..PassGanConfig::evaluation()
            },
            cwae_config: CwaeConfig {
                epochs: 200,
                latent_dim: 128,
                ..CwaeConfig::evaluation()
            },
            attack_batch: 8_192,
            attack_shards: 8,
            seed: 7,
        }
    }

    /// Sets the master seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the guess budgets (builder style).
    #[must_use]
    pub fn with_budgets(mut self, budgets: Vec<u64>) -> Self {
        self.budgets = budgets;
        self
    }

    /// Largest configured guess budget.
    pub fn max_budget(&self) -> u64 {
        self.budgets.iter().copied().max().unwrap_or(0)
    }

    /// The corpus configuration implied by this scale.
    pub fn corpus_config(&self) -> CorpusConfig {
        CorpusConfig::evaluation().with_size(self.corpus_size)
    }
}

impl Default for EvalScale {
    fn default() -> Self {
        Self::default_scale()
    }
}

/// Shared prepared state: the corpus split and a trained PassFlow model.
///
/// Most tables and figures reuse the same trained flow; preparing the
/// workbench once and passing it to each driver avoids retraining.
pub struct Workbench {
    /// The scale the workbench was prepared at.
    pub scale: EvalScale,
    /// Train/test split of the synthetic corpus.
    pub split: CorpusSplit,
    /// The trained flow.
    pub flow: PassFlow,
    /// Training report of the flow.
    pub training: TrainingReport,
}

impl Workbench {
    /// Generates the corpus, prepares the split, and trains the flow.
    ///
    /// # Errors
    ///
    /// Propagates any configuration or training error from the core crate.
    pub fn prepare(scale: EvalScale) -> Result<Workbench> {
        let corpus = SyntheticCorpusGenerator::new(scale.corpus_config()).generate(scale.seed);
        let split = corpus.paper_split(0.8, scale.train_subsample, scale.seed);
        let mut rng = nnrng::derived(scale.seed, 1);
        let flow = PassFlow::new(scale.flow_config.clone(), &mut rng)?;
        let training = passflow_core::train(&flow, &split.train, &scale.train_config)?;
        Ok(Workbench {
            scale,
            split,
            flow,
            training,
        })
    }

    /// The cleaned, unique test set as a hash set (the attack target Ω).
    pub fn test_set(&self) -> HashSet<String> {
        self.split.test_set()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_cost() {
        let smoke = EvalScale::smoke();
        let default = EvalScale::default_scale();
        let paper = EvalScale::paper();
        assert!(smoke.corpus_size < default.corpus_size);
        assert!(default.corpus_size < paper.corpus_size);
        assert!(smoke.max_budget() < default.max_budget());
        assert!(default.max_budget() < paper.max_budget());
        assert_eq!(paper.train_subsample, 300_000);
        assert_eq!(paper.flow_config, FlowConfig::paper());
        assert_eq!(EvalScale::default(), EvalScale::default_scale());
    }

    #[test]
    fn builders_adjust_scale() {
        let scale = EvalScale::smoke().with_seed(11).with_budgets(vec![500]);
        assert_eq!(scale.seed, 11);
        assert_eq!(scale.max_budget(), 500);
        assert_eq!(scale.corpus_config().size, scale.corpus_size);
    }

    #[test]
    fn workbench_prepares_a_usable_flow() {
        let workbench = Workbench::prepare(EvalScale::smoke()).unwrap();
        assert!(!workbench.split.train.is_empty());
        assert!(!workbench.test_set().is_empty());
        assert!(workbench.training.final_nll().unwrap().is_finite());
        // The trained flow can generate guesses.
        let mut rng = nnrng::seeded(1);
        let guesses = workbench.flow.sample_passwords(10, &mut rng);
        assert_eq!(guesses.len(), 10);
    }
}
