//! The TCP accept loop, router and request handlers.
//!
//! Connections are *multiplexed* (see `crate::conn`): the accept loop
//! registers each socket with the connection multiplexer, a poller thread
//! watches parked keep-alive sockets for readiness, and a bounded pool of
//! [`ServerConfig::handler_threads`] workers serves one request at a time
//! per checkout. Idle connections therefore cost no threads — only an
//! in-flight request does. Each request parses through the
//! [`crate::http`] layer (per-read timeouts, slow-loris read budget,
//! write timeouts) and dispatches:
//!
//! * `POST /v1/score` — single or multi-password strength scoring through
//!   the sharded adaptive micro-batcher,
//! * `POST /v1/logprob` — batch log-probabilities (the request body *is*
//!   the batch, so it goes straight to the model),
//! * `GET /healthz` — liveness plus registered model names and per-lane
//!   batcher health,
//! * `GET /metrics` — text exposition of the serving metrics,
//! * `POST /admin/shutdown` — graceful stop, when enabled in the config.
//!
//! Shutdown (via [`ServerHandle::shutdown`] or the admin endpoint) stops
//! the accept loop, closes sockets parked idle or mid-request-read
//! (nothing fully received is dropped), lets workers flush in-flight
//! responses, drains the batcher lanes, and joins every thread before
//! [`ServerHandle::join`] returns — "clean shutdown" is an assertable
//! property, and CI asserts it.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::batcher::{Batcher, BatcherConfig, BatcherHandle, EnqueueError, ScoreJob, ScoreOutcome};
use crate::breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
use crate::conn::{Conn, Mux};
use crate::http::{self, HttpError, ReadOutcome, Request};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::registry::{ModelRegistry, ServedModel};
use passflow_store::DigestStore;

/// Maximum passwords in one request body (`/v1/score` and `/v1/logprob`).
/// Larger batches get a clean 413 — client-side batching beyond the
/// server's own micro-batch size buys nothing.
pub const MAX_REQUEST_PASSWORDS: usize = 256;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: SocketAddr,
    /// Batcher tuning (lanes, micro-batch size, straggler wait, per-lane
    /// queue bound).
    pub batcher: BatcherConfig,
    /// Maximum concurrently *registered* connections; excess connections
    /// are answered with 503 and closed instead of piling up sockets.
    /// Unlike the old thread-per-connection bound this does not cap
    /// threads (the handler pool does) — it caps file descriptors.
    pub max_connections: usize,
    /// Request handler pool size: the maximum number of requests being
    /// read/routed/written at once. Idle connections beyond this count
    /// cost no threads — they park in the multiplexer.
    pub handler_threads: usize,
    /// Parked keep-alive sockets idle longer than this are closed; a
    /// well-behaved client simply reconnects.
    pub idle_timeout: Duration,
    /// Per-connection read timeout (a stalled peer cannot pin a handler).
    pub read_timeout: Duration,
    /// Per-connection write timeout (a peer that stops *reading* cannot
    /// pin a handler flushing a large response either).
    pub write_timeout: Duration,
    /// Wall-clock budget for reading one complete request — the slow-loris
    /// bound. Per-read timeouts only limit the gap between bytes; this
    /// limits the total, so a peer dribbling a byte at a time is cut off
    /// with a 408. Idle keep-alive time between requests is not counted.
    pub request_read_budget: Duration,
    /// Default per-request deadline. Clients may *shorten* it per request
    /// with an `X-Passflow-Deadline-Ms` header (never extend); jobs whose
    /// deadline expires before the batcher picks them up answer 504.
    pub default_deadline: Duration,
    /// Circuit-breaker tuning for the digest store (failure threshold and
    /// cooldown before half-open probes).
    pub breaker: BreakerConfig,
    /// Whether `POST /admin/shutdown` is honored (off by default; the
    /// serve binary enables it so CI can assert a clean shutdown remotely).
    pub allow_shutdown: bool,
    /// Breach digest store backing `GET /v1/range/{prefix}` and
    /// `POST /v1/screen`; when `None` those endpoints answer 503 so a
    /// misconfigured deployment fails loudly instead of calling every
    /// password clean.
    pub digest: Option<Arc<DigestStore>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".parse().expect("valid literal address"),
            batcher: BatcherConfig::default(),
            max_connections: 2048,
            handler_threads: 64,
            idle_timeout: Duration::from_secs(60),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            request_read_budget: Duration::from_secs(10),
            default_deadline: Duration::from_secs(10),
            breaker: BreakerConfig::default(),
            allow_shutdown: false,
            digest: None,
        }
    }
}

/// Shared server state handed to every handler worker.
struct Shared {
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    batcher: BatcherHandle,
    mux: Arc<Mux>,
    addr: SocketAddr,
    stop: AtomicBool,
    allow_shutdown: bool,
    digest: Option<Arc<DigestStore>>,
    /// Circuit breaker in front of every digest-store read.
    breaker: CircuitBreaker,
    /// Server default for per-request deadlines.
    default_deadline: Duration,
}

impl Shared {
    /// Sets the stop flag and nudges every blocked thread: the multiplexer
    /// closes sockets parked idle or blocked in a request *read* (their
    /// next request has not fully arrived, so nothing is dropped), wakes
    /// the poller and workers, and a dummy connect pokes the accept loop
    /// awake. A worker that has fully read a request keeps its socket and
    /// flushes the response first — including the `/admin/shutdown`
    /// response itself.
    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.mux.begin_stop();
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    /// Mirrors the breaker's state into the metrics gauge (0 closed,
    /// 1 open, 2 half-open) after every breaker interaction.
    fn publish_breaker(&self) {
        let state = match self.breaker.state() {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        };
        self.metrics.set_breaker(state, self.breaker.transitions());
    }

    /// One breach lookup through the circuit breaker. `Some(hit)` is a
    /// healthy verdict; `None` means *degraded* — breaker open, or the
    /// read failed (which also feeds the breaker). Never errors: the
    /// caller's promise is "scores always, verdicts when the store is
    /// healthy".
    fn screen_lookup(&self, password: &str) -> Option<Option<u64>> {
        let digest = self.digest.as_ref()?;
        let verdict = match self.breaker.admit() {
            Admission::Reject => None,
            Admission::Allow | Admission::Probe => match digest.contains_password(password) {
                Ok(hit) => {
                    self.breaker.record_success();
                    Some(hit)
                }
                Err(_) => {
                    self.metrics.record_store_fault();
                    self.breaker.record_failure();
                    None
                }
            },
        };
        self.publish_breaker();
        verdict
    }
}

/// A running server: bound address plus shutdown/join controls.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    poll_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    batcher: Option<Batcher>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics sink (shared with `GET /metrics`).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// A handle to the sharded batcher — lane counts, steal counters and
    /// the [`BatcherHandle::kill_lane`] chaos hook for fault-injection
    /// tests.
    pub fn batcher(&self) -> BatcherHandle {
        self.shared.batcher.clone()
    }

    /// Signals the accept loop, poller and workers to stop. Idempotent;
    /// does not wait.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for the accept loop, poller, every handler worker and the
    /// batcher to finish. Call [`shutdown`](Self::shutdown) first (or rely
    /// on the admin endpoint); `join` on a live server blocks until
    /// someone does.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.poll_thread.take() {
            let _ = t.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers flushed their in-flight responses before exiting; any
        // connection still registered is parked or queued and gets
        // dropped here. Dropping the batcher drains its lane queues.
        self.shared.mux.drain();
        drop(self.batcher.take());
    }
}

/// Starts the server: binds, spawns the batcher lanes, the connection
/// poller, the handler pool and the accept loop.
///
/// # Errors
///
/// Returns the bind error if the address cannot be bound.
pub fn serve(config: ServerConfig, registry: Arc<ModelRegistry>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr)?;
    let addr = listener.local_addr()?;
    let metrics = Arc::new(Metrics::with_lanes(config.batcher.lanes));
    let batcher = Batcher::spawn(config.batcher, Arc::clone(&metrics));
    let mux = Arc::new(Mux::new(config.idle_timeout));
    let shared = Arc::new(Shared {
        registry,
        metrics,
        batcher: batcher.handle(),
        mux: Arc::clone(&mux),
        addr,
        stop: AtomicBool::new(false),
        allow_shutdown: config.allow_shutdown,
        digest: config.digest.clone(),
        breaker: CircuitBreaker::new(config.breaker),
        default_deadline: config.default_deadline,
    });

    let accept_shared = Arc::clone(&shared);
    let accept_config = config.clone();
    let accept_thread = std::thread::Builder::new()
        .name("passflow-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_shared, &accept_config))
        .expect("spawning the accept thread");

    let poll_mux = Arc::clone(&mux);
    let poll_thread = std::thread::Builder::new()
        .name("passflow-poll".to_string())
        .spawn(move || poll_mux.poll_loop())
        .expect("spawning the connection poller");

    let workers = (0..config.handler_threads.max(1))
        .map(|i| {
            let worker_shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("passflow-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared))
                .expect("spawning a handler worker")
        })
        .collect();

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        poll_thread: Some(poll_thread),
        workers,
        batcher: Some(batcher),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, config: &ServerConfig) {
    while !shared.stop.load(Ordering::SeqCst) {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                // Persistent accept errors (fd exhaustion, say) must not
                // busy-spin the core the scoring thread needs.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break; // the wake-up connection itself
        }
        if shared.mux.active_connections() >= config.max_connections {
            let mut writer = BufWriter::new(&stream);
            let _ = respond_error(
                &mut writer,
                &HttpError {
                    status: 503,
                    message: "connection limit reached".to_string(),
                },
            );
            continue;
        }
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let _ = stream.set_write_timeout(Some(config.write_timeout));
        let _ = stream.set_nodelay(true);
        // Registration parks the socket; the poller dispatches it to a
        // worker on the request's first byte.
        let _ = shared.mux.register(stream, config.request_read_budget);
    }
}

/// One handler worker: check out ready connections until shutdown.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(conn) = shared.mux.next_ready() {
        handle_one(conn, shared);
    }
}

/// Serves exactly one request on a checked-out connection, then returns
/// it to the multiplexer: parked if keep-alive and quiescent, requeued if
/// pipelined bytes are already buffered, dropped otherwise.
fn handle_one(mut conn: Conn, shared: &Arc<Shared>) {
    // Each request gets a fresh read budget; the time a connection spent
    // parked between requests cost nothing.
    conn.reader.rearm();
    let started = Instant::now();
    // While blocked reading, the socket is registered so shutdown can cut
    // the read short instead of waiting out its timeout.
    shared.mux.note_reading(&conn);
    let outcome = http::read_request(&mut conn.reader);
    shared.mux.done_reading(conn.id);
    match outcome {
        ReadOutcome::Closed => shared.mux.discard(conn),
        ReadOutcome::Error(err) => {
            // Protocol errors poison the byte stream: respond, close.
            shared.metrics.record_request("other", err.status);
            let _ = respond_error(&mut conn.writer, &err);
            shared.mux.discard(conn);
        }
        ReadOutcome::Request(request) => {
            if shared.stop.load(Ordering::SeqCst) {
                // Shutdown raced the read; the socket may already be cut.
                shared.mux.discard(conn);
                return;
            }
            let (endpoint, response) = route(&request, shared);
            let keep_alive = request.keep_alive && !shared.stop.load(Ordering::SeqCst);
            shared.metrics.record_request(endpoint, response.status);
            shared.metrics.record_latency(started.elapsed());
            let written = http::write_response(
                &mut conn.writer,
                response.status,
                response.content_type,
                response.body.as_bytes(),
                keep_alive,
            );
            if written.is_err() || !keep_alive {
                shared.mux.discard(conn);
            } else if conn.has_buffered_input() {
                // A pipelined request is already in the userspace buffer
                // where the poller's socket peek could never see it.
                shared.mux.enqueue_ready(conn);
            } else {
                shared.mux.park(conn);
            }
        }
    }
}

/// An application-level response (always a complete body; framing is the
/// connection handler's job).
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: value.to_string(),
        }
    }

    fn error(status: u16, message: &str) -> Response {
        Self::json(
            status,
            &Json::obj([("error", Json::Str(message.to_string()))]),
        )
    }
}

fn respond_error<W: std::io::Write>(writer: &mut W, err: &HttpError) -> std::io::Result<()> {
    let body = Json::obj([("error", Json::Str(err.message.clone()))]).to_string();
    http::write_response(
        writer,
        err.status,
        "application/json",
        body.as_bytes(),
        false,
    )
}

/// Dispatches one request; returns the metrics endpoint label and response.
fn route(request: &Request, shared: &Arc<Shared>) -> (&'static str, Response) {
    if let Some(prefix) = request.path.strip_prefix("/v1/range/") {
        return if request.method == "GET" {
            ("range", range(prefix, shared))
        } else {
            ("other", Response::error(405, "method not allowed"))
        };
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => ("healthz", healthz(shared)),
        ("GET", "/metrics") => (
            "metrics",
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: shared.metrics.render(),
            },
        ),
        ("GET", "/v1/models") => ("models", models(shared)),
        ("POST", "/v1/score") => ("score", score(request, shared, ScoreMode::Strength)),
        ("POST", "/v1/logprob") => ("logprob", score(request, shared, ScoreMode::LogProb)),
        ("POST", "/v1/screen") => ("screen", screen(request, shared)),
        ("POST", "/admin/shutdown") => ("other", admin_shutdown(shared)),
        (
            _,
            "/healthz" | "/metrics" | "/v1/models" | "/v1/score" | "/v1/logprob" | "/v1/screen"
            | "/admin/shutdown",
        ) => ("other", Response::error(405, "method not allowed")),
        _ => ("other", Response::error(404, "no such endpoint")),
    }
}

/// `GET /healthz` — structured per-component health. Always HTTP 200 (the
/// process is alive and answering; *content* says how well): orchestrators
/// and the CI smoke test key off the JSON, and a degraded-but-serving
/// process must not be restart-looped by a naive probe. Top-level `status`
/// is `"ok"` only when every component is healthy — including every
/// batcher lane.
fn healthz(shared: &Arc<Shared>) -> Response {
    let names = shared.registry.names();
    let registry_ok = !names.is_empty();
    let models = names.into_iter().map(Json::Str).collect();
    let ok_or = |ok: bool, degraded: &str| Json::Str(if ok { "ok" } else { degraded }.to_string());

    // The batcher component is per-lane: a dead lane degrades the server
    // (capacity is reduced) but only losing *every* lane makes it dead.
    let total_lanes = shared.batcher.lanes();
    let alive_lanes = shared.batcher.alive_lanes();
    let lanes: Vec<Json> = (0..total_lanes)
        .map(|lane| {
            Json::obj([
                ("lane", Json::Num(lane as f64)),
                ("status", ok_or(shared.batcher.lane_alive(lane), "dead")),
            ])
        })
        .collect();
    let batcher_ok = alive_lanes == total_lanes;
    let batcher_status = if batcher_ok {
        "ok"
    } else if alive_lanes > 0 {
        "degraded"
    } else {
        "dead"
    };

    let digest_component = match shared.digest.as_ref() {
        None => Json::obj([("status", Json::Str("absent".to_string()))]),
        Some(_) => {
            let state = shared.breaker.state();
            Json::obj([
                ("status", ok_or(state == BreakerState::Closed, "degraded")),
                ("breaker", Json::Str(state.label().to_string())),
            ])
        }
    };
    let digest_ok = shared.digest.is_none() || shared.breaker.state() == BreakerState::Closed;

    let all_ok = registry_ok && batcher_ok && digest_ok;
    Response::json(
        200,
        &Json::obj([
            ("status", ok_or(all_ok, "degraded")),
            ("models", Json::Arr(models)),
            (
                "components",
                Json::obj([
                    (
                        "registry",
                        Json::obj([
                            ("status", ok_or(registry_ok, "empty")),
                            ("models", Json::Num(shared.registry.len() as f64)),
                        ]),
                    ),
                    (
                        "batcher",
                        Json::obj([
                            ("lanes", Json::Arr(lanes)),
                            ("status", Json::Str(batcher_status.to_string())),
                        ]),
                    ),
                    (
                        "connections",
                        Json::obj([
                            ("active", Json::Num(shared.mux.active_connections() as f64)),
                            ("idle", Json::Num(shared.mux.idle_connections() as f64)),
                            ("status", Json::Str("ok".to_string())),
                        ]),
                    ),
                    ("digest_store", digest_component),
                ]),
            ),
        ]),
    )
}

fn admin_shutdown(shared: &Arc<Shared>) -> Response {
    if !shared.allow_shutdown {
        return Response::error(404, "no such endpoint");
    }
    // This connection's request is fully read (it left the reading
    // registry), so shutdown spares its socket and the response below
    // still reaches the caller; stop then forces keep_alive off and the
    // worker drops the connection after flushing.
    shared.begin_shutdown();
    Response::json(
        200,
        &Json::obj([("status", Json::Str("stopping".to_string()))]),
    )
}

/// The parsed, validated body shared by `/v1/score` and `/v1/logprob`.
struct ScoreRequest {
    model: Arc<ServedModel>,
    passwords: Vec<String>,
}

fn parse_score_request(request: &Request, shared: &Arc<Shared>) -> Result<ScoreRequest, Response> {
    if request.body.is_empty() {
        return Err(Response::error(400, "empty request body"));
    }
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| Response::error(400, "request body is not UTF-8"))?;
    let doc = json::parse(text).map_err(|e| Response::error(400, &format!("bad JSON: {e}")))?;
    let model_name = match doc.get("model") {
        None => "default",
        Some(v) => v
            .as_str()
            .ok_or_else(|| Response::error(422, "\"model\" must be a string"))?,
    };
    let passwords_value = doc
        .get("passwords")
        .ok_or_else(|| Response::error(422, "missing \"passwords\" array"))?;
    let items = passwords_value
        .as_arr()
        .ok_or_else(|| Response::error(422, "\"passwords\" must be an array"))?;
    if items.is_empty() {
        return Err(Response::error(422, "\"passwords\" must not be empty"));
    }
    if items.len() > MAX_REQUEST_PASSWORDS {
        return Err(Response::error(
            413,
            &format!("at most {MAX_REQUEST_PASSWORDS} passwords per request"),
        ));
    }
    let mut passwords = Vec::with_capacity(items.len());
    for item in items {
        passwords.push(
            item.as_str()
                .ok_or_else(|| Response::error(422, "passwords must be strings"))?
                .to_string(),
        );
    }
    let model = shared
        .registry
        .get(model_name)
        .ok_or_else(|| Response::error(404, &format!("no model named {model_name:?}")))?;
    Ok(ScoreRequest { model, passwords })
}

/// What a scoring endpoint adds on top of raw log-probabilities.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ScoreMode {
    /// `/v1/score`: log-probs plus guess-number estimates.
    Strength,
    /// `/v1/logprob`: log-probs only.
    LogProb,
    /// `/v1/screen`: log-probs, estimates, *and* breach membership.
    Screen,
}

/// `GET /v1/models` — registered models with their current versions.
fn models(shared: &Arc<Shared>) -> Response {
    let models = shared
        .registry
        .entries()
        .into_iter()
        .map(|(name, version, quantized)| {
            Json::obj([
                ("name", Json::Str(name)),
                ("version", Json::Num(version as f64)),
                ("quantized", Json::Bool(quantized)),
            ])
        })
        .collect();
    Response::json(200, &Json::obj([("models", Json::Arr(models))]))
}

/// `GET /v1/range/{prefix}` — the k-anonymity range endpoint: suffixes (and
/// counts) of every stored digest under a 5-hex-char prefix. The client
/// hashes locally and reveals only 20 bits of the digest.
fn range(prefix: &str, shared: &Arc<Shared>) -> Response {
    let Some(digest) = shared.digest.as_ref() else {
        return Response::error(503, "no digest store is configured");
    };
    if prefix.len() != 5 || !prefix.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Response::error(422, "range prefix must be exactly 5 hex characters");
    }
    // Unlike `/v1/screen`, the range endpoint has nothing useful to serve
    // without the store — its whole payload *is* store data — so partial
    // failure gets an honest 503, through the same breaker.
    if shared.breaker.admit() == Admission::Reject {
        shared.publish_breaker();
        return Response::error(503, "digest store unavailable (circuit open)");
    }
    let outcome = digest.range(prefix);
    match &outcome {
        Ok(_) => shared.breaker.record_success(),
        Err(_) => {
            shared.metrics.record_store_fault();
            shared.breaker.record_failure();
        }
    }
    shared.publish_breaker();
    let entries = match outcome {
        Ok(entries) => entries,
        Err(e) => return Response::error(503, &format!("range query failed: {e}")),
    };
    let suffixes = entries
        .iter()
        .map(|entry| {
            Json::obj([
                ("suffix", Json::Str(entry.suffix.clone())),
                ("count", Json::Num(entry.count as f64)),
            ])
        })
        .collect();
    Response::json(
        200,
        &Json::obj([
            ("prefix", Json::Str(prefix.to_ascii_uppercase())),
            ("suffixes", Json::Arr(suffixes)),
        ]),
    )
}

/// `POST /v1/screen` — strength scoring plus breach membership in one
/// round-trip (the trusted-server variant of range screening).
fn screen(request: &Request, shared: &Arc<Shared>) -> Response {
    if shared.digest.is_none() {
        return Response::error(503, "no digest store is configured");
    }
    score(request, shared, ScoreMode::Screen)
}

/// Resolves one request's scoring deadline: the server default, optionally
/// *shortened* (never extended) by an `X-Passflow-Deadline-Ms` header.
fn request_deadline(request: &Request, shared: &Arc<Shared>) -> Result<Instant, Response> {
    let mut budget = shared.default_deadline;
    if let Some(raw) = request.header("x-passflow-deadline-ms") {
        let ms: u64 = raw
            .parse()
            .map_err(|_| Response::error(400, "malformed X-Passflow-Deadline-Ms header"))?;
        budget = budget.min(Duration::from_millis(ms));
    }
    Ok(Instant::now() + budget)
}

/// Handles `/v1/score`, `/v1/logprob` and the scoring half of `/v1/screen`.
fn score(request: &Request, shared: &Arc<Shared>, mode: ScoreMode) -> Response {
    let parsed = match parse_score_request(request, shared) {
        Ok(parsed) => parsed,
        Err(response) => return response,
    };
    let ScoreRequest { model, passwords } = parsed;
    let deadline = match request_deadline(request, shared) {
        Ok(deadline) => deadline,
        Err(response) => return response,
    };
    if deadline <= Instant::now() {
        // A zero (or already-blown) deadline never reaches the batcher.
        shared.metrics.record_deadline_expired();
        return Response::error(504, "request deadline expired");
    }

    let (reply, result) = mpsc::sync_channel(1);
    let job = ScoreJob {
        model: Arc::clone(&model),
        passwords: passwords.clone(),
        deadline,
        reply,
    };
    match shared.batcher.submit(job) {
        Ok(()) => {}
        Err(EnqueueError::Overloaded) => {
            shared.metrics.record_shed();
            return Response::error(503, "scoring queue is full");
        }
        Err(EnqueueError::ShuttingDown) => return Response::error(503, "server is shutting down"),
    }
    let scores = match result.recv() {
        Ok(ScoreOutcome::Scored(scores)) => scores,
        Ok(ScoreOutcome::Expired) => return Response::error(504, "request deadline expired"),
        Err(_) => return Response::error(500, "batcher dropped the request"),
    };

    let with_strength = mode != ScoreMode::LogProb;
    let mut degraded = false;
    let mut results: Vec<Json> = Vec::with_capacity(passwords.len());
    for (password, score) in passwords.iter().zip(scores.iter()) {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        match score {
            // Unencodable passwords score as null; `/v1/screen` still
            // reports their breach status (membership needs no model).
            None if mode != ScoreMode::Screen => {
                results.push(Json::Null);
                continue;
            }
            None => {
                pairs.push(("password".to_string(), Json::Str(password.clone())));
                pairs.push(("log_prob".to_string(), Json::Null));
            }
            Some(lp) => {
                pairs.push(("password".to_string(), Json::Str(password.clone())));
                pairs.push(("log_prob".to_string(), Json::num_or_null(*lp)));
                pairs.push((
                    "log_prob_bits".to_string(),
                    Json::Str(format!("{:016x}", lp.to_bits())),
                ));
                if with_strength {
                    if let Some(est) = model.estimate(*lp) {
                        pairs.push((
                            "log2_guess_number".to_string(),
                            Json::num_or_null(est.log2_guess_number),
                        ));
                        pairs.push((
                            "log2_ci_low".to_string(),
                            Json::num_or_null(est.log2_ci_low),
                        ));
                        pairs.push((
                            "log2_ci_high".to_string(),
                            Json::num_or_null(est.log2_ci_high),
                        ));
                    }
                }
            }
        }
        if mode == ScoreMode::Screen {
            match shared.screen_lookup(password) {
                Some(hit) => {
                    pairs.push(("breached".to_string(), Json::Bool(hit.is_some())));
                    pairs.push((
                        "breach_count".to_string(),
                        Json::Num(hit.unwrap_or(0) as f64),
                    ));
                }
                // Store unavailable or breaker open: degrade to
                // scores-only rather than failing the whole request. The
                // scores above are still bit-exact; only the breach
                // verdict is withheld, and `"breached": null` says so
                // explicitly (a degraded answer must never read as "not
                // breached").
                None => {
                    degraded = true;
                    pairs.push(("breached".to_string(), Json::Null));
                    pairs.push(("degraded".to_string(), Json::Bool(true)));
                }
            }
        }
        results.push(Json::Obj(pairs.into_iter().collect()));
    }

    let mut top: Vec<(&str, Json)> = vec![
        ("model", Json::Str(model.name().to_string())),
        ("version", Json::Num(model.version() as f64)),
        ("results", Json::Arr(results)),
    ];
    if mode == ScoreMode::Screen {
        top.push(("degraded", Json::Bool(degraded)));
    }
    Response::json(200, &Json::obj(top))
}
