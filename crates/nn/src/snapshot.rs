//! Immutable weight snapshots for the inference fast path.
//!
//! [`Parameter`](crate::Parameter) storage lives behind an `Arc<RwLock>` so
//! training can share weights with optimizers, but that means every
//! `forward_tensor` call clones each weight matrix through a lock — pure
//! overhead once a model is only being *evaluated*. A snapshot exports an
//! owned, immutable copy of a module's weights **once**; its `forward_into`
//! methods then read the weights directly and write activations into
//! caller-provided scratch buffers, so steady-state inference performs no
//! locking and no allocation.
//!
//! All snapshot forward passes are bit-exact (0 ULP) with the corresponding
//! [`Module::forward_tensor`](crate::Module::forward_tensor) chain; see
//! [`crate::kernels`] for the operation-order argument.

use crate::kernels::{
    activate_in_place, matmul_bias_add_into_with, matmul_bias_into_with, relu_in_place,
    tanh_in_place,
};
use crate::layers::ActivationKind;
use crate::pool::ThreadPool;
use crate::tensor::Tensor;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

/// A pool of scratch tensors reused across forward passes, plus the
/// (optional) GEMM thread pool every forward pass through this workspace
/// uses.
///
/// Buffers are taken from and returned to the pool around each use; once the
/// pool has warmed up to a model's widest activation, no further allocation
/// occurs regardless of how many batches are processed.
///
/// The thread pool is a pure throughput knob: every kernel dispatched
/// through it is bit-exact (0 ULP) with the single-threaded path at any
/// thread count, so installing or removing a pool never changes results.
#[derive(Clone, Debug, Default)]
pub struct NetWorkspace {
    pool: Vec<Tensor>,
    threads: Option<Arc<ThreadPool>>,
}

impl NetWorkspace {
    /// Creates an empty workspace (single-threaded kernels).
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a scratch tensor from the pool (or a fresh empty one).
    pub fn take(&mut self) -> Tensor {
        self.pool.pop().unwrap_or_else(|| Tensor::zeros(0, 0))
    }

    /// Returns a scratch tensor to the pool for reuse.
    pub fn put(&mut self, t: Tensor) {
        self.pool.push(t);
    }

    /// Installs (or removes, with `None`) the GEMM thread pool used by
    /// forward passes through this workspace.
    pub fn set_thread_pool(&mut self, pool: Option<Arc<ThreadPool>>) {
        self.threads = pool;
    }

    /// The installed GEMM thread pool, if any.
    pub fn thread_pool(&self) -> Option<&ThreadPool> {
        self.threads.as_deref()
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// An owned copy of a [`Linear`](crate::Linear) layer's weights.
#[derive(Clone, Debug)]
pub struct LinearSnapshot {
    weight: Tensor,
    bias: Tensor,
}

impl LinearSnapshot {
    /// Creates a snapshot from owned weight and bias tensors.
    ///
    /// The weight is kept contiguous and row-major (`in × out`), which the
    /// blocked GEMM streams with unit stride.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a `1 × weight.cols()` row vector.
    pub fn new(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), weight.cols(), "bias width must match weight");
        LinearSnapshot { weight, bias }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.weight.rows()
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.weight.cols()
    }

    /// The `in × out` weight matrix.
    pub fn weight_tensor(&self) -> &Tensor {
        &self.weight
    }

    /// The `1 × out` bias row vector.
    pub fn bias_tensor(&self) -> &Tensor {
        &self.bias
    }

    /// Bytes held by the f32 weights + bias (for compression reporting
    /// against the quantized tier).
    pub fn memory_bytes(&self) -> usize {
        (self.weight.as_slice().len() + self.bias.as_slice().len()) * std::mem::size_of::<f32>()
    }

    /// Fused `out = input × W + b`, resizing `out` as needed.
    pub fn forward_into(&self, input: &Tensor, out: &mut Tensor) {
        self.forward_into_with(input, out, None);
    }

    /// [`Self::forward_into`] with an optional GEMM thread pool
    /// (bit-identical results at any thread count).
    pub fn forward_into_with(&self, input: &Tensor, out: &mut Tensor, pool: Option<&ThreadPool>) {
        matmul_bias_into_with(input, &self.weight, &self.bias, out, pool);
    }

    /// Fused residual `out += input × W + b` (`out` must already be
    /// `input.rows() × out_features`).
    pub fn forward_add_into(&self, input: &Tensor, out: &mut Tensor) {
        self.forward_add_into_with(input, out, None);
    }

    /// [`Self::forward_add_into`] with an optional GEMM thread pool.
    pub fn forward_add_into_with(
        &self,
        input: &Tensor,
        out: &mut Tensor,
        pool: Option<&ThreadPool>,
    ) {
        matmul_bias_add_into_with(input, &self.weight, &self.bias, out, pool);
    }
}

// ---------------------------------------------------------------------------
// ResNet
// ---------------------------------------------------------------------------

/// One residual block's weights plus its activation kind.
#[derive(Clone, Debug)]
pub struct BlockSnapshot {
    /// First (widening) linear layer.
    pub fc1: LinearSnapshot,
    /// Second (projecting) linear layer.
    pub fc2: LinearSnapshot,
    /// Nonlinearity between the two.
    pub activation: ActivationKind,
}

/// An owned copy of a [`ResNet`](crate::ResNet)'s weights — the coupling
/// networks' architecture — evaluated entirely in scratch buffers.
#[derive(Clone, Debug)]
pub struct ResNetSnapshot {
    input: LinearSnapshot,
    blocks: Vec<BlockSnapshot>,
    output: LinearSnapshot,
    output_tanh: bool,
}

impl ResNetSnapshot {
    /// Assembles a snapshot from its layer snapshots.
    pub fn new(
        input: LinearSnapshot,
        blocks: Vec<BlockSnapshot>,
        output: LinearSnapshot,
        output_tanh: bool,
    ) -> Self {
        ResNetSnapshot {
            input,
            blocks,
            output,
            output_tanh,
        }
    }

    /// The input projection layer.
    pub fn input_layer(&self) -> &LinearSnapshot {
        &self.input
    }

    /// The residual blocks, in forward order.
    pub fn block_layers(&self) -> &[BlockSnapshot] {
        &self.blocks
    }

    /// The output projection layer.
    pub fn output_layer(&self) -> &LinearSnapshot {
        &self.output
    }

    /// Whether the output is squashed through `tanh`.
    pub fn output_tanh(&self) -> bool {
        self.output_tanh
    }

    /// Total bytes held by the f32 weights across all layers.
    pub fn memory_bytes(&self) -> usize {
        self.input.memory_bytes()
            + self.output.memory_bytes()
            + self
                .blocks
                .iter()
                .map(|b| b.fc1.memory_bytes() + b.fc2.memory_bytes())
                .sum::<usize>()
    }

    /// Runs the forward pass into `out`, using `ws` for hidden activations
    /// (and its thread pool, if one is installed).
    ///
    /// Bit-exact with `ResNet::forward_tensor` at any thread count.
    pub fn forward_into(&self, x: &Tensor, ws: &mut NetWorkspace, out: &mut Tensor) {
        let mut h = ws.take();
        let mut tmp = ws.take();
        self.input.forward_into_with(x, &mut h, ws.thread_pool());
        relu_in_place(&mut h);
        for block in &self.blocks {
            block.fc1.forward_into_with(&h, &mut tmp, ws.thread_pool());
            activate_in_place(block.activation, &mut tmp);
            block
                .fc2
                .forward_add_into_with(&tmp, &mut h, ws.thread_pool());
        }
        self.output.forward_into_with(&h, out, ws.thread_pool());
        if self.output_tanh {
            tanh_in_place(out);
        }
        ws.put(tmp);
        ws.put(h);
    }
}

// ---------------------------------------------------------------------------
// Generic module snapshots
// ---------------------------------------------------------------------------

/// An owned, immutable snapshot of an arbitrary snapshot-capable
/// [`Module`](crate::Module) stack (see
/// [`Module::export_snapshot`](crate::Module::export_snapshot)).
#[derive(Clone, Debug)]
pub enum WeightSnapshot {
    /// A fully connected layer.
    Linear(LinearSnapshot),
    /// A parameter-free pointwise nonlinearity.
    Activation(ActivationKind),
    /// A two-layer residual block `x + fc2(act(fc1(x)))`.
    Residual(Box<BlockSnapshot>),
    /// A residual MLP (input projection, blocks, output projection).
    Net(Box<ResNetSnapshot>),
    /// A sequential stack of snapshots.
    Stack(Vec<WeightSnapshot>),
}

impl WeightSnapshot {
    /// Runs the snapshot forward pass into `out`, bit-exact with the source
    /// module's `forward_tensor`.
    pub fn forward_into(&self, x: &Tensor, ws: &mut NetWorkspace, out: &mut Tensor) {
        match self {
            WeightSnapshot::Linear(l) => l.forward_into_with(x, out, ws.thread_pool()),
            WeightSnapshot::Activation(kind) => {
                out.copy_from(x);
                activate_in_place(*kind, out);
            }
            WeightSnapshot::Residual(block) => {
                let mut tmp = ws.take();
                block.fc1.forward_into_with(x, &mut tmp, ws.thread_pool());
                activate_in_place(block.activation, &mut tmp);
                block.fc2.forward_into_with(&tmp, out, ws.thread_pool());
                // IEEE addition is commutative in value, so `fc2out + x`
                // equals the reference `x + fc2out` to the last bit.
                out.add_assign(x);
                ws.put(tmp);
            }
            WeightSnapshot::Net(net) => net.forward_into(x, ws, out),
            WeightSnapshot::Stack(children) => match children.len() {
                0 => out.copy_from(x),
                1 => children[0].forward_into(x, ws, out),
                len => {
                    let mut cur = ws.take();
                    let mut next = ws.take();
                    children[0].forward_into(x, ws, &mut cur);
                    for child in &children[1..len - 1] {
                        child.forward_into(&cur, ws, &mut next);
                        std::mem::swap(&mut cur, &mut next);
                    }
                    children[len - 1].forward_into(&cur, ws, out);
                    ws.put(next);
                    ws.put(cur);
                }
            },
        }
    }

    /// Convenience wrapper allocating a fresh output (and workspace).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut ws = NetWorkspace::new();
        let mut out = Tensor::zeros(0, 0);
        self.forward_into(x, &mut ws, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, Linear, Module, ResNet, Sequential};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(123)
    }

    #[test]
    fn resnet_snapshot_is_bit_exact_with_forward_tensor() {
        let mut r = rng();
        for bounded in [false, true] {
            let net = ResNet::new(10, 48, 10, 2, bounded, &mut r);
            let x = Tensor::randn(33, 10, &mut r);
            let reference = net.forward_tensor(&x);
            let snap = net.snapshot();
            let mut ws = NetWorkspace::new();
            let mut out = Tensor::zeros(0, 0);
            snap.forward_into(&x, &mut ws, &mut out);
            assert_eq!(out.as_slice(), reference.as_slice());
        }
    }

    #[test]
    fn reused_workspace_gives_identical_results() {
        let mut r = rng();
        let net = ResNet::new(6, 16, 6, 2, true, &mut r);
        let snap = net.snapshot();
        let mut ws = NetWorkspace::new();
        let mut out = Tensor::zeros(0, 0);
        for trial in 0..4 {
            // Vary the batch size so buffers shrink and grow.
            let x = Tensor::randn(5 + trial * 7, 6, &mut r);
            snap.forward_into(&x, &mut ws, &mut out);
            let mut fresh_ws = NetWorkspace::new();
            let mut fresh_out = Tensor::zeros(0, 0);
            snap.forward_into(&x, &mut fresh_ws, &mut fresh_out);
            assert_eq!(out.as_slice(), fresh_out.as_slice());
        }
    }

    #[test]
    fn sequential_snapshot_matches_forward_tensor() {
        let mut r = rng();
        let seq = Sequential::new()
            .push(Linear::new(8, 24, &mut r))
            .push(Activation::new(ActivationKind::Tanh))
            .push(Linear::new(24, 24, &mut r))
            .push(Activation::new(ActivationKind::Relu))
            .push(Linear::new(24, 3, &mut r));
        let x = Tensor::randn(17, 8, &mut r);
        let snap = seq.export_snapshot().expect("sequential stack snapshots");
        assert_eq!(
            snap.forward(&x).as_slice(),
            seq.forward_tensor(&x).as_slice()
        );
    }

    #[test]
    fn snapshot_is_immune_to_later_weight_updates() {
        let mut r = rng();
        let layer = Linear::new(4, 4, &mut r);
        let x = Tensor::randn(3, 4, &mut r);
        let snap = layer.export_snapshot().unwrap();
        let before = snap.forward(&x);
        layer.weight().set_value(Tensor::zeros(4, 4));
        let after = snap.forward(&x);
        assert_eq!(before.as_slice(), after.as_slice());
        assert_ne!(
            layer.forward_tensor(&x).as_slice(),
            after.as_slice(),
            "live module must see the update"
        );
    }
}
