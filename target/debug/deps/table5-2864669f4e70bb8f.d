/root/repo/target/debug/deps/table5-2864669f4e70bb8f.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-2864669f4e70bb8f: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
