//! Embedded word lists used by the synthetic corpus generator.
//!
//! These are small, public-knowledge vocabularies (common first names,
//! dictionary words, keyboard walks and the perennial "worst passwords"
//! lists) that drive the RockYou-like generator. They are deliberately modest
//! in size: the goal is a corpus with the *structure* of a real leak —
//! word+digits composition, leet substitutions, heavy reuse — not a copy of
//! any actual leaked data.

/// Common first names (lowercase). Names are by far the most common root of
/// leaked passwords, which is why the paper's qualitative examples revolve
/// around strings such as "jimmy91".
pub(crate) const FIRST_NAMES: &[&str] = &[
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael", "linda", "david",
    "elizabeth", "william", "barbara", "richard", "susan", "joseph", "jessica", "thomas", "sarah",
    "charles", "karen", "jimmy", "nancy", "daniel", "lisa", "matthew", "betty", "anthony",
    "margaret", "mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul", "emily",
    "andrew", "donna", "joshua", "michelle", "kenneth", "dorothy", "kevin", "carol", "brian",
    "amanda", "george", "melissa", "edward", "deborah", "ronald", "stephanie", "timothy",
    "rebecca", "jason", "sharon", "jeffrey", "laura", "ryan", "cynthia", "jacob", "kathleen",
    "gary", "amy", "nicholas", "shirley", "eric", "angela", "jonathan", "helen", "stephen",
    "anna", "larry", "brenda", "justin", "pamela", "scott", "nicole", "brandon", "samantha",
    "benjamin", "katherine", "samuel", "emma", "gregory", "ruth", "frank", "christine",
    "alexander", "catherine", "raymond", "debra", "patrick", "rachel", "jack", "carolyn",
    "dennis", "janet", "jerry", "virginia", "tyler", "maria", "aaron", "heather", "jose",
    "diane", "adam", "julie", "henry", "joyce", "nathan", "victoria", "douglas", "kelly",
    "zachary", "christina", "peter", "lauren", "kyle", "joan", "walter", "evelyn", "ethan",
    "olivia", "jeremy", "judith", "harold", "megan", "keith", "cheryl", "christian", "andrea",
    "roger", "hannah", "noah", "martha", "gerald", "jacqueline", "carl", "frances", "terry",
    "gloria", "sean", "ann", "austin", "teresa", "arthur", "kathryn", "lawrence", "sara",
    "jesse", "janice", "dylan", "jean", "bryan", "alice", "joe", "madison", "jordan", "doris",
    "billy", "abigail", "bruce", "julia", "albert", "judy", "willie", "grace", "gabriel",
    "denise", "logan", "amber", "alan", "marilyn", "juan", "beverly", "wayne", "danielle",
    "roy", "theresa", "ralph", "sophia", "randy", "marie", "eugene", "diana", "vincent",
    "brittany", "russell", "natalie", "elijah", "isabella", "louis", "charlotte", "bobby",
    "rose", "philip", "alexis", "johnny", "kayla",
];

/// Common dictionary words and pop-culture terms that appear as password
/// roots in virtually every leak analysis.
pub(crate) const COMMON_WORDS: &[&str] = &[
    "love", "angel", "princess", "monkey", "dragon", "sunshine", "shadow", "master", "soccer",
    "football", "baseball", "basketball", "hockey", "batman", "superman", "pokemon", "naruto",
    "ninja", "tigger", "charlie", "pepper", "ginger", "cookie", "chocolate", "banana", "flower",
    "butterfly", "rainbow", "diamond", "silver", "golden", "purple", "orange", "yellow",
    "summer", "winter", "spring", "autumn", "monday", "friday", "sunday", "january", "june",
    "july", "august", "december", "secret", "magic", "star", "moon", "heart", "smile", "happy",
    "lucky", "crazy", "sweet", "candy", "sugar", "honey", "baby", "angelo", "prince", "queen",
    "king", "tiger", "lion", "eagle", "wolf", "bear", "panda", "kitty", "puppy", "bunny",
    "turtle", "dolphin", "phoenix", "thunder", "lightning", "storm", "fire", "water", "earth",
    "metal", "rock", "guitar", "music", "dance", "party", "beach", "ocean", "river", "mountain",
    "forever", "always", "never", "whatever", "nothing", "something", "computer", "internet",
    "samsung", "nokia", "google", "yahoo", "hotmail", "myspace", "facebook", "rockyou",
    "iloveu", "teamo", "hello", "welcome", "letmein", "cheese", "pizza", "coffee", "soccer1",
    "jesus", "heaven", "spirit", "peace", "freedom", "friend", "family", "mother", "father",
    "sister", "brother", "cousin", "junior", "senior", "chico", "chica", "amor", "corazon",
    "estrella", "flores", "bonita", "hermosa", "gatito", "perrito",
];

/// The perennially most common passwords: these head every leaked-corpus
/// frequency table and give the synthetic corpus its heavy head.
pub(crate) const TOP_PASSWORDS: &[&str] = &[
    "123456", "12345", "123456789", "password", "iloveyou", "princess", "1234567", "rockyou",
    "12345678", "abc123", "nicole", "daniel", "babygirl", "monkey", "lovely", "jessica",
    "654321", "michael", "ashley", "qwerty", "111111", "iloveu", "000000", "michelle", "tigger",
    "sunshine", "chocolate", "password1", "soccer", "anthony", "friends", "butterfly",
    "purple", "angel", "jordan", "liverpool", "justin", "loveme", "fuckyou", "123123",
    "football", "secret", "andrea", "carlos", "jennifer", "joshua", "bubbles", "1234567890",
    "superman", "hannah", "amanda", "loveyou", "pretty", "basketball", "andrew", "angels",
    "tweety", "flower", "playboy", "hello", "elizabeth", "hottie", "tinkerbell", "charlie",
    "samantha", "barbie", "chelsea", "lovers", "teamo", "jasmine", "brandon", "666666",
    "shadow", "melissa", "eminem", "matthew", "robert", "danielle", "forever", "family",
    "jonathan", "987654321", "computer", "whatever", "dragon", "vanessa", "cookie", "naruto",
    "summer", "sweety", "spongebob", "joseph", "junior", "softball", "taylor", "yellow",
    "daniela", "lauren", "mickey", "princesa",
];

/// Keyboard walks.
pub(crate) const KEYBOARD_WALKS: &[&str] = &[
    "qwerty", "qwertyuiop", "asdfgh", "asdfghjkl", "zxcvbnm", "qazwsx", "1qaz2wsx", "qwe123",
    "asd123", "zaq12wsx", "123qwe", "q1w2e3r4", "1q2w3e4r", "poiuyt", "lkjhgf", "mnbvcx",
    "147258369", "159357", "741852963", "963852741", "112233", "121212", "123321", "456789",
    "789456", "102030", "010203",
];

/// Leet-speak substitutions applied by the generator.
pub(crate) const LEET_SUBSTITUTIONS: &[(char, char)] = &[
    ('a', '4'),
    ('a', '@'),
    ('e', '3'),
    ('i', '1'),
    ('i', '!'),
    ('o', '0'),
    ('s', '5'),
    ('s', '$'),
    ('t', '7'),
    ('l', '1'),
    ('b', '8'),
    ('g', '9'),
];

/// Common suffix digit patterns (other than years and single digits).
pub(crate) const DIGIT_SUFFIXES: &[&str] = &[
    "1", "2", "3", "7", "11", "12", "13", "21", "22", "23", "69", "77", "88", "99", "101",
    "123", "321", "007", "143", "420", "666", "777", "911", "1234", "12345",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn wordlists_are_nonempty_and_lowercase_fit() {
        assert!(FIRST_NAMES.len() > 100);
        assert!(COMMON_WORDS.len() > 100);
        assert!(TOP_PASSWORDS.len() > 80);
        assert!(KEYBOARD_WALKS.len() > 20);
        for w in FIRST_NAMES.iter().chain(COMMON_WORDS) {
            assert!(
                w.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                "unexpected character in word {w}"
            );
        }
    }

    #[test]
    fn wordlists_have_no_duplicates() {
        let names: HashSet<_> = FIRST_NAMES.iter().collect();
        assert_eq!(names.len(), FIRST_NAMES.len());
        let walks: HashSet<_> = KEYBOARD_WALKS.iter().collect();
        assert_eq!(walks.len(), KEYBOARD_WALKS.len());
    }

    #[test]
    fn top_passwords_fit_paper_length_bound() {
        // The paper trains on passwords of length <= 10; the head of the
        // distribution must be representable.
        assert!(TOP_PASSWORDS.iter().all(|p| p.len() <= 10));
    }

    #[test]
    fn leet_substitutions_map_letters_to_symbols() {
        for &(from, to) in LEET_SUBSTITUTIONS {
            assert!(from.is_ascii_lowercase());
            assert!(!to.is_ascii_lowercase());
        }
    }
}
