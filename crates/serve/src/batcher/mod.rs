//! The adaptive micro-batching queue between HTTP handlers and the flow —
//! sharded into N independent **lanes**.
//!
//! Per-request scalar scoring wastes the blocked GEMM the inference fast
//! path was built around: a 1-row matrix product cannot amortize anything.
//! The batcher turns concurrent single-password requests back into the
//! batched [`FlowSnapshot::log_prob_into`] shape: handlers enqueue jobs on
//! a **bounded** per-lane queue (overload is shed at enqueue time with a
//! 503, never by buffering without limit) and each lane thread coalesces
//! its jobs into per-tick micro-batches.
//!
//! With [`BatcherConfig::lanes`] > 1 the single batcher thread becomes a
//! sharded set (the scale-out path for hosts where one lane saturates a
//! core before it saturates the scoring tiers):
//!
//! * **Dispatch** is round-robin with failover: a submit lands on the
//!   cursor's lane, or the next alive lane with room; only when *every*
//!   lane is full does it shed.
//! * **Work stealing**: a lane whose own queue runs dry mid-tick drains
//!   the front of its siblings' queues into the same tick, so one hot
//!   lane's overflow is absorbed before any 503.
//! * **One shared GEMM pool**: lanes share a single
//!   [`passflow_nn::ThreadPool`] sized by
//!   [`passflow_nn::clamp_lane_threads`] (`lanes × threads ≤ host`) rather
//!   than each spawning `threads` workers.
//! * **Per-lane liveness**: `/healthz` reports each lane; a dead lane's
//!   queued jobs are re-dispatched to survivors (see `lane`).
//!
//! Each tick works like this:
//!
//! 1. Block on the first job (an idle server burns no CPU beyond a slow
//!    idle steal scan).
//! 2. **Adaptive wait**: if the *previous* tick filled `max_batch`, the
//!    queue is saturated — drain whatever is ready without sleeping (any
//!    waiting would only grow latency; the backlog already guarantees full
//!    batches). Otherwise, wait up to `max_wait` for stragglers so
//!    concurrent requests land in one GEMM instead of many.
//! 3. Group the drained jobs by their resolved model `Arc` (requests
//!    resolve models at dispatch, so a hot-swap never mixes weights inside
//!    a response) and run **one** fused scoring call per group.
//! 4. Send each job its slice of the results over its reply channel.
//!
//! Because every fused kernel is row-independent, a password's score is
//! bit-identical whether it was scored alone, coalesced into a 64-row
//! tick, or stolen by a sibling lane — `tests/serve.rs` and
//! `tests/lanes.rs` assert this at 0 ULP.
//!
//! [`FlowSnapshot::log_prob_into`]: passflow_core::FlowSnapshot::log_prob_into

mod lane;

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use passflow_core::FlowWorkspace;
use passflow_nn::ThreadPool;

use crate::metrics::Metrics;
use crate::registry::ServedModel;
use lane::LaneSet;

/// A scoring job: the passwords of one request plus where to send results.
pub struct ScoreJob {
    /// The model resolved at dispatch time (immutable for this job).
    pub model: Arc<ServedModel>,
    /// Passwords to score (one per row of the request's `passwords` array).
    pub passwords: Vec<String>,
    /// Latest instant at which scoring this job is still useful. Jobs
    /// found expired at drain time are answered [`ScoreOutcome::Expired`]
    /// (the handler turns that into a 504) instead of burning GEMM rows on
    /// a response nobody is waiting for.
    pub deadline: Instant,
    /// One-shot reply channel; receives exactly one outcome.
    pub reply: mpsc::SyncSender<ScoreOutcome>,
}

/// What a job's reply channel receives.
#[derive(Clone, Debug)]
pub enum ScoreOutcome {
    /// Scores in input order, one entry per password (`None` for
    /// unencodable passwords).
    Scored(Vec<Option<f64>>),
    /// The job's deadline expired before a tick picked it up.
    Expired,
}

/// Tuning knobs for the batcher.
#[derive(Clone, Copy, Debug)]
pub struct BatcherConfig {
    /// Maximum passwords scored per tick (the GEMM row count).
    pub max_batch: usize,
    /// Maximum time a tick waits for stragglers after its first job.
    pub max_wait: Duration,
    /// Bound of each lane's job queue; enqueueing beyond it (on every
    /// lane) sheds load (503).
    pub queue_capacity: usize,
    /// GEMM threads for the batcher's scoring workspace (resolved through
    /// the repo-wide [`passflow_nn::clamp_threads`] discipline; `1` keeps
    /// the serial kernels). With multiple lanes the per-lane count is
    /// further clamped by [`passflow_nn::clamp_lane_threads`] so
    /// `lanes × threads` never oversubscribes the host, and all lanes
    /// share **one** pool. Scores are bit-identical at any thread count.
    pub threads: usize,
    /// Number of batcher lanes (independent queue + tick loop pairs).
    /// `1` reproduces the single-threaded batcher exactly; responses are
    /// bit-identical at any lane count.
    pub lanes: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            threads: 1,
            lanes: 1,
        }
    }
}

/// Handle for submitting jobs to the batcher lanes.
#[derive(Clone)]
pub struct BatcherHandle {
    set: Arc<LaneSet>,
}

/// Why a job could not be enqueued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueError {
    /// Every lane's bounded queue is full — the server is overloaded.
    Overloaded,
    /// The batcher has shut down (or every lane has died).
    ShuttingDown,
}

impl BatcherHandle {
    /// Enqueues a job without blocking; overload is reported, not buffered.
    pub fn submit(&self, job: ScoreJob) -> Result<(), EnqueueError> {
        self.set.submit(job)
    }

    /// Whether any batcher lane is still running (for `/healthz`; flips
    /// false on graceful shutdown *and* if every lane thread dies).
    pub fn is_alive(&self) -> bool {
        self.set.alive_lanes() > 0
    }

    /// Number of lanes this batcher was spawned with.
    pub fn lanes(&self) -> usize {
        self.set.len()
    }

    /// Whether a specific lane's thread is still running.
    pub fn lane_alive(&self, lane: usize) -> bool {
        self.set.lane_alive(lane)
    }

    /// Number of lanes still running.
    pub fn alive_lanes(&self) -> usize {
        self.set.alive_lanes()
    }

    /// Jobs lane `lane` has stolen from its siblings so far.
    pub fn lane_steals(&self, lane: usize) -> u64 {
        self.set.lane_steals(lane)
    }

    /// Total steals across all lanes.
    pub fn total_steals(&self) -> u64 {
        (0..self.set.len()).map(|i| self.set.lane_steals(i)).sum()
    }

    /// **Chaos hook**: makes lane `lane` panic at its next wakeup, exactly
    /// as if its thread had crashed. Queued jobs are re-dispatched to
    /// surviving lanes; `/healthz` reports the lane dead. For fault
    /// injection in `tests/chaos.rs` — never called in production paths.
    pub fn kill_lane(&self, lane: usize) {
        self.set.request_kill(lane);
    }
}

/// The batcher lane threads plus their submission handle.
pub struct Batcher {
    handle: BatcherHandle,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Spawns the batcher lanes. All lanes share one GEMM [`ThreadPool`]
    /// sized by [`passflow_nn::clamp_lane_threads`] — `--lanes` and
    /// `--threads` compose without oversubscribing the host.
    pub fn spawn(config: BatcherConfig, metrics: Arc<Metrics>) -> Batcher {
        let lanes = config.lanes.max(1);
        let set = Arc::new(LaneSet::new(
            lanes,
            config.queue_capacity.max(1),
            Arc::clone(&metrics),
        ));
        let per_lane = passflow_nn::clamp_lane_threads(lanes, config.threads);
        let pool = if per_lane > 1 {
            Some(Arc::new(ThreadPool::new(per_lane)))
        } else {
            None
        };
        let threads = (0..lanes)
            .map(|idx| {
                let set = Arc::clone(&set);
                let metrics = Arc::clone(&metrics);
                let pool = pool.clone();
                std::thread::Builder::new()
                    .name(format!("passflow-lane-{idx}"))
                    .spawn(move || {
                        // Retires the lane however the loop exits — a panic
                        // unwinding through here still marks it dead (so
                        // `/healthz` tells the truth) and re-dispatches its
                        // queued jobs to surviving lanes (so no client
                        // hangs on a reply that will never come).
                        struct LaneGuard {
                            set: Arc<LaneSet>,
                            idx: usize,
                        }
                        impl Drop for LaneGuard {
                            fn drop(&mut self) {
                                self.set.retire(self.idx, std::thread::panicking());
                            }
                        }
                        let _guard = LaneGuard {
                            set: Arc::clone(&set),
                            idx,
                        };
                        lane::lane_loop(&set, idx, &config, &metrics, pool);
                    })
                    .expect("spawning a batcher lane thread")
            })
            .collect();
        Batcher {
            handle: BatcherHandle { set },
            threads,
        }
    }

    /// A cloneable submission handle for connection handlers.
    pub fn handle(&self) -> BatcherHandle {
        self.handle.clone()
    }
}

impl Drop for Batcher {
    /// Sets the stop flag and joins every lane; jobs already queued are
    /// still scored before the threads exit (graceful drain, each lane
    /// draining its own queue). Handle clones held elsewhere merely get
    /// [`EnqueueError::ShuttingDown`] (or an unanswered reply channel)
    /// afterwards — they cannot stall the join.
    fn drop(&mut self) {
        self.handle.set.begin_stop();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

/// Answers every already-expired job with [`ScoreOutcome::Expired`] (the
/// handler's 504) and returns the jobs still worth scoring.
fn expire_jobs(jobs: Vec<ScoreJob>, metrics: &Metrics) -> Vec<ScoreJob> {
    let now = Instant::now();
    let mut live = Vec::with_capacity(jobs.len());
    for job in jobs {
        if job.deadline <= now {
            metrics.record_deadline_expired();
            let _ = job.reply.try_send(ScoreOutcome::Expired);
        } else {
            live.push(job);
        }
    }
    live
}

/// Scores one tick: one fused call per distinct model, results split back
/// out to each job's reply channel in input order.
///
/// Jobs arrive roughly model-sorted (most deployments serve one hot model),
/// so grouping by pointer identity over the small job list is cheaper than
/// a hash map. Requests resolved their model `Arc` at dispatch, so a
/// hot-swap never mixes weights inside a single response.
fn score_tick(jobs: &[ScoreJob], ws: &mut FlowWorkspace, scores: &mut Vec<Option<f64>>) {
    let mut scored = vec![false; jobs.len()];
    for i in 0..jobs.len() {
        if scored[i] {
            continue;
        }
        let model = &jobs[i].model;
        let group: Vec<usize> = (i..jobs.len())
            .filter(|&j| !scored[j] && Arc::ptr_eq(&jobs[j].model, model))
            .collect();
        // Single-job groups (every serial-mode tick, and any tick with one
        // request) score the job's own password slice directly; only a
        // genuinely coalesced group pays for concatenating the strings.
        let concatenated: Vec<String>;
        let batch: &[String] = if group.len() == 1 {
            &jobs[group[0]].passwords
        } else {
            concatenated = group
                .iter()
                .flat_map(|&j| jobs[j].passwords.iter().cloned())
                .collect();
            &concatenated
        };
        model.log_probs_with(batch, ws, scores);

        let mut offset = 0usize;
        for &j in &group {
            let n = jobs[j].passwords.len();
            let slice = scores[offset..offset + n].to_vec();
            offset += n;
            scored[j] = true;
            // A dropped receiver (client disconnected mid-flight) is not
            // an error; the score is simply discarded.
            let _ = jobs[j].reply.try_send(ScoreOutcome::Scored(slice));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ServedModel;
    use passflow_core::{FlowConfig, PassFlow, ProbabilityModel};
    use passflow_nn::rng as nnrng;

    fn served(seed: u64) -> (PassFlow, Arc<ServedModel>) {
        let mut rng = nnrng::seeded(seed);
        let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
        let model = Arc::new(ServedModel::from_flow("m", &flow, 1, None));
        (flow, model)
    }

    /// A deadline far enough out that tests never trip it accidentally.
    fn lenient_deadline() -> Instant {
        Instant::now() + Duration::from_secs(300)
    }

    fn expect_scores(outcome: ScoreOutcome) -> Vec<Option<f64>> {
        match outcome {
            ScoreOutcome::Scored(scores) => scores,
            ScoreOutcome::Expired => panic!("job expired under a lenient deadline"),
        }
    }

    fn submit_one(handle: &BatcherHandle, model: &Arc<ServedModel>, pw: &str) -> Option<f64> {
        let (reply, rx) = mpsc::sync_channel(1);
        handle
            .submit(ScoreJob {
                model: Arc::clone(model),
                passwords: vec![pw.to_string()],
                deadline: lenient_deadline(),
                reply,
            })
            .unwrap();
        expect_scores(rx.recv_timeout(Duration::from_secs(30)).unwrap())[0]
    }

    #[test]
    fn batched_scores_match_direct_scoring() {
        let (flow, model) = served(41);
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::spawn(BatcherConfig::default(), Arc::clone(&metrics));
        let handle = batcher.handle();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let handle = handle.clone();
                let model = Arc::clone(&model);
                std::thread::spawn(move || {
                    (0..5)
                        .map(|i| {
                            let pw = format!("pw{t}x{i}");
                            (pw.clone(), submit_one(&handle, &model, &pw))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for t in threads {
            for (pw, got) in t.join().unwrap() {
                let expected = flow.password_log_prob(&pw).unwrap();
                assert_eq!(got.unwrap().to_bits(), expected.to_bits(), "{pw}");
            }
        }
        drop(batcher);
        assert!(
            metrics.total_requests() == 0,
            "batcher records batches only"
        );
    }

    #[test]
    fn mixed_model_ticks_never_cross_wires() {
        let (flow_a, model_a) = served(42);
        let (flow_b, model_b) = served(43);
        let batcher = Batcher::spawn(
            BatcherConfig {
                // A long wait forces both models into the same tick.
                max_wait: Duration::from_millis(50),
                ..BatcherConfig::default()
            },
            Arc::new(Metrics::new()),
        );
        let handle = batcher.handle();
        let ha = handle.clone();
        let a = std::thread::spawn(move || submit_one(&ha, &model_a, "jimmy91"));
        let b = submit_one(&handle, &model_b, "jimmy91");
        let a = a.join().unwrap();
        assert_eq!(
            a.unwrap().to_bits(),
            flow_a.password_log_prob("jimmy91").unwrap().to_bits()
        );
        assert_eq!(
            b.unwrap().to_bits(),
            flow_b.password_log_prob("jimmy91").unwrap().to_bits()
        );
    }

    #[test]
    fn overload_is_shed_not_buffered() {
        let (_flow, model) = served(44);
        // Capacity-1 queue with a stalled batcher: fill it, then expect
        // Overloaded. Stall by submitting a job whose model scoring is slow
        // enough — instead, simply don't start draining: use max_wait 0 and
        // flood from this thread faster than the batcher can drain.
        let batcher = Batcher::spawn(
            BatcherConfig {
                max_batch: 1,
                max_wait: Duration::ZERO,
                queue_capacity: 1,
                ..BatcherConfig::default()
            },
            Arc::new(Metrics::new()),
        );
        let handle = batcher.handle();
        let mut saw_overload = false;
        let mut receivers = Vec::new();
        for i in 0..200 {
            let (reply, rx) = mpsc::sync_channel(1);
            match handle.submit(ScoreJob {
                model: Arc::clone(&model),
                passwords: vec![format!("pw{i}")],
                deadline: lenient_deadline(),
                reply,
            }) {
                Ok(()) => receivers.push(rx),
                Err(EnqueueError::Overloaded) => {
                    saw_overload = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(saw_overload, "a capacity-1 queue must shed a 200-job flood");
        // Accepted jobs still complete (graceful drain on drop).
        drop(batcher);
        for rx in receivers {
            assert!(rx.recv_timeout(Duration::from_secs(30)).is_ok());
        }
    }

    #[test]
    fn expired_jobs_are_dropped_not_scored() {
        let (_flow, model) = served(46);
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::spawn(
            BatcherConfig {
                // A long straggler wait gives the already-expired job time
                // to be drained into a tick deterministically.
                max_wait: Duration::from_millis(50),
                ..BatcherConfig::default()
            },
            Arc::clone(&metrics),
        );
        let handle = batcher.handle();
        assert!(handle.is_alive());

        let (reply, expired_rx) = mpsc::sync_channel(1);
        handle
            .submit(ScoreJob {
                model: Arc::clone(&model),
                passwords: vec!["stale".to_string()],
                deadline: Instant::now() - Duration::from_millis(1),
                reply,
            })
            .unwrap();
        // A live job in the same tick still gets scored.
        let live = submit_one(&handle, &model, "fresh");
        assert!(live.is_some());
        match expired_rx.recv_timeout(Duration::from_secs(30)).unwrap() {
            ScoreOutcome::Expired => {}
            ScoreOutcome::Scored(_) => panic!("expired job must not be scored"),
        }
        assert_eq!(metrics.deadline_expired_total(), 1);
        drop(batcher);
        assert!(!handle.is_alive(), "drained batcher reports dead");
    }

    #[test]
    fn multi_password_jobs_keep_input_order() {
        let (flow, model) = served(45);
        let batcher = Batcher::spawn(BatcherConfig::default(), Arc::new(Metrics::new()));
        let passwords: Vec<String> = (0..10).map(|i| format!("word{i}")).collect();
        let (reply, rx) = mpsc::sync_channel(1);
        batcher
            .handle()
            .submit(ScoreJob {
                model,
                passwords: passwords.clone(),
                deadline: lenient_deadline(),
                reply,
            })
            .unwrap();
        let scores = expect_scores(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        let expected = flow.password_log_probs(&passwords);
        assert_eq!(scores.len(), expected.len());
        for (a, b) in scores.iter().zip(expected.iter()) {
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        }
    }

    #[test]
    fn multi_lane_scores_match_direct_scoring() {
        let (flow, model) = served(47);
        let metrics = Arc::new(Metrics::with_lanes(4));
        let batcher = Batcher::spawn(
            BatcherConfig {
                lanes: 4,
                ..BatcherConfig::default()
            },
            Arc::clone(&metrics),
        );
        let handle = batcher.handle();
        assert_eq!(handle.lanes(), 4);
        assert_eq!(handle.alive_lanes(), 4);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let handle = handle.clone();
                let model = Arc::clone(&model);
                std::thread::spawn(move || {
                    (0..10)
                        .map(|i| {
                            let pw = format!("lane{t}x{i}");
                            (pw.clone(), submit_one(&handle, &model, &pw))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for t in threads {
            for (pw, got) in t.join().unwrap() {
                let expected = flow.password_log_prob(&pw).unwrap();
                assert_eq!(got.unwrap().to_bits(), expected.to_bits(), "{pw}");
            }
        }
    }

    #[test]
    fn one_slot_queues_force_stealing() {
        let (flow, model) = served(48);
        let metrics = Arc::new(Metrics::with_lanes(2));
        // One-slot lanes and a generous straggler wait: the first lane to
        // open a tick sits waiting while round-robin keeps landing jobs on
        // its sibling — the only way those jobs reach a GEMM before the
        // wait expires is the steal path.
        let batcher = Batcher::spawn(
            BatcherConfig {
                lanes: 2,
                queue_capacity: 1,
                max_wait: Duration::from_millis(50),
                ..BatcherConfig::default()
            },
            Arc::clone(&metrics),
        );
        let handle = batcher.handle();
        let mut receivers = Vec::new();
        let mut accepted = Vec::new();
        for round in 0..40 {
            let pw = format!("steal{round}");
            let (reply, rx) = mpsc::sync_channel(1);
            let job = ScoreJob {
                model: Arc::clone(&model),
                passwords: vec![pw.clone()],
                deadline: lenient_deadline(),
                reply,
            };
            if handle.submit(job).is_ok() {
                receivers.push(rx);
                accepted.push(pw);
            }
        }
        for (pw, rx) in accepted.iter().zip(receivers) {
            let scores = expect_scores(rx.recv_timeout(Duration::from_secs(30)).unwrap());
            let expected = flow.password_log_prob(pw).unwrap();
            assert_eq!(scores[0].unwrap().to_bits(), expected.to_bits(), "{pw}");
        }
        assert!(
            handle.total_steals() > 0,
            "one-slot queues under a 40-job burst must exercise the steal path"
        );
        assert_eq!(
            handle.total_steals(),
            (0..handle.lanes()).map(|i| handle.lane_steals(i)).sum(),
            "per-lane steal counters sum to the total"
        );
    }

    #[test]
    fn killed_lane_reports_dead_and_survivors_rescue_its_jobs() {
        let (flow, model) = served(49);
        let metrics = Arc::new(Metrics::with_lanes(3));
        let batcher = Batcher::spawn(
            BatcherConfig {
                lanes: 3,
                ..BatcherConfig::default()
            },
            Arc::clone(&metrics),
        );
        let handle = batcher.handle();
        handle.kill_lane(1);
        let deadline = Instant::now() + Duration::from_secs(30);
        while handle.lane_alive(1) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!handle.lane_alive(1), "killed lane must report dead");
        assert!(handle.is_alive(), "surviving lanes keep the batcher alive");
        assert_eq!(handle.alive_lanes(), 2);
        // Every request after the kill still scores, bit-exact: round-robin
        // skips the corpse and failover covers its cursor slots.
        for i in 0..30 {
            let pw = format!("ak{i}");
            let got = submit_one(&handle, &model, &pw);
            let expected = flow.password_log_prob(&pw).unwrap();
            assert_eq!(got.unwrap().to_bits(), expected.to_bits(), "{pw}");
        }
        // Killing the rest flips the batcher dead and submits are refused.
        handle.kill_lane(0);
        handle.kill_lane(2);
        let deadline = Instant::now() + Duration::from_secs(30);
        while handle.is_alive() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(!handle.is_alive());
        let (reply, _rx) = mpsc::sync_channel(1);
        assert_eq!(
            handle.submit(ScoreJob {
                model,
                passwords: vec!["x".to_string()],
                deadline: lenient_deadline(),
                reply,
            }),
            Err(EnqueueError::ShuttingDown)
        );
    }
}
