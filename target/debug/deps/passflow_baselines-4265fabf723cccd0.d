/root/repo/target/debug/deps/passflow_baselines-4265fabf723cccd0.d: crates/baselines/src/lib.rs crates/baselines/src/cwae.rs crates/baselines/src/gan.rs crates/baselines/src/guesser.rs crates/baselines/src/markov.rs crates/baselines/src/pcfg.rs Cargo.toml

/root/repo/target/debug/deps/libpassflow_baselines-4265fabf723cccd0.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cwae.rs crates/baselines/src/gan.rs crates/baselines/src/guesser.rs crates/baselines/src/markov.rs crates/baselines/src/pcfg.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/cwae.rs:
crates/baselines/src/gan.rs:
crates/baselines/src/guesser.rs:
crates/baselines/src/markov.rs:
crates/baselines/src/pcfg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
