//! The [`Guesser`] abstraction every password-guessing model implements,
//! plus the per-worker generation *sessions* that let models cache weight
//! snapshots and scratch buffers across batches.

use std::sync::Arc;

use rand::RngCore;

use passflow_nn::Tensor;

use crate::fastpath::{FlowSnapshot, FlowWorkspace};
use crate::flow::PassFlow;

/// A trained password-guessing model that can generate candidate passwords
/// in batches.
///
/// The trait is object-safe, so the evaluation harness can hold a mixed
/// collection of models (`Vec<Box<dyn Guesser>>`) and drive them all through
/// the same [`Attack`](crate::Attack) protocol. `Send + Sync` are
/// supertraits because the engine fans generation out across shard threads.
///
/// Guesses may repeat; deduplication (and the resulting unique counts) is
/// the engine's responsibility, exactly as in the paper's Tables II and III.
pub trait Guesser: Send + Sync {
    /// Human-readable name used as the row label in tables
    /// (e.g. `"PassFlow"`, `"Markov (order 3)"`).
    fn name(&self) -> &str;

    /// Generates `n` password guesses.
    ///
    /// Implementations must draw all randomness from `rng` so the engine's
    /// per-chunk RNG streams keep attacks deterministic and shard-invariant.
    fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String>;

    /// Returns the latent-space view of this guesser, if it has one.
    ///
    /// Strategies that condition the prior on matched guesses (Dynamic
    /// Sampling) or perturb colliding samples (Gaussian smoothing) need the
    /// operations of [`LatentGuesser`]; models without a latent space return
    /// `None` and can only run static strategies.
    fn as_latent(&self) -> Option<&dyn LatentGuesser> {
        None
    }

    /// Starts a per-worker [`GuessSession`], or `None` if the guesser is
    /// stateless (the engine then falls back to calling
    /// [`Guesser::generate_batch`] directly).
    ///
    /// A session may cache an immutable weight snapshot and scratch buffers,
    /// making steady-state generation lock- and allocation-free. Sessions
    /// **must** generate bit-identical guesses to `generate_batch` for the
    /// same RNG stream — the engine's results never depend on whether (or
    /// how often) sessions are restarted.
    fn start_session(&self) -> Option<Box<dyn GuessSession + '_>> {
        None
    }

    /// A digest of the guesser's generation-relevant state (typically its
    /// weights), recorded in `PFATTACK v1` attack checkpoints so resuming
    /// against a *different* model is a typed error instead of silently
    /// divergent output. `None` (the default) skips the check.
    fn state_digest(&self) -> Option<u64> {
        None
    }
}

/// A per-worker generation context created by [`Guesser::start_session`].
///
/// `Send` (but not `Sync`) so the engine can keep one session per worker
/// thread alive across epochs; all mutability is session-local.
pub trait GuessSession: Send {
    /// Generates `n` guesses, reusing session buffers where possible.
    fn generate_batch(&mut self, n: usize, rng: &mut dyn RngCore) -> Vec<String>;
}

/// The fallback [`GuessSession`] for stateless guessers: a pass-through to
/// [`Guesser::generate_batch`].
pub struct StatelessSession<'g>(pub &'g dyn Guesser);

impl GuessSession for StatelessSession<'_> {
    fn generate_batch(&mut self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
        self.0.generate_batch(n, rng)
    }
}

/// Extension trait for guessers backed by an invertible latent-variable
/// model (the flow, but also any future VAE/flow backend).
///
/// Exposing these three operations is enough for the engine to implement
/// Dynamic Sampling with penalization (Algorithm 1) and data-space Gaussian
/// smoothing (Section III-C) *outside* the model: the engine samples the
/// (possibly conditioned) prior itself, maps latents to data space through
/// [`LatentGuesser::latents_to_features`], and decodes / perturbs rows
/// individually.
pub trait LatentGuesser: Guesser {
    /// Dimensionality of the latent space.
    fn latent_dim(&self) -> usize;

    /// Maps a batch of latent rows to data-space feature rows (the flow's
    /// inverse pass).
    fn latents_to_features(&self, z: &Tensor) -> Tensor;

    /// Decodes one data-space feature row into a password guess.
    fn decode_features(&self, features: &[f32]) -> String;

    /// Starts a per-worker [`LatentSession`], or `None` if the guesser has
    /// no cacheable inference state (the engine then falls back to
    /// [`LatentGuesser::latents_to_features`]).
    ///
    /// Sessions **must** map latents bit-identically to
    /// `latents_to_features`.
    fn start_latent_session(&self) -> Option<Box<dyn LatentSession + '_>> {
        None
    }
}

/// A per-worker latent-inference context created by
/// [`LatentGuesser::start_latent_session`].
pub trait LatentSession: Send {
    /// Maps a batch of latent rows to data-space feature rows, writing into
    /// `out` and reusing session scratch buffers.
    fn latents_to_features_into(&mut self, z: &Tensor, out: &mut Tensor);
}

/// The fallback [`LatentSession`] for guessers without cacheable state: a
/// pass-through to [`LatentGuesser::latents_to_features`].
pub struct StatelessLatentSession<'g>(pub &'g dyn LatentGuesser);

impl LatentSession for StatelessLatentSession<'_> {
    fn latents_to_features_into(&mut self, z: &Tensor, out: &mut Tensor) {
        *out = self.0.latents_to_features(z);
    }
}

/// The flow's generation session: a cached weight snapshot plus reusable
/// latent, feature and hidden-activation buffers. After the first batch
/// warms the buffers, generation performs no allocation inside the flow
/// (guess strings are still allocated, as they are the output).
///
/// The snapshot is revalidated against the flow's parameter version stamps
/// on every batch, so the session always generates from current weights —
/// bit-identically to [`Guesser::generate_batch`] — while unchanged weights
/// cost only a stamp comparison, not a re-export.
pub struct FlowSession<'f> {
    flow: &'f PassFlow,
    snapshot: Arc<FlowSnapshot>,
    ws: FlowWorkspace,
    z: Tensor,
    x: Tensor,
}

impl<'f> FlowSession<'f> {
    fn new(flow: &'f PassFlow) -> Self {
        FlowSession {
            flow,
            snapshot: flow.snapshot(),
            ws: FlowWorkspace::new(),
            z: Tensor::default(),
            x: Tensor::default(),
        }
    }

    /// Refreshes the cached snapshot if any parameter changed since it was
    /// exported (a lock-read plus `Arc` clone when weights are unchanged).
    fn refresh(&mut self) {
        if !self.snapshot.is_current() {
            self.snapshot = self.flow.snapshot();
        }
    }
}

impl GuessSession for FlowSession<'_> {
    fn generate_batch(&mut self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
        // Bit-identical to `PassFlow::sample_passwords`: the prior draw
        // consumes the RNG exactly like `Tensor::randn`, and the snapshot
        // inverse is 0-ULP-exact with the reference inverse.
        self.refresh();
        Tensor::randn_into(n, self.snapshot.dim(), rng, &mut self.z);
        self.snapshot
            .inverse_into(&self.z, &mut self.ws, &mut self.x);
        (0..n)
            .map(|i| self.flow.encoder().decode(self.x.row_slice(i)))
            .collect()
    }
}

impl LatentSession for FlowSession<'_> {
    fn latents_to_features_into(&mut self, z: &Tensor, out: &mut Tensor) {
        self.refresh();
        self.snapshot.inverse_into(z, &mut self.ws, out);
    }
}

impl Guesser for PassFlow {
    fn name(&self) -> &str {
        "PassFlow"
    }

    fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
        self.sample_passwords(n, rng)
    }

    fn as_latent(&self) -> Option<&dyn LatentGuesser> {
        Some(self)
    }

    fn start_session(&self) -> Option<Box<dyn GuessSession + '_>> {
        Some(Box::new(FlowSession::new(self)))
    }

    fn state_digest(&self) -> Option<u64> {
        // FNV over the canonical serialized form, so the digest moves with
        // the weights (and with nothing else).
        let mut bytes = Vec::new();
        crate::persist::save_flow_to_writer(self, &mut bytes).ok()?;
        Some(super::checkpoint::fnv1a(
            super::checkpoint::FNV_SEED,
            &bytes,
        ))
    }
}

impl LatentGuesser for PassFlow {
    fn latent_dim(&self) -> usize {
        self.dim()
    }

    fn latents_to_features(&self, z: &Tensor) -> Tensor {
        self.inverse(z)
    }

    fn decode_features(&self, features: &[f32]) -> String {
        self.encoder().decode(features)
    }

    fn start_latent_session(&self) -> Option<Box<dyn LatentSession + '_>> {
        Some(Box::new(FlowSession::new(self)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use passflow_nn::rng as nnrng;

    #[test]
    fn trait_is_object_safe_and_usable_through_a_box() {
        struct Fixed;
        impl Guesser for Fixed {
            fn name(&self) -> &str {
                "fixed"
            }
            fn generate_batch(&self, n: usize, _rng: &mut dyn RngCore) -> Vec<String> {
                vec!["123456".to_string(); n]
            }
        }

        let guessers: Vec<Box<dyn Guesser>> = vec![Box::new(Fixed)];
        let mut rng = nnrng::seeded(1);
        let out = guessers[0].generate_batch(3, &mut rng);
        assert_eq!(out.len(), 3);
        assert_eq!(guessers[0].name(), "fixed");
        assert!(guessers[0].as_latent().is_none());
    }

    #[test]
    fn passflow_exposes_its_latent_space() {
        let mut rng = nnrng::seeded(2);
        let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
        let latent = flow.as_latent().expect("flows have latent access");
        assert_eq!(latent.latent_dim(), flow.dim());

        // Latent round trip matches the flow's own sampling path.
        let z = flow.sample_latent(4, &mut rng);
        let x = latent.latents_to_features(&z);
        let decoded: Vec<String> = (0..4)
            .map(|i| latent.decode_features(x.row_slice(i)))
            .collect();
        assert_eq!(decoded, flow.decode_batch(&x));
    }

    #[test]
    fn state_digest_moves_with_the_weights() {
        let flow_a = PassFlow::new(FlowConfig::tiny(), &mut nnrng::seeded(5)).unwrap();
        let flow_b = PassFlow::new(FlowConfig::tiny(), &mut nnrng::seeded(6)).unwrap();
        assert!(flow_a.state_digest().is_some());
        assert_eq!(flow_a.state_digest(), flow_a.state_digest());
        assert_ne!(flow_a.state_digest(), flow_b.state_digest());
    }

    #[test]
    fn generate_batch_matches_static_sampling() {
        let mut rng_a = nnrng::seeded(3);
        let mut rng_b = nnrng::seeded(3);
        let flow = {
            let mut rng = nnrng::seeded(4);
            PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
        };
        assert_eq!(
            Guesser::generate_batch(&flow, 16, &mut rng_a),
            flow.sample_passwords(16, &mut rng_b)
        );
    }
}
