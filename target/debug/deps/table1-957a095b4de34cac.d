/root/repo/target/debug/deps/table1-957a095b4de34cac.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-957a095b4de34cac.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
