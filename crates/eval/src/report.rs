//! Plain-text table rendering and CSV emission for experiment results.
//!
//! Every table and figure driver in this crate produces a [`Table`], which
//! can be rendered for the terminal (aligned columns, the same rows the
//! paper reports) or exported as CSV for plotting.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A rectangular result table with a title, column headers and string cells.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table caption, e.g. `"Table II: % of matched passwords"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let format_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }

    /// Exports the table as CSV (headers first, comma-separated, quotes
    /// around cells containing commas).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats a fraction as the percentage style used throughout the paper's
/// tables (two decimals).
pub fn format_percent(value: f64) -> String {
    format!("{value:.2}")
}

/// Formats a large count with thousands separators, as in Table III.
pub fn format_count(value: u64) -> String {
    let digits: Vec<char> = value.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, c) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*c);
    }
    out.chars().rev().collect()
}

/// Formats a guess budget as a power of ten when exact (e.g. `10^5`),
/// otherwise as a plain count.
pub fn format_budget(budget: u64) -> String {
    if budget == 0 {
        return "0".to_string();
    }
    let mut value = budget;
    let mut exponent = 0u32;
    while value.is_multiple_of(10) {
        value /= 10;
        exponent += 1;
    }
    if value == 1 && exponent > 0 {
        format!("10^{exponent}")
    } else {
        format_count(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new(
            "Table X: demo",
            vec!["Method".to_string(), "Matches".to_string()],
        );
        t.push_row(vec!["PassFlow".to_string(), "9.92".to_string()]);
        t.push_row(vec!["PassGAN".to_string(), "6.63".to_string()]);
        t
    }

    #[test]
    fn render_aligns_columns_and_contains_all_cells() {
        let rendered = sample_table().render();
        assert!(rendered.contains("Table X: demo"));
        assert!(rendered.contains("Method"));
        assert!(rendered.contains("PassFlow"));
        assert!(rendered.contains("6.63"));
        // Header row and the two data rows all start at the same column.
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn display_matches_render() {
        let t = sample_table();
        assert_eq!(t.to_string(), t.render());
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", vec!["a".to_string(), "b".to_string()]);
        t.push_row(vec!["x,y".to_string(), "he said \"hi\"".to_string()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_length_rejected() {
        let mut t = Table::new("t", vec!["a".to_string()]);
        t.push_row(vec!["1".to_string(), "2".to_string()]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(format_percent(9.916), "9.92");
        assert_eq!(format_count(1_234_567), "1,234,567");
        assert_eq!(format_count(42), "42");
        assert_eq!(format_budget(100_000), "10^5");
        assert_eq!(format_budget(1_000), "10^3");
        assert_eq!(format_budget(2_500), "2,500");
        assert_eq!(format_budget(0), "0");
    }
}
