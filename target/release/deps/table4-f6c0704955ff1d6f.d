/root/repo/target/release/deps/table4-f6c0704955ff1d6f.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-f6c0704955ff1d6f: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
