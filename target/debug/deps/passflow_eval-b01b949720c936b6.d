/root/repo/target/debug/deps/passflow_eval-b01b949720c936b6.d: crates/eval/src/lib.rs crates/eval/src/attack.rs crates/eval/src/figures.rs crates/eval/src/projection.rs crates/eval/src/report.rs crates/eval/src/scale.rs crates/eval/src/tables.rs

/root/repo/target/debug/deps/libpassflow_eval-b01b949720c936b6.rlib: crates/eval/src/lib.rs crates/eval/src/attack.rs crates/eval/src/figures.rs crates/eval/src/projection.rs crates/eval/src/report.rs crates/eval/src/scale.rs crates/eval/src/tables.rs

/root/repo/target/debug/deps/libpassflow_eval-b01b949720c936b6.rmeta: crates/eval/src/lib.rs crates/eval/src/attack.rs crates/eval/src/figures.rs crates/eval/src/projection.rs crates/eval/src/report.rs crates/eval/src/scale.rs crates/eval/src/tables.rs

crates/eval/src/lib.rs:
crates/eval/src/attack.rs:
crates/eval/src/figures.rs:
crates/eval/src/projection.rs:
crates/eval/src/report.rs:
crates/eval/src/scale.rs:
crates/eval/src/tables.rs:
