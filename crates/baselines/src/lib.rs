//! # passflow-baselines
//!
//! Baseline password guessers the paper compares against, implemented on the
//! same substrates as PassFlow so every row of Tables II and III can be
//! regenerated:
//!
//! * [`MarkovModel`] — an order-n character-level Markov model (the classic
//!   JTR-Markov style guesser referenced in Related Work),
//! * [`PcfgModel`] — a Weir-style probabilistic context-free grammar over
//!   structure templates and terminals,
//! * [`PassGan`] — a Wasserstein-GAN password generator standing in for
//!   PassGAN / the improved GAN of Pasquini et al.,
//! * [`Cwae`] — a context autoencoder with moment-matching regularization
//!   standing in for the CWAE of Pasquini et al.
//!
//! All guessers implement [`passflow_core::Guesser`], so the unified
//! [`Attack`](passflow_core::Attack) engine drives them interchangeably —
//! and through the same protocol as `PassFlow` itself. The Markov and PCFG
//! models additionally expose their exact probabilities through
//! [`passflow_core::ProbabilityModel`], plugging them into the strength
//! subsystem (`passflow_core::strength`) as ground-truth-exact meters.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod cwae;
mod gan;
mod guesser;
mod markov;
mod pcfg;

pub use cwae::{Cwae, CwaeConfig};
pub use gan::{PassGan, PassGanConfig};
pub use guesser::Guesser;
#[allow(deprecated)]
pub use guesser::PasswordGuesser;
pub use markov::MarkovModel;
pub use pcfg::PcfgModel;
