//! Loopback load generator for the serving subsystem (`BENCH_PR5.json`).
//!
//! Starts a `passflow-serve` server in-process on an ephemeral loopback
//! port, hammers `POST /v1/score` from many keep-alive client threads, and
//! measures end-to-end request throughput twice: once with micro-batching
//! disabled (`max_batch = 1`, the serial per-request path) and once with
//! the adaptive batcher at `max_batch = 64`. Both runs carry identical
//! HTTP/JSON/syscall overhead, so the ratio isolates what batching buys —
//! scoring through one blocked 64-row GEMM per tick instead of 64 one-row
//! calls. The acceptance bar for PR 5 is batched ≥ 3× serial.
//!
//! ```text
//! cargo run --release -p passflow-bench --bin loadgen -- \
//!     [--quick] [--out BENCH_PR5.json]
//! ```
//!
//! Emits `passflow-bench-v1` rows (schema: DESIGN.md, "Artifact schemas"):
//! `serve/score_loopback/serial`, `serve/score_loopback/batch64`, and a
//! `serve/batched_over_serial` speedup row.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use passflow_core::{FlowConfig, PassFlow, SampleTable};
use passflow_serve::client::{request_with_retry, Connection, RetryPolicy};
use passflow_serve::{serve, BatcherConfig, ModelRegistry, ServedModel, ServerConfig};

/// Concurrent client threads. Each holds one keep-alive connection and
/// sends single-password requests back-to-back, so up to `CLIENTS`
/// requests are in flight — enough to fill 64-row ticks under load.
const CLIENTS: usize = 64;

fn build_registry(quick: bool) -> (Arc<ModelRegistry>, PassFlow) {
    // A production-shaped architecture (18 coupling layers × hidden 128 —
    // the paper's depth at half its width): a model whose per-password
    // scoring cost dominates HTTP/syscall overhead, which is exactly the
    // regime the micro-batcher exists for. On this 1-row-vs-64-row GEMM
    // the pure scoring ratio is ≈4.4×; smaller models (6×48) are so cheap
    // that loopback HTTP overhead swallows the batching win. Untrained
    // weights score exactly like trained ones.
    let mut rng = passflow_nn::rng::seeded(11);
    let flow =
        PassFlow::new(FlowConfig::paper().with_hidden_size(128), &mut rng).expect("valid config");
    let table = SampleTable::build(&flow, if quick { 500 } else { 2_000 }, 7);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(ServedModel::from_flow("default", &flow, 1, Some(table)));
    (registry, flow)
}

/// Runs one measured load: `clients` threads for `duration`, returning
/// (total requests completed, elapsed seconds).
fn hammer(addr: std::net::SocketAddr, clients: usize, duration: Duration) -> (u64, f64) {
    let completed = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicU64::new(0)); // 0 = run, 1 = stop
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|t| {
            let completed = Arc::clone(&completed);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Per-thread jitter seed: a shed burst must not come back
                // as a synchronized stampede.
                let policy = RetryPolicy {
                    seed: t as u64,
                    ..RetryPolicy::default()
                };
                let mut conn =
                    Connection::open(addr, Duration::from_secs(30)).expect("connect to loopback");
                let body = format!("{{\"passwords\":[\"password{t}\"]}}");
                while stop.load(Ordering::Relaxed) == 0 {
                    // Transient sheds (503) and torn keep-alive connections
                    // back off and retry instead of killing the run; only
                    // genuine failures (or a 503 that outlives every
                    // retry) abort.
                    let response = match conn.request("POST", "/v1/score", Some(&body)) {
                        Ok(r) if r.status != 503 => r,
                        _ => {
                            let r =
                                request_with_retry(addr, "POST", "/v1/score", Some(&body), &policy)
                                    .expect("score request after retries");
                            conn = Connection::open(addr, Duration::from_secs(30))
                                .expect("reconnect to loopback");
                            r
                        }
                    };
                    assert_eq!(response.status, 200, "{}", response.text());
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(1, Ordering::Relaxed);
    for thread in threads {
        thread.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    (completed.load(Ordering::Relaxed), elapsed)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());
    let measure = Duration::from_secs(if quick { 2 } else { 6 });
    let warmup = Duration::from_millis(if quick { 200 } else { 1_000 });

    let (registry, flow) = build_registry(quick);

    let mut rows: Vec<(String, u64, f64)> = Vec::new(); // (name, requests, seconds)
    let mut throughputs: Vec<f64> = Vec::new();

    for (label, max_batch) in [("serial", 1usize), ("batch64", 64usize)] {
        let config = ServerConfig {
            batcher: BatcherConfig {
                max_batch,
                max_wait: Duration::from_millis(2),
                queue_capacity: 1024,
                ..BatcherConfig::default()
            },
            max_connections: CLIENTS + 8,
            ..ServerConfig::default()
        };
        let server = serve(config, Arc::clone(&registry)).expect("bind loopback");
        let addr = server.addr();

        // Correctness spot check before measuring: the served score equals
        // direct scoring, bit for bit, through whichever batch shape.
        let response = request_with_retry(
            addr,
            "POST",
            "/v1/score",
            Some("{\"passwords\":[\"jimmy91\"]}"),
            &RetryPolicy::default(),
        )
        .expect("probe request");
        let expected = passflow_core::ProbabilityModel::password_log_prob(&flow, "jimmy91")
            .expect("encodable probe");
        let bits_text = response
            .text()
            .split("\"log_prob_bits\":\"")
            .nth(1)
            .map(|rest| rest[..16].to_string())
            .expect("log_prob_bits in response");
        assert_eq!(
            u64::from_str_radix(&bits_text, 16).unwrap(),
            expected.to_bits(),
            "served score must equal direct scoring"
        );

        let _ = hammer(addr, CLIENTS, warmup);
        let (requests, seconds) = hammer(addr, CLIENTS, measure);
        server.shutdown();
        server.join();

        let throughput = requests as f64 / seconds;
        println!("serve/score_loopback/{label}: {requests} requests in {seconds:.2}s = {throughput:.0} req/s");
        rows.push((format!("serve/score_loopback/{label}"), requests, seconds));
        throughputs.push(throughput);
    }

    let speedup = throughputs[1] / throughputs[0];
    println!("batched_over_serial: {speedup:.2}×");

    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut json = format!(
        "{{\n  \"schema\": \"passflow-bench-v1\",\n  \"host_cpus\": {host_cpus},\n  \"results\": {{\n"
    );
    for (name, requests, seconds) in &rows {
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"seconds_per_iter\": {:.9}, \"elements_per_second\": {:.0} }},",
            name,
            seconds / (*requests as f64).max(1.0),
            *requests as f64 / seconds
        );
    }
    let _ = writeln!(
        json,
        "    \"serve/batched_over_serial\": {{ \"seconds_per_iter\": 0.000000000, \"elements_per_second\": {speedup:.2} }}"
    );
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("writing benchmark JSON");
    println!("{json}");
    println!("wrote {out_path}");

    // The PR 5 acceptance bar; --quick CI runs still assert a clear win.
    let bar = if quick { 2.0 } else { 3.0 };
    assert!(
        speedup >= bar,
        "batched serving must be ≥ {bar}× serial (measured {speedup:.2}×)"
    );
}
