//! Strength-meter evaluation: per-dataset guess-number distributions and
//! model-vs-model agreement tables.
//!
//! Where `tables`/`figures` answer the paper's *attacker* question (how
//! much of a test set falls under a guess budget), this module answers the
//! *defender* question the same models enable: how strong is each password,
//! measured as its estimated guess number? Both tables are built on the
//! core [`SampleTable`] Monte-Carlo estimator (DESIGN.md, "Strength
//! estimation"):
//!
//! * [`guess_number_distribution`] — per model × dataset percentiles of the
//!   log₂ guess number, i.e. the shape of each dataset's strength profile,
//! * [`model_agreement`] — pairwise agreement between models' strength
//!   verdicts (Pearson correlation and mean absolute gap of log₂ guess
//!   numbers), quantifying how transferable one model's meter is to
//!   another's attack order.

use passflow_core::{score_wordlist, PasswordStrength, ProbabilityModel, SampleTable};
use passflow_store::DigestStore;

use crate::report::Table;

/// A model paired with the Monte-Carlo sample table built from it (see
/// [`sample_tables`]).
pub type ModelEntry<'a> = (&'a dyn ProbabilityModel, &'a SampleTable);

/// Builds one [`SampleTable`] of `samples` passwords per model, all from
/// the same seed, sampling on `shards` worker threads (results are
/// shard-invariant).
pub fn sample_tables(
    models: &[&dyn ProbabilityModel],
    samples: usize,
    seed: u64,
    shards: usize,
) -> Vec<SampleTable> {
    models
        .iter()
        .map(|model| SampleTable::build_sharded(*model, samples, seed, shards))
        .collect()
}

/// Percentile of an ascending-sorted slice (nearest-rank interpolation).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Scores `dataset` with a model and returns the ascending log₂ guess
/// numbers plus the count of unscorable passwords.
fn dataset_bits(entry: ModelEntry<'_>, dataset: &[String], shards: usize) -> (Vec<f64>, usize) {
    let scored = score_wordlist(entry.0, entry.1, dataset, shards);
    let mut bits: Vec<f64> = scored
        .iter()
        .filter_map(|s| s.estimate.map(|e| e.log2_guess_number))
        .collect();
    let unscored = scored.len() - bits.len();
    bits.sort_by(f64::total_cmp);
    (bits, unscored)
}

/// Per-dataset guess-number distributions: one row per model × dataset with
/// the p10/p25/p50/p75/p90 percentiles of the estimated log₂ guess number
/// and the fraction of passwords the model could not score.
///
/// When a breach [`DigestStore`] is supplied, each row also reports the
/// fraction of the dataset found in it ("Breached %") — strength estimates
/// for already-breached passwords are moot (an attacker replays the breach
/// before guessing), so the column contextualizes the percentiles.
///
/// Reading the rows: the median ("p50 bits") is the dataset's typical
/// strength under that model's attack order; the p10–p90 spread shows how
/// unevenly strength is distributed.
pub fn guess_number_distribution(
    models: &[ModelEntry<'_>],
    datasets: &[(&str, &[String])],
    shards: usize,
    digest: Option<&DigestStore>,
) -> Table {
    let mut header = vec![
        "Model".to_string(),
        "Dataset".to_string(),
        "Passwords".to_string(),
        "p10".to_string(),
        "p25".to_string(),
        "p50".to_string(),
        "p75".to_string(),
        "p90".to_string(),
        "Unscored %".to_string(),
    ];
    if digest.is_some() {
        header.push("Breached %".to_string());
    }
    let mut table = Table::new("Strength: guess-number distribution (log2 guesses)", header);
    for entry in models {
        for (dataset_name, dataset) in datasets {
            let (bits, unscored) = dataset_bits(*entry, dataset, shards);
            let row_percentiles: Vec<String> = [10.0, 25.0, 50.0, 75.0, 90.0]
                .iter()
                .map(|&p| format!("{:.1}", percentile(&bits, p)))
                .collect();
            let mut row = vec![
                entry.0.name().to_string(),
                (*dataset_name).to_string(),
                dataset.len().to_string(),
            ];
            row.extend(row_percentiles);
            row.push(format!(
                "{:.2}",
                100.0 * unscored as f64 / dataset.len().max(1) as f64
            ));
            if let Some(store) = digest {
                let breached = dataset
                    .iter()
                    .filter(|pw| matches!(store.contains_password(pw), Ok(Some(_))))
                    .count();
                row.push(format!(
                    "{:.2}",
                    100.0 * breached as f64 / dataset.len().max(1) as f64
                ));
            }
            table.push_row(row);
        }
    }
    table
}

/// Model-vs-model agreement on password strength: for every model pair, the
/// Pearson correlation and the mean absolute gap of the log₂ guess numbers
/// over the passwords both models can score.
///
/// High correlation means the models would crack the dataset in a similar
/// order — a strength verdict from one transfers to an attacker running the
/// other; a large mean gap with high correlation means they agree on
/// *ordering* but not on absolute cost.
pub fn model_agreement(models: &[ModelEntry<'_>], passwords: &[String], shards: usize) -> Table {
    let mut table = Table::new(
        "Strength: model-vs-model agreement",
        vec![
            "Model A".to_string(),
            "Model B".to_string(),
            "Common".to_string(),
            "Pearson r".to_string(),
            "Mean |Δ bits|".to_string(),
        ],
    );
    let scored: Vec<Vec<PasswordStrength>> = models
        .iter()
        .map(|entry| score_wordlist(entry.0, entry.1, passwords, shards))
        .collect();
    for a in 0..models.len() {
        for b in (a + 1)..models.len() {
            let pairs: Vec<(f64, f64)> = scored[a]
                .iter()
                .zip(scored[b].iter())
                .filter_map(|(x, y)| match (x.estimate, y.estimate) {
                    (Some(ex), Some(ey)) => Some((ex.log2_guess_number, ey.log2_guess_number)),
                    _ => None,
                })
                .collect();
            let (r, gap) = correlation_and_gap(&pairs);
            table.push_row(vec![
                models[a].0.name().to_string(),
                models[b].0.name().to_string(),
                pairs.len().to_string(),
                format!("{r:.3}"),
                format!("{gap:.2}"),
            ]);
        }
    }
    table
}

/// Pearson correlation and mean absolute difference of paired values.
fn correlation_and_gap(pairs: &[(f64, f64)]) -> (f64, f64) {
    if pairs.len() < 2 {
        return (f64::NAN, f64::NAN);
    }
    let n = pairs.len() as f64;
    let (mut sx, mut sy) = (0.0, 0.0);
    for (x, y) in pairs {
        sx += x;
        sy += y;
    }
    let (mx, my) = (sx / n, sy / n);
    let (mut cov, mut vx, mut vy, mut gap) = (0.0, 0.0, 0.0, 0.0);
    for (x, y) in pairs {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
        gap += (x - y).abs();
    }
    let denom = (vx * vy).sqrt();
    let r = if denom > 0.0 { cov / denom } else { f64::NAN };
    (r, gap / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use passflow_baselines::{MarkovModel, PcfgModel};
    use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};

    fn corpus(n: usize) -> Vec<String> {
        SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(n))
            .generate(71)
            .into_passwords()
    }

    #[test]
    fn distribution_table_has_one_row_per_model_dataset_pair() {
        let train = corpus(2_000);
        let markov = MarkovModel::train(&train, 2, 10);
        let pcfg = PcfgModel::train(&train, 10);
        let tables = sample_tables(&[&markov, &pcfg], 1_000, 5, 2);
        let entries: Vec<ModelEntry<'_>> = vec![(&markov, &tables[0]), (&pcfg, &tables[1])];
        let eval_set = corpus(300);
        let datasets: Vec<(&str, &[String])> = vec![("train", &train[..200]), ("eval", &eval_set)];
        let table = guess_number_distribution(&entries, &datasets, 2, None);
        assert_eq!(table.num_rows(), 4);
        assert_eq!(
            table.headers.len(),
            9,
            "no breached column without a digest"
        );
        // Percentiles are ascending within each row.
        for row in &table.rows {
            let bits: Vec<f64> = row[3..8].iter().map(|c| c.parse().unwrap()).collect();
            for pair in bits.windows(2) {
                assert!(
                    pair[0] <= pair[1] + 1e-9,
                    "percentiles not ascending: {row:?}"
                );
            }
        }
    }

    #[test]
    fn distribution_breached_column_matches_store_contents() {
        use passflow_store::{DigestConfig, DigestStore, DigestStoreBuilder};

        let train = corpus(1_000);
        let markov = MarkovModel::train(&train, 2, 10);
        let table_m = SampleTable::build(&markov, 500, 5);
        let entries: Vec<ModelEntry<'_>> = vec![(&markov, &table_m)];
        let eval_set = corpus(200);

        // Breach exactly the first half of the eval set.
        let path =
            std::env::temp_dir().join(format!("pfdigest-strength-{}.pfd", std::process::id()));
        let mut builder = DigestStoreBuilder::new(DigestConfig::default());
        for pw in &eval_set[..100] {
            builder.add_password(pw).unwrap();
        }
        builder.finish(&path).unwrap();
        let store = DigestStore::open(&path).unwrap();

        let datasets: Vec<(&str, &[String])> = vec![("eval", &eval_set)];
        let table = guess_number_distribution(&entries, &datasets, 2, Some(&store));
        std::fs::remove_file(&path).unwrap();

        assert_eq!(table.headers.last().unwrap(), "Breached %");
        let breached: f64 = table.rows[0].last().unwrap().parse().unwrap();
        // Exactly half the dataset was archived (synthetic passwords can
        // collide between halves, so allow a small overshoot, never under).
        assert!(
            (50.0..=60.0).contains(&breached),
            "expected ~50% breached, got {breached}"
        );
    }

    #[test]
    fn agreement_table_correlates_a_model_with_itself() {
        let train = corpus(2_000);
        let markov = MarkovModel::train(&train, 2, 10);
        let table_a = SampleTable::build(&markov, 1_000, 5);
        let table_b = SampleTable::build(&markov, 1_000, 6);
        let entries: Vec<ModelEntry<'_>> = vec![(&markov, &table_a), (&markov, &table_b)];
        let eval_set = corpus(300);
        let table = model_agreement(&entries, &eval_set, 2);
        assert_eq!(table.num_rows(), 1);
        let r: f64 = table.rows[0][3].parse().unwrap();
        assert!(r > 0.99, "same model must agree with itself, got r={r}");
    }

    #[test]
    fn percentile_handles_edges() {
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[1.0], 90.0), 1.0);
        let v = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
    }
}
