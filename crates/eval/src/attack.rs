//! Guessing-attack evaluation, unified over every guesser.
//!
//! Historically this module carried a second copy of the evaluation protocol
//! because `passflow_core::run_attack` was flow-only. Both paths now run
//! through [`passflow_core::Attack`]; [`evaluate_guesser`] remains as a thin
//! deprecated wrapper so pre-engine callers keep compiling.

use std::collections::HashSet;

use passflow_core::{Attack, CheckpointReport, Guesser};

/// Runs a static-sampling guessing attack with any guesser and reports
/// statistics at each checkpoint budget (ascending). The final budget is
/// always included.
#[deprecated(
    since = "0.1.0",
    note = "use the unified engine: `passflow_core::Attack::new(targets).checkpoints(budgets).run(guesser)`"
)]
pub fn evaluate_guesser(
    guesser: &dyn Guesser,
    targets: &HashSet<String>,
    budgets: &[u64],
    batch_size: usize,
    seed: u64,
) -> Vec<CheckpointReport> {
    let total = budgets.iter().copied().max().unwrap_or(0);
    if total == 0 {
        return Vec::new();
    }
    Attack::new(targets)
        .budget(total)
        .batch_size(batch_size)
        .checkpoints(budgets.to_vec())
        .seed(seed)
        .run(guesser)
        .expect("static sampling needs no latent access")
        .checkpoints
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use rand::RngCore;

    /// A guesser that cycles through a fixed list.
    struct Cycler(Vec<String>);

    impl Guesser for Cycler {
        fn name(&self) -> &str {
            "cycler"
        }
        fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
            (0..n)
                .map(|_| self.0[(rng.next_u32() as usize) % self.0.len()].clone())
                .collect()
        }
    }

    fn targets() -> HashSet<String> {
        ["hit1", "hit2", "hit3", "neverguessed"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn reports_land_on_requested_budgets() {
        let guesser = Cycler(vec![
            "hit1".into(),
            "miss1".into(),
            "hit2".into(),
            "miss2".into(),
        ]);
        let reports = evaluate_guesser(&guesser, &targets(), &[100, 400], 64, 1);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].guesses, 100);
        assert_eq!(reports[1].guesses, 400);
        // With only 4 distinct guesses, unique saturates at 4 and matched at 2.
        assert!(reports[1].unique <= 4);
        assert_eq!(reports[1].matched, 2);
        assert!((reports[1].matched_percent - 50.0).abs() < 1e-9);
        // Monotone in the budget.
        assert!(reports[1].unique >= reports[0].unique);
        assert!(reports[1].matched >= reports[0].matched);
    }

    #[test]
    fn wrapper_agrees_with_the_engine() {
        let guesser = Cycler(vec!["hit1".into(), "miss1".into(), "hit3".into()]);
        let targets = targets();
        let wrapped = evaluate_guesser(&guesser, &targets, &[50, 200], 32, 9);
        let engine = Attack::new(&targets)
            .budget(200)
            .batch_size(32)
            .checkpoints(vec![50, 200])
            .seed(9)
            .run(&guesser)
            .unwrap();
        assert_eq!(wrapped, engine.checkpoints);
    }

    #[test]
    fn empty_budgets_and_zero_budgets_are_handled() {
        let guesser = Cycler(vec!["x".into()]);
        assert!(evaluate_guesser(&guesser, &targets(), &[], 64, 1).is_empty());
        assert!(evaluate_guesser(&guesser, &targets(), &[0], 64, 1).is_empty());
    }

    #[test]
    fn empty_target_set_gives_zero_percent() {
        let guesser = Cycler(vec!["x".into()]);
        let reports = evaluate_guesser(&guesser, &HashSet::new(), &[50], 16, 1);
        assert_eq!(reports[0].matched, 0);
        assert_eq!(reports[0].matched_percent, 0.0);
    }

    #[test]
    fn unique_never_exceeds_guesses() {
        let guesser = Cycler(vec!["a".into(), "b".into(), "c".into()]);
        let reports = evaluate_guesser(&guesser, &targets(), &[10, 20, 30], 7, 3);
        for r in &reports {
            assert!(r.unique <= r.guesses);
        }
    }
}
