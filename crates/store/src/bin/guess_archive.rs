//! `guess_archive` — build, merge, query, verify and extract `PFGUESS v1`
//! sorted guess archives.
//!
//! ```text
//! guess_archive build   --out run.pfg [--no-counts] [--block-records 1024]
//!                       [--memory-records N] [wordlist…]   # stdin when no files
//! guess_archive merge   --out merged.pfg shard1.pfg shard2.pfg …
//! guess_archive query   --archive run.pfg --guess PASSWORD
//! guess_archive extract --archive run.pfg --prefix STR     # (guess, count) lines
//! guess_archive verify  --archive run.pfg
//! ```
//!
//! Exit status is non-zero on any failure, so CI can drive the whole
//! attack → checkpoint → merge → verify pipeline from a shell script.

use std::io::BufReader;
use std::process::ExitCode;

use passflow_store::{merge_archives, GuessArchive, GuessArchiveBuilder, GuessConfig};

fn usage() -> String {
    "usage: guess_archive <build|merge|query|extract|verify> [options]\n\
     \x20 build   --out FILE [--no-counts] [--block-records N] [--memory-records N] \
     [wordlist…]\n\
     \x20 merge   --out FILE shard.pfg…\n\
     \x20 query   --archive FILE --guess PASSWORD\n\
     \x20 extract --archive FILE --prefix STR\n\
     \x20 verify  --archive FILE"
        .to_string()
}

/// Pulls `--flag value` out of `args`, removing both tokens.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(value))
}

/// Pulls a bare `--flag` out of `args`, removing it.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_usize(value: Option<String>, flag: &str, default: usize) -> Result<usize, String> {
    match value {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{flag} must be a number")),
    }
}

fn build(mut args: Vec<String>) -> Result<(), String> {
    let out = take_value(&mut args, "--out")?.ok_or("build needs --out")?;
    let config = GuessConfig {
        counts: !take_flag(&mut args, "--no-counts"),
        records_per_block: parse_usize(
            take_value(&mut args, "--block-records")?,
            "--block-records",
            1024,
        )?,
    };
    let memory = parse_usize(
        take_value(&mut args, "--memory-records")?,
        "--memory-records",
        passflow_store::DEFAULT_MEMORY_RECORDS,
    )?;
    let mut builder = GuessArchiveBuilder::new(config).with_memory_records(memory);
    let mut total = 0u64;
    if args.is_empty() {
        total += builder
            .add_wordlist(std::io::stdin().lock())
            .map_err(|e| e.to_string())?;
    } else {
        for path in &args {
            let file = std::fs::File::open(path).map_err(|e| format!("opening {path:?}: {e}"))?;
            total += builder
                .add_wordlist(BufReader::new(file))
                .map_err(|e| format!("{path}: {e}"))?;
        }
    }
    let stats = builder.finish(&out).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {out}: {} unique guesses from {total} lines, {} blocks, {} bytes",
        stats.record_count, stats.block_count, stats.bytes
    );
    Ok(())
}

fn merge(mut args: Vec<String>) -> Result<(), String> {
    let out = take_value(&mut args, "--out")?.ok_or("merge needs --out")?;
    if args.is_empty() {
        return Err("merge needs at least one input archive".to_string());
    }
    let stats = merge_archives(&args, &out).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {out}: {} unique guesses from {} shards, {} blocks, {} bytes",
        stats.record_count,
        args.len(),
        stats.block_count,
        stats.bytes
    );
    Ok(())
}

fn query(mut args: Vec<String>) -> Result<(), String> {
    let path = take_value(&mut args, "--archive")?.ok_or("query needs --archive")?;
    let guess = take_value(&mut args, "--guess")?.ok_or("query needs --guess")?;
    let archive = GuessArchive::open(&path).map_err(|e| format!("{path}: {e}"))?;
    match archive.contains(&guess).map_err(|e| e.to_string())? {
        Some(count) => println!("PRESENT {guess} count={count}"),
        None => println!("ABSENT {guess}"),
    }
    Ok(())
}

fn extract(mut args: Vec<String>) -> Result<(), String> {
    let path = take_value(&mut args, "--archive")?.ok_or("extract needs --archive")?;
    let prefix = take_value(&mut args, "--prefix")?.ok_or("extract needs --prefix")?;
    let archive = GuessArchive::open(&path).map_err(|e| format!("{path}: {e}"))?;
    let entries = archive.extract_prefix(&prefix).map_err(|e| e.to_string())?;
    for (guess, count) in &entries {
        println!("{guess}:{count}");
    }
    eprintln!("{} guesses under prefix {prefix:?}", entries.len());
    Ok(())
}

fn verify(mut args: Vec<String>) -> Result<(), String> {
    let path = take_value(&mut args, "--archive")?.ok_or("verify needs --archive")?;
    let archive = GuessArchive::open(&path).map_err(|e| format!("{path}: {e}"))?;
    let report = archive.verify().map_err(|e| format!("{path}: {e}"))?;
    println!(
        "ok: {} records in {} blocks, {} bytes, checksum {:016x} ({:?})",
        report.record_count,
        report.block_count,
        archive.file_len(),
        report.checksum,
        archive.config(),
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err(usage());
    }
    let command = args.remove(0);
    match command.as_str() {
        "build" => build(args),
        "merge" => merge(args),
        "query" => query(args),
        "extract" => extract(args),
        "verify" => verify(args),
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("guess_archive: {message}");
            ExitCode::FAILURE
        }
    }
}
