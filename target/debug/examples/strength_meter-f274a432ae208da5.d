/root/repo/target/debug/examples/strength_meter-f274a432ae208da5.d: examples/strength_meter.rs Cargo.toml

/root/repo/target/debug/examples/libstrength_meter-f274a432ae208da5.rmeta: examples/strength_meter.rs Cargo.toml

examples/strength_meter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
