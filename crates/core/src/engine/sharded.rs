//! A hash-sharded string set used for guess deduplication.

use std::collections::HashSet;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};

/// Number of internal shards. A power of two so the shard index is a mask.
const NUM_SHARDS: usize = 16;

/// A set of generated guesses, split into `NUM_SHARDS` (16) independent
/// hash sets keyed by the guess's hash.
///
/// The guessing attack inserts hundreds of millions of strings into this set
/// at paper scale; sharding keeps rehash pauses short (each shard rehashes
/// independently at 1/16 of the size) and gives shard-local membership
/// queries an embarrassingly parallel layout for the engine's worker
/// threads, which only ever read the set while generation is in flight.
///
/// Shard selection is deterministic (a fixed-seed SipHash of the string), so
/// unique counts never depend on thread scheduling.
#[derive(Clone, Debug, Default)]
pub struct ShardedSet {
    shards: Vec<HashSet<String>>,
    hasher: BuildHasherDefault<DefaultHasher>,
}

impl ShardedSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ShardedSet {
            shards: (0..NUM_SHARDS).map(|_| HashSet::new()).collect(),
            hasher: BuildHasherDefault::default(),
        }
    }

    fn shard_of(&self, value: &str) -> usize {
        (self.hasher.hash_one(value) as usize) & (NUM_SHARDS - 1)
    }

    /// Inserts `value`, returning `true` if it was not present before.
    pub fn insert(&mut self, value: String) -> bool {
        let shard = self.shard_of(&value);
        self.shards[shard].insert(value)
    }

    /// Returns `true` if `value` is in the set.
    pub fn contains(&self, value: &str) -> bool {
        self.shards[self.shard_of(value)].contains(value)
    }

    /// Total number of distinct values across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashSet::len).sum()
    }

    /// Returns `true` if the set holds no values.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HashSet::is_empty)
    }

    /// Iterates over all values, shard by shard (no particular order).
    pub fn iter(&self) -> impl Iterator<Item = &String> {
        self.shards.iter().flat_map(HashSet::iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len_round_trip() {
        let mut set = ShardedSet::new();
        assert!(set.is_empty());
        assert!(set.insert("123456".to_string()));
        assert!(!set.insert("123456".to_string()));
        assert!(set.insert("hunter2".to_string()));
        assert!(set.contains("123456"));
        assert!(!set.contains("letmein"));
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn values_spread_across_shards() {
        let mut set = ShardedSet::new();
        for i in 0..10_000 {
            set.insert(format!("password{i}"));
        }
        assert_eq!(set.len(), 10_000);
        let occupied = set.shards.iter().filter(|s| !s.is_empty()).count();
        assert_eq!(occupied, NUM_SHARDS, "hashing should reach every shard");
        // No shard hogs the distribution (a loose balance bound).
        let max = set.shards.iter().map(HashSet::len).max().unwrap();
        assert!(max < 2 * 10_000 / NUM_SHARDS, "worst shard holds {max}");
    }

    #[test]
    fn iter_yields_every_value_once() {
        let mut set = ShardedSet::new();
        for i in 0..100 {
            set.insert(i.to_string());
        }
        let mut values: Vec<u32> = set.iter().map(|v| v.parse().unwrap()).collect();
        values.sort_unstable();
        assert_eq!(values, (0..100).collect::<Vec<_>>());
    }
}
