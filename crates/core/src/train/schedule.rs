//! Learning-rate schedules.
//!
//! A [`Schedule`] maps an optimizer-step ordinal to a multiplicative factor
//! on the base learning rate. Schedules are pure functions of the step
//! index — never of wall clock or total-epoch counts — which is what makes
//! checkpoint resume bit-exact: a resumed run replays the same factors
//! because it replays the same step ordinals.

use serde::{Deserialize, Serialize};

use crate::error::{FlowError, Result};

/// A learning-rate schedule, evaluated per optimizer step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// The base learning rate throughout (the paper's setup).
    #[default]
    Constant,
    /// Multiply the rate by `gamma` every `every` optimizer steps.
    Step {
        /// Number of optimizer steps between decays.
        every: u64,
        /// Multiplicative decay factor in `(0, 1]`.
        gamma: f32,
    },
    /// Linear warmup over `warmup` steps, then a half-cosine decay over
    /// `period` steps from the base rate down to `min_factor` × base, where
    /// it stays for the remainder of the run.
    WarmupCosine {
        /// Number of warmup steps (0 disables warmup).
        warmup: u64,
        /// Length of the cosine decay, in optimizer steps after warmup.
        period: u64,
        /// Floor of the decay as a fraction of the base rate, in `(0, 1]`.
        min_factor: f32,
    },
}

impl Schedule {
    /// The learning-rate factor for the 0-based optimizer step `step`.
    pub fn factor(&self, step: u64) -> f32 {
        match *self {
            Schedule::Constant => 1.0,
            Schedule::Step { every, gamma } => gamma.powi((step / every.max(1)) as i32),
            Schedule::WarmupCosine {
                warmup,
                period,
                min_factor,
            } => {
                if step < warmup {
                    (step + 1) as f32 / warmup as f32
                } else {
                    let t = ((step - warmup) as f32 / period.max(1) as f32).min(1.0);
                    let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                    min_factor + (1.0 - min_factor) * cos
                }
            }
        }
    }

    /// Validates the schedule's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] on a zero decay interval/period,
    /// or a factor outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        match *self {
            Schedule::Constant => Ok(()),
            Schedule::Step { every, gamma } => {
                if every == 0 {
                    return Err(FlowError::InvalidConfig(
                        "step schedule interval must be positive".into(),
                    ));
                }
                if !(gamma > 0.0 && gamma <= 1.0) {
                    return Err(FlowError::InvalidConfig(
                        "step schedule gamma must be in (0, 1]".into(),
                    ));
                }
                Ok(())
            }
            Schedule::WarmupCosine {
                period, min_factor, ..
            } => {
                if period == 0 {
                    return Err(FlowError::InvalidConfig(
                        "cosine period must be positive".into(),
                    ));
                }
                if !(min_factor > 0.0 && min_factor <= 1.0) {
                    return Err(FlowError::InvalidConfig(
                        "cosine min_factor must be in (0, 1]".into(),
                    ));
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one_everywhere() {
        for step in [0, 1, 10_000] {
            assert_eq!(Schedule::Constant.factor(step), 1.0);
        }
    }

    #[test]
    fn step_decays_at_interval_boundaries() {
        let s = Schedule::Step {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn warmup_rises_then_cosine_falls_to_floor() {
        let s = Schedule::WarmupCosine {
            warmup: 4,
            period: 8,
            min_factor: 0.1,
        };
        // Warmup: strictly increasing, hits 1.0 at the last warmup step.
        assert!((s.factor(0) - 0.25).abs() < 1e-6);
        assert!(s.factor(1) > s.factor(0));
        assert!((s.factor(3) - 1.0).abs() < 1e-6);
        // Decay: non-increasing down to the floor, then flat.
        let mut prev = s.factor(4);
        for step in 5..12 {
            let f = s.factor(step);
            assert!(f <= prev + 1e-6, "factor rose at step {step}");
            prev = f;
        }
        assert!((s.factor(12) - 0.1).abs() < 1e-6);
        assert!((s.factor(500) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn zero_warmup_starts_at_full_rate() {
        let s = Schedule::WarmupCosine {
            warmup: 0,
            period: 10,
            min_factor: 0.5,
        };
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        assert!(Schedule::Constant.validate().is_ok());
        assert!(Schedule::Step {
            every: 0,
            gamma: 0.5
        }
        .validate()
        .is_err());
        assert!(Schedule::Step {
            every: 5,
            gamma: 1.5
        }
        .validate()
        .is_err());
        assert!(Schedule::WarmupCosine {
            warmup: 0,
            period: 0,
            min_factor: 0.5
        }
        .validate()
        .is_err());
        assert!(Schedule::WarmupCosine {
            warmup: 0,
            period: 10,
            min_factor: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn factor_is_a_pure_function_of_step() {
        let s = Schedule::WarmupCosine {
            warmup: 3,
            period: 20,
            min_factor: 0.2,
        };
        for step in 0..40 {
            assert_eq!(s.factor(step).to_bits(), s.factor(step).to_bits());
        }
    }
}
