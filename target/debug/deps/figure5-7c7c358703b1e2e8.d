/root/repo/target/debug/deps/figure5-7c7c358703b1e2e8.d: crates/bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-7c7c358703b1e2e8: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
