//! Trace determinism suite: `PFTRACE v1` artifacts round-trip
//! byte-identically, seeded synthesis is reproducible, and replaying the
//! same trace against different lane counts yields the **same outcomes**
//! — same statuses, same exact score bits, same breach verdicts — for
//! every record.
//!
//! That last property is what makes the trace format a correctness tool,
//! not just a load tool: a whole recorded *workload* becomes a fixture
//! against which "sharding changed nothing observable" is one `assert_eq`.

use std::sync::Arc;
use std::time::Duration;

use passflow::serve::trace::{replay, Endpoint, Trace, TraceRecord, TraceSynthProfile};
use passflow::serve::{serve, BatcherConfig, ModelRegistry, ServedModel, ServerConfig};
use passflow::{DigestConfig, DigestStoreBuilder, FlowConfig, PassFlow};

fn tiny_flow(seed: u64) -> PassFlow {
    let mut rng = passflow::nn::rng::seeded(seed);
    PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
}

/// A digest store fixture so `/v1/screen` records get real verdicts.
fn digest_fixture(tag: &str) -> (Arc<passflow::DigestStore>, std::path::PathBuf) {
    let path = std::env::temp_dir().join(format!("pftrace-test-{tag}-{}.pfd", std::process::id()));
    let mut builder = DigestStoreBuilder::new(DigestConfig::default());
    for pw in ["password1", "dragon", "letmein"] {
        builder.add_password(pw).unwrap();
    }
    builder.finish(&path).unwrap();
    (Arc::new(passflow::DigestStore::open(&path).unwrap()), path)
}

#[test]
fn pftrace_round_trips_byte_identically_through_a_file() {
    let trace = Trace::synth(0xFEED, 400, &TraceSynthProfile::default());
    let path =
        std::env::temp_dir().join(format!("pftrace-roundtrip-{}.pftrace", std::process::id()));
    trace.write(&path).expect("write trace");
    let loaded = Trace::load(&path).expect("load trace");
    assert_eq!(loaded, trace, "record -> write -> read must be lossless");
    assert_eq!(
        loaded.to_bytes(),
        trace.to_bytes(),
        "re-serialization must be byte-identical"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn seeded_synth_is_reproducible_and_covers_the_endpoint_mix() {
    let profile = TraceSynthProfile::default();
    let a = Trace::synth(2026, 1_000, &profile);
    let b = Trace::synth(2026, 1_000, &profile);
    assert_eq!(a, b, "same seed, same trace — on every run");
    assert_ne!(
        a,
        Trace::synth(2027, 1_000, &profile),
        "a different seed must produce a different workload"
    );

    // The mix holds all three endpoints and a heavy batch tail.
    let screens = a
        .records
        .iter()
        .filter(|r| r.endpoint == Endpoint::Screen)
        .count();
    let logprobs = a
        .records
        .iter()
        .filter(|r| r.endpoint == Endpoint::LogProb)
        .count();
    assert!(screens > 0, "screen endpoint missing from the mix");
    assert!(logprobs > 0, "logprob endpoint missing from the mix");
    assert!(
        a.records.iter().any(|r| r.batch > 4),
        "heavy-tailed batches must occasionally exceed a handful of rows"
    );
    assert!(
        a.records.iter().filter(|r| r.batch == 1).count() > screens,
        "singleton requests must dominate the tail"
    );

    // Password derivation is part of the determinism contract.
    let pw_a: Vec<Vec<String>> = a
        .records
        .iter()
        .take(50)
        .map(TraceRecord::passwords)
        .collect();
    let pw_b: Vec<Vec<String>> = b
        .records
        .iter()
        .take(50)
        .map(TraceRecord::passwords)
        .collect();
    assert_eq!(pw_a, pw_b);
}

#[test]
fn replaying_one_trace_across_lane_counts_gives_identical_outcomes() {
    // Small but real: ~120 records across all three endpoints, replayed by
    // 8 concurrent clients against lanes=1 and lanes=2 servers built from
    // the same model seed. Every record's observable outcome — status,
    // exact score bits per password, breach verdicts via status/bits of
    // /v1/screen — must match index-for-index.
    let trace = Trace::synth(
        7,
        120,
        &TraceSynthProfile {
            mean_gap_us: 100,
            ..TraceSynthProfile::default()
        },
    );
    let (digest, path) = digest_fixture("xlane");

    let mut runs = Vec::new();
    for lanes in [1usize, 2] {
        let flow = tiny_flow(90);
        let registry = Arc::new(ModelRegistry::new());
        registry.insert(ServedModel::from_flow("default", &flow, 1, None));
        let server = serve(
            ServerConfig {
                batcher: BatcherConfig {
                    lanes,
                    max_batch: 32,
                    max_wait: Duration::from_millis(2),
                    queue_capacity: 1024,
                    ..BatcherConfig::default()
                },
                digest: Some(Arc::clone(&digest)),
                read_timeout: Duration::from_secs(10),
                ..ServerConfig::default()
            },
            registry,
        )
        .expect("bind on loopback");
        let outcomes = replay(server.addr(), &trace, 8).expect("replay");
        server.shutdown();
        server.join();

        assert_eq!(outcomes.len(), trace.records.len(), "lanes={lanes}");
        assert!(
            outcomes.iter().all(|o| o.status == 200),
            "lanes={lanes}: every replayed request must succeed"
        );
        runs.push(outcomes);
    }

    let (single, sharded) = (&runs[0], &runs[1]);
    for (a, b) in single.iter().zip(sharded.iter()) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.status, b.status, "record {} status drifted", a.index);
        assert_eq!(
            a.bits, b.bits,
            "record {}: score bits must be identical at any lane count",
            a.index
        );
        assert_eq!(
            a.verdicts, b.verdicts,
            "record {}: breach verdicts must be identical at any lane count",
            a.index
        );
    }
    let _ = std::fs::remove_file(path);
}
