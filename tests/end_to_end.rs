//! End-to-end integration tests spanning the whole workspace: corpus
//! generation → preparation pipeline → flow training → guessing attacks →
//! evaluation, mirroring the paper's experimental protocol at smoke scale.

use std::collections::HashSet;
use std::sync::OnceLock;

use passflow::nn::rng as nnrng;
use passflow::{
    interpolate_passwords, train, Attack, CorpusConfig, DynamicParams, FlowConfig,
    GaussianSmoothing, GuessingStrategy, PassFlow, SyntheticCorpusGenerator, TrainConfig,
};

struct Fixture {
    flow: PassFlow,
    train_set: Vec<String>,
    targets: HashSet<String>,
}

/// Shared trained model: training dominates test time, so build it once and
/// hand each test a cheap clone.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let corpus =
            SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(12_000)).generate(101);
        let split = corpus.paper_split(0.8, 4_000, 101);
        let mut rng = nnrng::seeded(102);
        let flow = PassFlow::new(FlowConfig::tiny().with_coupling_layers(6), &mut rng)
            .expect("valid config");
        train(
            &flow,
            &split.train,
            &TrainConfig::tiny().with_epochs(6).with_batch_size(256),
        )
        .expect("training succeeds");
        Fixture {
            flow,
            train_set: split.train.clone(),
            targets: split.test_set(),
        }
    })
}

#[test]
fn training_learns_the_password_distribution() {
    let fixture = fixture();
    let flow = &fixture.flow;
    // A trained flow must assign (much) higher likelihood to human-style
    // passwords than to uniform-random strings over the same alphabet.
    let human = ["123456", "jessica1", "michael", "soccer12"];
    let random = ["x9#qz!pw", "kd8fj2nq", "!!x%Q&*)"];
    let mean = |set: &[&str]| -> f32 {
        let vals: Vec<f32> = set
            .iter()
            .filter_map(|p| flow.log_prob_password(p))
            .collect();
        vals.iter().sum::<f32>() / vals.len() as f32
    };
    let human_lp = mean(&human);
    let random_lp = mean(&random);
    assert!(
        human_lp > random_lp + 1.0,
        "human {human_lp} vs random {random_lp}"
    );
}

#[test]
fn untrained_flow_is_much_worse_than_trained_flow() {
    let fixture = fixture();
    let mut rng = nnrng::seeded(200);
    let untrained = PassFlow::new(FlowConfig::tiny().with_coupling_layers(6), &mut rng).unwrap();

    // Exact densities let us compare models directly: the trained flow must
    // assign far higher likelihood (lower NLL) to held-out human passwords.
    let held_out: Vec<String> = fixture.targets.iter().take(500).cloned().collect();
    let x = fixture.flow.encode_batch(&held_out).unwrap();
    let trained_nll = fixture.flow.nll(&x);
    let untrained_nll = untrained.nll(&x);
    assert!(
        trained_nll + 5.0 < untrained_nll,
        "trained NLL {trained_nll} vs untrained NLL {untrained_nll}"
    );

    // And the trained model explores the password space far more effectively:
    // its guesses are much more diverse (the untrained flow collapses to a
    // tiny region of the data space).
    let budget = 4_000u64;
    let trained_outcome = Attack::new(&fixture.targets)
        .budget(budget)
        .seed(1)
        .run(&fixture.flow)
        .unwrap();
    let untrained_outcome = Attack::new(&fixture.targets)
        .budget(budget)
        .seed(1)
        .run(&untrained)
        .unwrap();
    assert!(
        trained_outcome.final_report().unique > 2 * untrained_outcome.final_report().unique,
        "trained unique {} vs untrained unique {}",
        trained_outcome.final_report().unique,
        untrained_outcome.final_report().unique
    );
    assert!(trained_outcome.final_report().matched >= untrained_outcome.final_report().matched);
}

#[test]
fn dynamic_sampling_beats_static_sampling_at_equal_budget() {
    let fixture = fixture();
    let budget = 6_000u64;
    let static_outcome = Attack::new(&fixture.targets)
        .budget(budget)
        .seed(3)
        .run(&fixture.flow)
        .unwrap();
    let dynamic_outcome = Attack::new(&fixture.targets)
        .budget(budget)
        .strategy(GuessingStrategy::Dynamic(DynamicParams::new(1, 0.12, 4)))
        .seed(3)
        .run(&fixture.flow)
        .unwrap();
    // The paper's central result (Table II): conditioning the prior on
    // matched passwords finds more matches than static sampling.
    assert!(
        dynamic_outcome.final_report().matched >= static_outcome.final_report().matched,
        "dynamic {} vs static {}",
        dynamic_outcome.final_report().matched,
        static_outcome.final_report().matched
    );
}

#[test]
fn gaussian_smoothing_recovers_unique_guesses_lost_to_dynamic_sampling() {
    let fixture = fixture();
    let budget = 5_000u64;
    let params = DynamicParams::new(0, 0.05, 1_000);
    let dynamic = Attack::new(&fixture.targets)
        .budget(budget)
        .strategy(GuessingStrategy::Dynamic(params))
        .seed(5)
        .run(&fixture.flow)
        .unwrap();
    let dynamic_gs = Attack::new(&fixture.targets)
        .budget(budget)
        .strategy(GuessingStrategy::DynamicWithSmoothing {
            params,
            smoothing: GaussianSmoothing::new(0.02, 6),
        })
        .seed(5)
        .run(&fixture.flow)
        .unwrap();
    // Table III's pattern: +GS generates at least as many unique guesses and
    // at least as many matches as plain dynamic sampling.
    assert!(dynamic_gs.final_report().unique >= dynamic.final_report().unique);
    assert!(dynamic_gs.final_report().matched >= dynamic.final_report().matched);
}

#[test]
fn interpolation_endpoints_round_trip_through_the_trained_model() {
    let fixture = fixture();
    let path = interpolate_passwords(&fixture.flow, "jimmy91", "123456", 8).unwrap();
    assert_eq!(path.first().unwrap(), "jimmy91");
    assert_eq!(path.last().unwrap(), "123456");
    assert!(path.iter().all(|p| p.chars().count() <= 10));
}

#[test]
fn generated_guesses_follow_the_corpus_character_statistics() {
    use passflow::passwords::stats::CorpusStats;
    let fixture = fixture();
    let mut rng = nnrng::seeded(77);
    let guesses = fixture.flow.sample_passwords(2_000, &mut rng);
    let guess_stats = CorpusStats::compute(guesses.iter().map(String::as_str));
    let train_stats = CorpusStats::compute(fixture.train_set.iter().map(String::as_str));
    let js = train_stats.char_js_divergence(&guess_stats);
    // Identical corpora give 0, disjoint alphabets give ln 2 ≈ 0.69; a
    // trained model should be much closer to the former.
    assert!(js < 0.35, "character JS divergence too high: {js}");
    // Generated guesses should be mostly non-empty and within length bounds.
    assert!(guesses.iter().filter(|g| g.is_empty()).count() < guesses.len() / 5);
}

#[test]
fn matched_passwords_are_consistent_with_checkpoints() {
    let fixture = fixture();
    let outcome = Attack::new(&fixture.targets)
        .budget(3_000)
        .checkpoints(vec![1_000, 2_000])
        .seed(9)
        .run(&fixture.flow)
        .unwrap();
    assert_eq!(outcome.checkpoints.len(), 3);
    assert_eq!(
        outcome.final_report().matched as usize,
        outcome.matched_passwords.len()
    );
    for pair in outcome.checkpoints.windows(2) {
        assert!(pair[0].guesses < pair[1].guesses);
        assert!(pair[0].matched <= pair[1].matched);
        assert!(pair[0].unique <= pair[1].unique);
    }
}

#[test]
#[allow(deprecated)]
fn deprecated_run_attack_wrapper_matches_the_engine() {
    use passflow::{run_attack, AttackConfig};
    let fixture = fixture();
    let config = AttackConfig::quick(1_000).with_seed(13);
    let wrapped = run_attack(&fixture.flow, &fixture.targets, &config);
    let direct = config
        .to_attack(&fixture.targets)
        .run(&fixture.flow)
        .unwrap();
    assert_eq!(wrapped, direct);
}
