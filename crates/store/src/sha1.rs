//! A self-contained SHA-1 implementation (FIPS 180-4).
//!
//! Breach screening hashes passwords with SHA-1 because that is the digest
//! the HIBP-style k-anonymity protocol is defined over: clients reveal only
//! the first 5 hex characters of `SHA1(password)` and match the suffix
//! locally. SHA-1 is used here strictly as a *screening identifier* — its
//! known collision attacks are irrelevant to membership lookups (an
//! attacker gains nothing by colliding a breached password with a clean
//! one they had to know anyway).
//!
//! The implementation is the straightforward 80-round compression function
//! over 512-bit blocks; `tests` pin the FIPS test vectors.

/// Byte length of a full SHA-1 digest.
pub const DIGEST_LEN: usize = 20;

/// Computes the SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut state: [u32; 5] = [
        0x6745_2301,
        0xEFCD_AB89,
        0x98BA_DCFE,
        0x1032_5476,
        0xC3D2_E1F0,
    ];

    // Process the complete 64-byte blocks of the message…
    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        compress(&mut state, block.try_into().expect("exact 64-byte chunk"));
    }

    // …then the padded tail: 0x80, zeros, and the bit length (big-endian).
    let rem = chunks.remainder();
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut tail = [0u8; 128];
    tail[..rem.len()].copy_from_slice(rem);
    tail[rem.len()] = 0x80;
    let tail_blocks = if rem.len() + 9 > 64 { 2 } else { 1 };
    tail[tail_blocks * 64 - 8..tail_blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
    for block in tail[..tail_blocks * 64].chunks_exact(64) {
        compress(&mut state, block.try_into().expect("exact 64-byte chunk"));
    }

    let mut out = [0u8; DIGEST_LEN];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Computes `SHA1(password-bytes)` — the record key of a digest store.
pub fn password_digest(password: &str) -> [u8; DIGEST_LEN] {
    sha1(password.as_bytes())
}

/// Uppercase hex of a digest (the wire casing of the k-anonymity protocol).
pub fn to_hex(digest: &[u8]) -> String {
    let mut out = String::with_capacity(digest.len() * 2);
    for b in digest {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble"));
        out.push(char::from_digit(u32::from(b & 0xf), 16).expect("nibble"));
    }
    out.to_ascii_uppercase()
}

/// Parses hex (either case) into bytes; `None` on non-hex or odd length.
pub fn from_hex(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    let nibbles = parse_nibbles(hex)?;
    Some(
        nibbles
            .chunks_exact(2)
            .map(|p| (p[0] << 4) | p[1])
            .collect(),
    )
}

/// Parses hex of any length into one nibble (0–15) per character.
pub fn parse_nibbles(hex: &str) -> Option<Vec<u8>> {
    hex.chars()
        .map(|c| c.to_digit(16).map(|d| d as u8))
        .collect()
}

/// One SHA-1 compression round over a 64-byte block.
fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 80];
    for (i, word) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(word.try_into().expect("4-byte word"));
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }

    let [mut a, mut b, mut c, mut d, mut e] = *state;
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | (!b & d), 0x5A82_7999),
            20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
            _ => (b ^ c ^ d, 0xCA62_C1D6),
        };
        let t = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = t;
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_of(data: &[u8]) -> String {
        to_hex(&sha1(data)).to_ascii_lowercase()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(hex_of(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hex_of(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex_of(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            hex_of(b"The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
        assert_eq!(
            hex_of(&vec![b'a'; 1_000_000]),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn padding_boundaries_are_exact() {
        // Lengths straddling the "length fits in the last block" boundary
        // (55/56/63/64/65 bytes) exercise both 1- and 2-block tails.
        for n in [55usize, 56, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0x5Au8; n];
            let d = sha1(&data);
            // Self-consistency: hashing the same input twice agrees, and a
            // one-byte change disagrees.
            assert_eq!(d, sha1(&data), "len {n}");
            let mut flipped = data.clone();
            flipped[n / 2] ^= 1;
            assert_ne!(d, sha1(&flipped), "len {n}");
        }
    }

    #[test]
    fn hex_round_trips() {
        let d = password_digest("password123");
        let hex = to_hex(&d);
        assert_eq!(hex.len(), 40);
        assert_eq!(from_hex(&hex).unwrap(), d.to_vec());
        assert_eq!(from_hex(&hex.to_ascii_lowercase()).unwrap(), d.to_vec());
        assert!(from_hex("abc").is_none(), "odd length");
        assert!(from_hex("zz").is_none(), "non-hex");
        assert_eq!(parse_nibbles("0fF").unwrap(), vec![0, 15, 15]);
    }

    #[test]
    fn known_breach_hash() {
        // The canonical HIBP example: SHA1("password123").
        assert_eq!(
            to_hex(&password_digest("password123")),
            "CBFDAC6008F9CAB4083784CBD1874F76618D2A97"
        );
    }
}
