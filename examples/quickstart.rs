//! Quickstart: generate a synthetic corpus, train a small PassFlow model,
//! generate guesses and report how many match the held-out test set.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use passflow::{
    train, Attack, CorpusConfig, FlowConfig, PassFlow, SyntheticCorpusGenerator, TrainConfig,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a RockYou-like corpus and apply the paper's preparation
    //    pipeline: length filter, 80/20 split, training subsample, test-set
    //    cleaning.
    let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small()).generate(7);
    let split = corpus.paper_split(0.8, 5_000, 7);
    println!(
        "corpus: {} instances, training on {}, test set of {} unique passwords",
        corpus.len(),
        split.train.len(),
        split.test_unique.len()
    );

    // 2. Train a small flow (FlowConfig::paper() is the 18-layer architecture
    //    from the paper; this example uses a reduced one so it finishes in
    //    about a minute on a laptop).
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let config = FlowConfig::evaluation()
        .with_coupling_layers(6)
        .with_hidden_size(32);
    let flow = PassFlow::new(config, &mut rng)?;
    println!("training a flow with {} parameters…", flow.num_parameters());
    let report = train(
        &flow,
        &split.train,
        &TrainConfig::evaluation().with_epochs(8),
    )?;
    println!(
        "trained {} epochs, best NLL {:.3} nats/password",
        report.epochs.len(),
        report.best_nll().unwrap_or(f32::NAN)
    );
    assert_eq!(report.epochs.len(), 8, "training must run all 8 epochs");
    let best_nll = report.best_nll().expect("training reports a best NLL");
    assert!(
        best_nll.is_finite(),
        "best NLL must be finite, got {best_nll}"
    );

    // 3. The flow gives exact densities — inspect a few.
    for password in ["123456", "jessica1", "zq9#kv!x"] {
        let lp = flow
            .log_prob_password(password)
            .expect("all three probes are encodable");
        assert!(lp.is_finite(), "log p({password}) must be finite");
        println!("log p({password:>10}) = {lp:8.2}");
    }

    // 4. Run a static guessing attack against the cleaned test set through
    //    the unified engine. Checkpoint reports stream through the observer
    //    as soon as each budget is reached, and generation fans out across
    //    four shards (the shard count never changes the numbers).
    println!(
        "\n{:<10} {:>10} {:>10} {:>9}",
        "guesses", "unique", "matched", "% matched"
    );
    let outcome = Attack::new(&split.test_set())
        .budget(20_000)
        .checkpoints(vec![1_000, 5_000, 10_000])
        .shards(4)
        .observer(|checkpoint| {
            println!(
                "{:<10} {:>10} {:>10} {:>8.2}%",
                checkpoint.guesses,
                checkpoint.unique,
                checkpoint.matched,
                checkpoint.matched_percent
            )
        })
        .run(&flow)?;
    let final_report = outcome.final_report();
    assert_eq!(
        final_report.guesses, 20_000,
        "the full budget must be spent"
    );
    assert!(
        final_report.unique > 0,
        "generation produced no unique guesses"
    );
    assert_eq!(
        final_report.matched as usize,
        outcome.matched_passwords.len(),
        "matched count and matched password list must agree"
    );
    let expected_percent = 100.0 * final_report.matched as f64 / split.test_unique.len() as f64;
    assert!(
        (final_report.matched_percent - expected_percent).abs() < 1e-9,
        "matched_percent must be consistent with the test-set size"
    );
    assert_eq!(
        outcome.checkpoints.len(),
        4,
        "three checkpoints plus the final budget"
    );
    println!(
        "\nexample matched passwords: {:?}",
        outcome.matched_passwords.iter().take(8).collect::<Vec<_>>()
    );
    println!(
        "example non-matched (but human-like) guesses: {:?}",
        outcome
            .nonmatched_samples
            .iter()
            .take(8)
            .collect::<Vec<_>>()
    );
    Ok(())
}
