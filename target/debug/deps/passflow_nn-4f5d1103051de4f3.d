/root/repo/target/debug/deps/passflow_nn-4f5d1103051de4f3.d: crates/nn/src/lib.rs crates/nn/src/autograd.rs crates/nn/src/error.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/rng.rs crates/nn/src/tensor.rs

/root/repo/target/debug/deps/passflow_nn-4f5d1103051de4f3: crates/nn/src/lib.rs crates/nn/src/autograd.rs crates/nn/src/error.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/rng.rs crates/nn/src/tensor.rs

crates/nn/src/lib.rs:
crates/nn/src/autograd.rs:
crates/nn/src/error.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/rng.rs:
crates/nn/src/tensor.rs:
