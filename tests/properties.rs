//! Property-based tests (proptest) of the core invariants:
//!
//! * the flow is a bijection: `f⁻¹(f(x)) ≈ x` and `f(f⁻¹(z)) ≈ z` for
//!   arbitrary inputs and randomly initialized parameters,
//! * the change-of-variables bookkeeping is self-consistent,
//! * password encoding round-trips for arbitrary alphabet strings,
//! * masks always cover every position across consecutive layers,
//! * mixture-prior weights stay normalized,
//! * structure templates and statistics behave for arbitrary inputs.

use proptest::prelude::*;

use passflow::nn::rng as nnrng;
use passflow::nn::Tensor;
use passflow::passwords::stats::{structure_template, CorpusStats};
use passflow::{
    Alphabet, DynamicParams, FlowConfig, MaskStrategy, PassFlow, PasswordEncoder, Penalization,
};
use passflow_core::{GaussianMixturePrior, Prior, StandardGaussianPrior};

/// Strategy generating passwords over the default alphabet, length 1..=10.
fn password_strategy() -> impl Strategy<Value = String> {
    let alphabet: Vec<char> = Alphabet::default().iter().collect();
    proptest::collection::vec(0..alphabet.len(), 1..=10).prop_map(move |indices| {
        indices.into_iter().map(|i| alphabet[i]).collect::<String>()
    })
}

fn tiny_flow(seed: u64, layers: usize) -> PassFlow {
    let mut rng = nnrng::seeded(seed);
    PassFlow::new(
        FlowConfig::tiny().with_coupling_layers(layers),
        &mut rng,
    )
    .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn encoding_round_trips_for_arbitrary_passwords(password in password_strategy()) {
        let encoder = PasswordEncoder::default();
        let features = encoder.encode(&password).expect("encodable");
        prop_assert_eq!(features.len(), encoder.max_len());
        prop_assert!(features.iter().all(|v| (0.0..1.0).contains(v)));
        prop_assert_eq!(encoder.decode(&features), password);
    }

    #[test]
    fn flow_inverts_arbitrary_passwords(password in password_strategy(), seed in 0u64..50) {
        let flow = tiny_flow(seed, 4);
        let x = flow.encode_batch(&[password.clone()]).unwrap();
        let (z, log_det) = flow.forward(&x);
        prop_assert!(z.is_finite());
        prop_assert!(log_det.is_finite());
        let recovered = flow.inverse(&z);
        prop_assert!(recovered.approx_eq(&x, 1e-3), "max err {}", recovered.sub(&x).abs().max());
        prop_assert_eq!(flow.decode_batch(&recovered), vec![password]);
    }

    #[test]
    fn flow_inverts_arbitrary_latent_points(seed in 0u64..20, values in proptest::collection::vec(-3.0f32..3.0, 10)) {
        let flow = tiny_flow(seed, 4);
        let z = Tensor::from_rows(&[values]);
        let x = flow.inverse(&z);
        let (z2, _) = flow.forward(&x);
        prop_assert!(z2.approx_eq(&z, 1e-3), "max err {}", z2.sub(&z).abs().max());
    }

    #[test]
    fn log_prob_is_finite_and_consistent(password in password_strategy(), seed in 0u64..20) {
        let flow = tiny_flow(seed, 4);
        let lp = flow.log_prob_password(&password).expect("encodable");
        prop_assert!(lp.is_finite());
        // The batched path must agree with the single-password path.
        let x = flow.encode_batch(&[password]).unwrap();
        let batch_lp = flow.log_prob(&x)[0];
        prop_assert!((lp - batch_lp).abs() < 1e-4);
    }

    #[test]
    fn masks_cover_every_position_in_consecutive_layers(
        dim in 2usize..16,
        run in 1usize..4,
        layer in 0usize..8,
    ) {
        prop_assume!(run < dim);
        for strategy in [MaskStrategy::CharRun(run), MaskStrategy::Horizontal] {
            let a = strategy.mask_for_layer(2 * layer, dim);
            let b = strategy.mask_for_layer(2 * layer + 1, dim);
            for j in 0..dim {
                // Mask values are binary and complementary across the pair.
                prop_assert!(a[j] == 0.0 || a[j] == 1.0);
                prop_assert_eq!(a[j] + b[j], 1.0);
            }
        }
    }

    #[test]
    fn mixture_prior_weights_stay_normalized(
        centers in proptest::collection::vec(proptest::collection::vec(-2.0f32..2.0, 4), 1..6),
        sigma in 0.01f32..1.0,
        raw_weights in proptest::collection::vec(0.0f32..5.0, 1..6),
    ) {
        let n = centers.len().min(raw_weights.len());
        let centers: Vec<Vec<f32>> = centers[..n].to_vec();
        let mut weights: Vec<f32> = raw_weights[..n].to_vec();
        // Ensure at least one positive weight.
        weights[0] += 1.0;
        let prior = GaussianMixturePrior::new(centers, sigma, weights);
        let total: f32 = prior.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-5);
        // Densities are finite wherever we evaluate them.
        let z = Tensor::zeros(3, 4);
        prop_assert!(prior.log_prob(&z).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn standard_prior_density_decreases_away_from_origin(scale in 0.1f32..4.0) {
        let prior = StandardGaussianPrior::new(6);
        let near = Tensor::zeros(1, 6);
        let far = Tensor::full(1, 6, scale);
        prop_assert!(prior.log_prob(&near)[0] >= prior.log_prob(&far)[0]);
    }

    #[test]
    fn penalization_weight_is_monotone_in_usage(gamma in 1u32..20, usage in 0u32..40) {
        let step = Penalization::Step { gamma };
        let w_now = step.weight(usage);
        let w_later = step.weight(usage + 1);
        prop_assert!(w_later <= w_now);
        prop_assert!(w_now == 0.0 || w_now == 1.0);
        prop_assert_eq!(Penalization::None.weight(usage), 1.0);
    }

    #[test]
    fn paper_dynamic_params_are_always_valid(budget in 1u64..1_000_000_000) {
        let params = DynamicParams::paper_defaults(budget);
        prop_assert!(params.sigma > 0.0);
        prop_assert!(params.alpha >= 1);
        match params.penalization {
            Penalization::Step { gamma } => prop_assert!(gamma >= 2),
            Penalization::None => prop_assert!(false, "paper defaults always use a step function"),
        }
    }

    #[test]
    fn structure_template_preserves_length_and_classes(password in password_strategy()) {
        let template = structure_template(&password);
        prop_assert_eq!(template.chars().count(), password.chars().count());
        prop_assert!(template.chars().all(|c| c == 'L' || c == 'D' || c == 'S'));
    }

    #[test]
    fn corpus_stats_fractions_sum_to_one(passwords in proptest::collection::vec(password_strategy(), 1..30)) {
        let stats = CorpusStats::compute(passwords.iter().map(String::as_str));
        let total = stats.letter_fraction + stats.digit_fraction + stats.symbol_fraction;
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert_eq!(stats.count, passwords.len());
        prop_assert!(stats.mean_length >= 1.0 && stats.mean_length <= 10.0);
        // JS divergence with itself is zero.
        prop_assert!(stats.char_js_divergence(&stats).abs() < 1e-12);
    }
}
