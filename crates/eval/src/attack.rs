//! Guessing-attack evaluation for baseline guessers.
//!
//! PassFlow attacks are run through [`passflow_core::run_attack`], which
//! needs access to the flow's latent space (for dynamic sampling). The
//! baselines only expose sampling, so this module implements the same
//! evaluation protocol — count unique guesses and matched test-set passwords
//! at each budget checkpoint — for any [`PasswordGuesser`].

use std::collections::HashSet;

use passflow_baselines::PasswordGuesser;
use passflow_core::CheckpointReport;
use passflow_nn::rng as nnrng;

/// Runs a guessing attack with a baseline guesser and reports statistics at
/// each checkpoint budget (ascending). The final budget is always included.
pub fn evaluate_guesser(
    guesser: &dyn PasswordGuesser,
    targets: &HashSet<String>,
    budgets: &[u64],
    batch_size: usize,
    seed: u64,
) -> Vec<CheckpointReport> {
    let mut checkpoints: Vec<u64> = budgets.iter().copied().filter(|&b| b > 0).collect();
    checkpoints.sort_unstable();
    checkpoints.dedup();
    if checkpoints.is_empty() {
        return Vec::new();
    }
    let total = *checkpoints.last().expect("non-empty checkpoints");

    let mut rng = nnrng::seeded(seed);
    let mut generated: HashSet<String> = HashSet::new();
    let mut matched: HashSet<String> = HashSet::new();
    let mut reports = Vec::with_capacity(checkpoints.len());

    let mut guesses_made: u64 = 0;
    let mut next_checkpoint = 0usize;
    while guesses_made < total {
        let until_checkpoint = checkpoints[next_checkpoint] - guesses_made;
        let n = (batch_size as u64).min(until_checkpoint) as usize;
        let batch = guesser.generate(n, &mut rng);
        for guess in batch {
            guesses_made += 1;
            if targets.contains(&guess) {
                matched.insert(guess.clone());
            }
            generated.insert(guess);
        }
        while next_checkpoint < checkpoints.len() && guesses_made >= checkpoints[next_checkpoint] {
            reports.push(CheckpointReport {
                guesses: checkpoints[next_checkpoint],
                unique: generated.len() as u64,
                matched: matched.len() as u64,
                matched_percent: if targets.is_empty() {
                    0.0
                } else {
                    100.0 * matched.len() as f64 / targets.len() as f64
                },
            });
            next_checkpoint += 1;
        }
        if next_checkpoint >= checkpoints.len() {
            break;
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    /// A guesser that cycles through a fixed list.
    struct Cycler(Vec<String>);

    impl PasswordGuesser for Cycler {
        fn name(&self) -> &str {
            "cycler"
        }
        fn generate(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
            (0..n)
                .map(|_| self.0[(rng.next_u32() as usize) % self.0.len()].clone())
                .collect()
        }
    }

    fn targets() -> HashSet<String> {
        ["hit1", "hit2", "hit3", "neverguessed"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn reports_land_on_requested_budgets() {
        let guesser = Cycler(vec![
            "hit1".into(),
            "miss1".into(),
            "hit2".into(),
            "miss2".into(),
        ]);
        let reports = evaluate_guesser(&guesser, &targets(), &[100, 400], 64, 1);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].guesses, 100);
        assert_eq!(reports[1].guesses, 400);
        // With only 4 distinct guesses, unique saturates at 4 and matched at 2.
        assert!(reports[1].unique <= 4);
        assert_eq!(reports[1].matched, 2);
        assert!((reports[1].matched_percent - 50.0).abs() < 1e-9);
        // Monotone in the budget.
        assert!(reports[1].unique >= reports[0].unique);
        assert!(reports[1].matched >= reports[0].matched);
    }

    #[test]
    fn empty_budgets_and_zero_budgets_are_handled() {
        let guesser = Cycler(vec!["x".into()]);
        assert!(evaluate_guesser(&guesser, &targets(), &[], 64, 1).is_empty());
        assert!(evaluate_guesser(&guesser, &targets(), &[0], 64, 1).is_empty());
    }

    #[test]
    fn empty_target_set_gives_zero_percent() {
        let guesser = Cycler(vec!["x".into()]);
        let reports = evaluate_guesser(&guesser, &HashSet::new(), &[50], 16, 1);
        assert_eq!(reports[0].matched, 0);
        assert_eq!(reports[0].matched_percent, 0.0);
    }

    #[test]
    fn unique_never_exceeds_guesses() {
        let guesser = Cycler(vec!["a".into(), "b".into(), "c".into()]);
        let reports = evaluate_guesser(&guesser, &targets(), &[10, 20, 30], 7, 3);
        for r in &reports {
            assert!(r.unique <= r.guesses);
        }
    }
}
