//! Password-strength estimation from exact model log-likelihoods.
//!
//! The paper evaluates a guessing model by *how many guesses* it needs to
//! crack a password. Enumerating those guesses through the
//! [`Attack`](crate::Attack) engine answers that exactly but costs the whole
//! budget per query; this subsystem turns the flow's exact densities (and
//! the baselines' exact probabilities) into **instant** per-password
//! strength estimates — the "strength meter" workload suggested for exact-
//! inference models by Dell'Amico & Filippone (CCS 2015) and enabled "for
//! free" by the flow:
//!
//! * [`ProbabilityModel`] — exact per-password log-probability on top of
//!   the PR 1 [`Guesser`] abstraction. Implemented by `PassFlow`
//!   (change-of-variables through the cached
//!   [`FlowSnapshot`](crate::FlowSnapshot), batched through
//!   [`FlowWorkspace`](crate::FlowWorkspace)) and by the Markov/PCFG
//!   baselines in
//!   `passflow-baselines`.
//! * [`SampleTable`] — a persisted, versioned Monte-Carlo sample table:
//!   sample N passwords from the model, score them, sort by log-probability
//!   and precompute cumulative importance weights. A query is then one
//!   binary search plus a rank interpolation — microseconds, no guess
//!   enumeration.
//! * [`StrengthEstimate`] / [`SamplingRankEstimate`] — the two rank
//!   notions with confidence intervals: the *optimal-attacker* guess number
//!   (position in a descending-probability enumeration) and the *sampling-
//!   attack* rank (expected unique guesses of the engine's own static
//!   attacker before the password falls — directly comparable to an
//!   [`Attack`](crate::Attack) run, see [`attack_unique_rank`]).
//! * [`score_wordlist`] — parallel sharded batch scoring with the engine's
//!   shard-invariance guarantee: the shard count changes wall-clock, never
//!   a result.
//!
//! The estimator math and its error bounds are documented in DESIGN.md
//! ("Strength estimation").

mod estimator;
mod score;
mod scorer;

pub use estimator::{SampleTable, SamplingRankEstimate, StrengthEstimate};
pub use score::{attack_unique_rank, score_wordlist, PasswordStrength};
pub use scorer::{probe_quantization, FlowScorer, QuantizationReport, QuantizedScorer};

use crate::engine::Guesser;
use crate::flow::PassFlow;

/// Runs `num_chunks` chunk computations on up to `shards` worker threads
/// pulling from a shared counter, re-assembling outputs in chunk order —
/// the same dynamic-load-balancing scheme as the attack engine's
/// `run_parallel`. Shared by the table builder and the wordlist scorer.
pub(crate) fn run_chunks<T: Send>(
    num_chunks: usize,
    shards: usize,
    produce: &(dyn Fn(usize) -> T + Sync),
) -> Vec<T> {
    // Shard counts are throughput knobs with result invariance, so they go
    // through the repo-wide clamp (see `passflow_nn::pool`).
    let workers = passflow_nn::clamp_threads(shards).min(num_chunks).max(1);
    if workers == 1 {
        return (0..num_chunks).map(produce).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..num_chunks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= num_chunks {
                            break;
                        }
                        produced.push((i, produce(i)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, output) in handle.join().expect("strength worker panicked") {
                slots[i] = Some(output);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every chunk produced"))
        .collect()
}

/// A generative password model with an exact (or proxy) per-password
/// log-probability, on top of its [`Guesser`] sampling interface.
///
/// The contract backing the Monte-Carlo estimator is *consistency*:
/// [`generate_batch`](Guesser::generate_batch) draws from (approximately)
/// the distribution that [`password_log_prob`](Self::password_log_prob)
/// scores. For the Markov and PCFG baselines both sides are the same exact
/// discrete distribution (up to boundary truncation at the maximum length);
/// for the flow, the continuous density at the canonical encoding stands in
/// for the discrete mass — the standard proxy for continuous generative
/// models, discussed in DESIGN.md ("Strength estimation").
pub trait ProbabilityModel: Guesser {
    /// Exact natural-log probability of `password` under the model, or
    /// `None` if the model cannot score it (unencodable, outside the
    /// model's support, or longer than the model generates).
    fn password_log_prob(&self, password: &str) -> Option<f64>;

    /// Scores a batch of passwords. The default maps
    /// [`password_log_prob`](Self::password_log_prob) over the slice;
    /// models with a batched fast path (the flow) override it.
    ///
    /// Implementations must return exactly one entry per input password, in
    /// input order, bit-identical to the scalar method.
    fn password_log_probs(&self, passwords: &[String]) -> Vec<Option<f64>> {
        passwords
            .iter()
            .map(|p| self.password_log_prob(p))
            .collect()
    }
}

impl PassFlow {
    /// Natural log of the encoder's quantization-cell volume: each of the
    /// `max_len` feature dimensions quantizes to one of `num_symbols`
    /// levels spaced `1/num_symbols` apart, so the cell around a canonical
    /// encoding has volume `num_symbols^{-max_len}`.
    ///
    /// `density × volume` is the midpoint-quadrature mass of the cell — the
    /// discrete-probability proxy the strength estimator needs (without it,
    /// continuous densities carry an arbitrary scale and guess-number
    /// weights `1/p` are off by a constant `num_symbols^{max_len}` factor).
    fn log_cell_volume(&self) -> f64 {
        -(self.dim() as f64) * f64::from(self.encoder().num_symbols() as u32).ln()
    }
}

impl ProbabilityModel for PassFlow {
    /// The flow's exact density at the password's canonical encoding,
    /// scaled by the quantization-cell volume so it approximates the
    /// discrete probability mass the sampler actually assigns to the
    /// password (see DESIGN.md, "Strength estimation").
    fn password_log_prob(&self, password: &str) -> Option<f64> {
        self.log_prob_password(password)
            .map(|lp| f64::from(lp) + self.log_cell_volume())
    }

    /// Batched scoring through the snapshot fast path: delegates to a
    /// [`FlowScorer`] exported from the cached snapshot, which gathers
    /// encodable passwords into one tensor per chunk and scores them with
    /// the fused
    /// [`FlowSnapshot::log_prob_into`](crate::FlowSnapshot::log_prob_into)
    /// kernel (one snapshot export, one workspace, no per-password
    /// allocation). Each output row depends only on its input row, so the
    /// batch result is bit-identical to scalar scoring.
    fn password_log_probs(&self, passwords: &[String]) -> Vec<Option<f64>> {
        FlowScorer::new(self).log_probs(passwords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use passflow_nn::rng as nnrng;

    fn tiny_flow(seed: u64) -> PassFlow {
        let mut rng = nnrng::seeded(seed);
        PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn flow_batch_scoring_is_bit_identical_to_scalar() {
        let flow = tiny_flow(91);
        let passwords: Vec<String> = vec![
            "jimmy91".into(),
            "123456".into(),
            "waytoolongtoencode".into(),
            "iloveyou".into(),
            "".into(),
        ];
        let batch = flow.password_log_probs(&passwords);
        for (p, b) in passwords.iter().zip(batch.iter()) {
            let scalar = flow.password_log_prob(p);
            match (scalar, b) {
                (Some(s), Some(b)) => assert_eq!(s.to_bits(), b.to_bits(), "{p:?}"),
                (None, None) => {}
                other => panic!("scalar/batch disagree for {p:?}: {other:?}"),
            }
        }
        assert!(batch[2].is_none(), "unencodable password must score None");
    }

    #[test]
    fn flow_scores_are_density_plus_cell_volume() {
        let flow = tiny_flow(92);
        let lp = flow.password_log_prob("dragon").unwrap();
        let density = f64::from(flow.log_prob_password("dragon").unwrap());
        let cell = -(flow.dim() as f64) * f64::from(flow.encoder().num_symbols() as u32).ln();
        assert_eq!(lp.to_bits(), (density + cell).to_bits());
    }

    #[test]
    fn trait_is_object_safe() {
        let flow = tiny_flow(93);
        let model: &dyn ProbabilityModel = &flow;
        assert_eq!(model.name(), "PassFlow");
        assert!(model.password_log_prob("abc").is_some());
    }
}
