/root/repo/target/debug/deps/passflow_baselines-2524784467502541.d: crates/baselines/src/lib.rs crates/baselines/src/cwae.rs crates/baselines/src/gan.rs crates/baselines/src/guesser.rs crates/baselines/src/markov.rs crates/baselines/src/pcfg.rs

/root/repo/target/debug/deps/libpassflow_baselines-2524784467502541.rlib: crates/baselines/src/lib.rs crates/baselines/src/cwae.rs crates/baselines/src/gan.rs crates/baselines/src/guesser.rs crates/baselines/src/markov.rs crates/baselines/src/pcfg.rs

/root/repo/target/debug/deps/libpassflow_baselines-2524784467502541.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cwae.rs crates/baselines/src/gan.rs crates/baselines/src/guesser.rs crates/baselines/src/markov.rs crates/baselines/src/pcfg.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cwae.rs:
crates/baselines/src/gan.rs:
crates/baselines/src/guesser.rs:
crates/baselines/src/markov.rs:
crates/baselines/src/pcfg.rs:
