/root/repo/target/debug/deps/table6-01e104a0122dd4c3.d: crates/bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-01e104a0122dd4c3.rmeta: crates/bench/src/bin/table6.rs Cargo.toml

crates/bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
