//! # passflow
//!
//! Umbrella crate for the PassFlow reproduction — password guessing with
//! generative normalizing flows (Pagnotta, Hitaj, De Gaspari, Mancini,
//! DSN 2022).
//!
//! This crate re-exports the workspace members under stable module names so
//! applications can depend on a single crate:
//!
//! * [`nn`] — tensor / autodiff / layers / optimizers substrate,
//! * [`passwords`] — alphabet, encoding, synthetic corpus, dataset pipeline,
//! * [`core`] (also re-exported at the root) — the flow model, training,
//!   dynamic sampling, Gaussian smoothing, interpolation, the unified
//!   guessing-attack engine ([`Guesser`] / [`Attack`]), the
//!   strength-meter subsystem ([`ProbabilityModel`] / [`SampleTable`]),
//!   and the int8 quantized scoring tier ([`QuantizedScorer`]),
//! * [`baselines`] — Markov, PCFG, WGAN and CWAE comparators, all
//!   implementing [`Guesser`],
//! * [`eval`] — the experiment harness regenerating the paper's tables and
//!   figures through the same engine,
//! * [`serve`] — the online serving layer: an HTTP scoring service with
//!   adaptive micro-batching and hot-swappable models,
//! * [`store`] — the breach-screening store: packed sorted digest
//!   artifacts (`PFDIGEST v1`) with bounded-memory builds, shard merging
//!   and k-anonymity range queries, plus the `PFGUESS v1` sorted guess
//!   archives distributed attacks persist and merge.
//!
//! See the `examples/` directory for runnable end-to-end programs and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction notes.
//!
//! ```rust
//! use passflow::{FlowConfig, PassFlow};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let flow = PassFlow::new(FlowConfig::tiny(), &mut rng)?;
//! println!("log p(\"123456\") = {:?}", flow.log_prob_password("123456"));
//! # Ok::<(), passflow::FlowError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub use passflow_baselines as baselines;
pub use passflow_core as core;
pub use passflow_eval as eval;
pub use passflow_nn as nn;
pub use passflow_passwords as passwords;
pub use passflow_serve as serve;
pub use passflow_store as store;

// The most commonly used items, re-exported at the crate root.
#[allow(deprecated)]
pub use passflow_core::run_attack;
pub use passflow_core::{
    attack_unique_rank, interpolate, interpolate_passwords, load_checkpoint, load_flow,
    probe_quantization, save_checkpoint, save_flow, score_wordlist, train, Attack, AttackConfig,
    AttackEngine, AttackOutcome, CheckpointReport, DynamicParams, EarlyStopConfig, FlowConfig,
    FlowError, FlowScorer, FlowSnapshot, FlowWorkspace, GaussianSmoothing, GuessSession, Guesser,
    GuessingStrategy, LatentGuesser, LatentSession, MaskStrategy, PassFlow, PasswordStrength,
    Penalization, ProbabilityModel, QuantizationReport, QuantizedFlowSnapshot, QuantizedScorer,
    SampleTable, SamplingRankEstimate, Schedule, ShardedSet, StrengthEstimate, TrainConfig,
    TrainLoop, TrainState, Trainer, TrainingReport,
};
pub use passflow_eval::{EvalScale, Workbench};
pub use passflow_passwords::{
    Alphabet, CorpusConfig, CorpusSplit, PasswordCorpus, PasswordEncoder, SyntheticCorpusGenerator,
};
pub use passflow_store::{
    merge_archives, merge_artifacts, DigestConfig, DigestStore, DigestStoreBuilder, GuessArchive,
    GuessArchiveBuilder, GuessConfig,
};

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_reachable() {
        // A compile-time smoke test that the façade exposes the main types.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::PassFlow>();
        assert_send_sync::<crate::FlowError>();
        let _ = crate::FlowConfig::tiny();
        let _ = crate::EvalScale::smoke();
    }
}
