//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the poison-free guard API (`read()` / `write()` return guards
//! directly). Lock poisoning is translated to a panic propagation, matching
//! `parking_lot`'s behavior closely enough for this workspace: a poisoned
//! lock means a writer already panicked, and the reproduction treats that as
//! fatal either way.

#![warn(rust_2018_idioms)]

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A mutex with `parking_lot`'s panic-free guard API: `lock()` returns the
/// guard directly, and poisoning (a holder panicked) is ignored rather than
/// propagated — exactly what the serve crate's lane queues need, where a
/// deliberately killed lane must not cascade panics into its siblings.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A condition variable pairing with [`Mutex`], poison-transparent like the
/// rest of this shim. Only the operations the workspace uses are exposed.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, reacquiring the guard.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        match self.0.wait(guard) {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Blocks until notified or `timeout` elapses; returns the guard and
    /// whether the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match self.0.wait_timeout(guard, timeout) {
            Ok((guard, result)) => (guard, result.timed_out()),
            Err(poisoned) => {
                let (guard, result) = poisoned.into_inner();
                (guard, result.timed_out())
            }
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::RwLock;

    #[test]
    fn read_write_round_trip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn mutex_and_condvar_round_trip() {
        use super::{Condvar, Mutex};
        use std::sync::Arc;
        use std::time::Duration;

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let signaller = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *signaller.0.lock() = true;
            signaller.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            let (guard, _timed_out) = cv.wait_timeout(done, Duration::from_millis(50));
            done = guard;
        }
        // The guard must be released before relocking below — std mutexes
        // are not reentrant and a live guard would self-deadlock.
        drop(done);
        t.join().unwrap();
        assert!(*lock.lock());
    }

    #[test]
    fn shared_across_threads() {
        let lock = std::sync::Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *lock.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 4000);
    }
}
