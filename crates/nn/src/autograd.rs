//! Reverse-mode automatic differentiation.
//!
//! The [`Tape`] records every operation performed on [`Var`] handles during a
//! forward pass. Calling [`Var::backward`] on a scalar output propagates
//! gradients back through the recorded graph and accumulates them into any
//! [`Parameter`] leaves that participated in the computation.
//!
//! The design intentionally mirrors the "define-by-run" style of mainstream
//! frameworks: layers hold [`Parameter`]s, each forward pass registers them on
//! a fresh tape, and an optimizer consumes the accumulated gradients.

use parking_lot::RwLock;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use crate::tensor::Tensor;

// ---------------------------------------------------------------------------
// Parameters
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct ParamData {
    value: Tensor,
    grad: Tensor,
    name: String,
    /// Bumped on every value mutation; lets weight snapshots detect
    /// staleness without comparing tensors.
    version: u64,
}

/// A trainable parameter shared between a model and the optimizer.
///
/// Cloning a `Parameter` is cheap and yields a handle to the same underlying
/// storage, so layers can hand out their parameters to optimizers without
/// copying weights. Parameters are `Send + Sync` (storage is behind an
/// `Arc<RwLock>`), so trained models can be moved across threads.
#[derive(Clone, Debug)]
pub struct Parameter(Arc<RwLock<ParamData>>);

impl Parameter {
    /// Creates a parameter from an initial value.
    pub fn new(value: Tensor, name: impl Into<String>) -> Self {
        let grad = Tensor::zeros(value.rows(), value.cols());
        Parameter(Arc::new(RwLock::new(ParamData {
            value,
            grad,
            name: name.into(),
            version: 0,
        })))
    }

    /// Returns a copy of the current value.
    pub fn value(&self) -> Tensor {
        self.0.read().value.clone()
    }

    /// A counter incremented on every value mutation
    /// ([`set_value`](Self::set_value) / [`update_value`](Self::update_value)).
    ///
    /// Weight snapshots record the version at export time and compare it to
    /// detect staleness, so cached inference snapshots invalidate themselves
    /// the moment an optimizer steps the parameter.
    pub fn version(&self) -> u64 {
        self.0.read().version
    }

    /// Replaces the current value.
    ///
    /// # Panics
    ///
    /// Panics if the new value has a different shape from the old one.
    pub fn set_value(&self, value: Tensor) {
        let mut data = self.0.write();
        assert_eq!(
            data.value.shape(),
            value.shape(),
            "parameter {} shape cannot change",
            data.name
        );
        data.value = value;
        data.version += 1;
    }

    /// Returns a copy of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.0.read().grad.clone()
    }

    /// Adds `delta` to the accumulated gradient.
    pub fn accumulate_grad(&self, delta: &Tensor) {
        self.0.write().grad.add_assign(delta);
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&self) {
        let mut data = self.0.write();
        let (r, c) = data.value.shape();
        data.grad = Tensor::zeros(r, c);
    }

    /// Parameter name (used for debugging and serialization).
    pub fn name(&self) -> String {
        self.0.read().name.clone()
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.0.read().value.len()
    }

    /// Returns `true` if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies `f` to the value in place: `value <- f(value, grad)`.
    ///
    /// This is the primitive optimizers use to update weights.
    pub fn update_value(&self, f: impl FnOnce(&Tensor, &Tensor) -> Tensor) {
        let mut data = self.0.write();
        let new = f(&data.value, &data.grad);
        assert_eq!(
            new.shape(),
            data.value.shape(),
            "update must preserve parameter shape"
        );
        data.value = new;
        data.version += 1;
    }

    /// Returns `true` if the two handles refer to the same underlying storage.
    pub fn ptr_eq(&self, other: &Parameter) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// A stable identity key for the underlying storage (the shared
    /// allocation's address).
    ///
    /// Two handles have equal keys iff [`ptr_eq`](Self::ptr_eq) holds. The
    /// key is only meaningful while at least one handle is alive; optimizers
    /// and gradient batches that index by key always retain a clone of the
    /// parameter alongside the key, which keeps the allocation (and thus the
    /// key) valid.
    pub fn key(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }
}

// ---------------------------------------------------------------------------
// Gradient batches
// ---------------------------------------------------------------------------

/// A set of per-parameter gradient tensors detached from the parameters.
///
/// [`Var::backward_grads`] produces one `GradBatch` per tape instead of
/// accumulating into the shared [`Parameter`] storage. This is the building
/// block of data-parallel training: each gradient worker differentiates its
/// own tape into a private batch, and the trainer merges the batches in a
/// **fixed worker-independent order** before applying them, so the reduced
/// gradient is bit-identical no matter how many workers produced the parts.
#[derive(Debug, Default)]
pub struct GradBatch {
    entries: Vec<(Parameter, Tensor)>,
    index: HashMap<usize, usize>,
}

impl GradBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        GradBatch::default()
    }

    /// Number of parameters with a gradient in this batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no gradients have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `grad` to the entry for `parameter`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `grad` has a different shape from an existing entry.
    pub fn accumulate(&mut self, parameter: &Parameter, grad: &Tensor) {
        match self.index.entry(parameter.key()) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                self.entries[*slot.get()].1.add_assign(grad);
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(self.entries.len());
                self.entries.push((parameter.clone(), grad.clone()));
            }
        }
    }

    /// Adds every gradient of `other` into this batch.
    ///
    /// Merging is elementwise addition per parameter; to keep reductions
    /// deterministic, merge batches in a fixed order (e.g. micro-batch
    /// index), never in thread-completion order.
    pub fn merge(&mut self, other: &GradBatch) {
        for (parameter, grad) in &other.entries {
            self.accumulate(parameter, grad);
        }
    }

    /// Multiplies every gradient in the batch by `factor` in place.
    pub fn scale(&mut self, factor: f32) {
        for (_, grad) in &mut self.entries {
            for v in grad.as_mut_slice() {
                *v *= factor;
            }
        }
    }

    /// The gradient recorded for `parameter`, if any.
    pub fn get(&self, parameter: &Parameter) -> Option<&Tensor> {
        self.index
            .get(&parameter.key())
            .map(|&i| &self.entries[i].1)
    }

    /// Accumulates every gradient into its parameter's shared gradient
    /// storage (the form optimizers consume).
    pub fn apply(&self) {
        for (parameter, grad) in &self.entries {
            parameter.accumulate_grad(grad);
        }
    }

    /// Iterates over `(parameter, gradient)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&Parameter, &Tensor)> {
        self.entries.iter().map(|(p, g)| (p, g))
    }
}

// ---------------------------------------------------------------------------
// Tape
// ---------------------------------------------------------------------------

/// Operation recorded on the tape; indices refer to parent nodes.
enum Op {
    Constant,
    Param(Parameter),
    MatMul(usize, usize),
    Add(usize, usize),
    AddRow(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Neg(usize),
    Exp(usize),
    Ln(usize),
    Tanh(usize),
    Relu(usize),
    Sigmoid(usize),
    Square(usize),
    Scale(usize, f32),
    AddScalar(usize),
    MulConst(usize, Tensor),
    Sum(usize),
    Mean(usize),
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

#[derive(Default)]
struct TapeInner {
    nodes: Vec<Node>,
}

/// A recording of a differentiable computation.
///
/// Create one tape per forward pass, build the computation with [`Var`]
/// methods, then call [`Var::backward`] on the (scalar) loss.
#[derive(Clone)]
pub struct Tape {
    inner: Rc<RefCell<TapeInner>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tape({} nodes)", self.inner.borrow().nodes.len())
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape {
            inner: Rc::new(RefCell::new(TapeInner::default())),
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Returns `true` if no operations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, value: Tensor, op: Op) -> Var {
        let mut inner = self.inner.borrow_mut();
        let id = inner.nodes.len();
        inner.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var {
            tape: self.clone(),
            id,
        }
    }

    /// Registers a constant (non-differentiable) tensor on the tape.
    pub fn constant(&self, value: Tensor) -> Var {
        self.push(value, Op::Constant)
    }

    /// Registers a trainable parameter on the tape. Gradients flowing into
    /// this node during [`Var::backward`] are accumulated into the parameter.
    pub fn param(&self, parameter: &Parameter) -> Var {
        self.push(parameter.value(), Op::Param(parameter.clone()))
    }
}

// ---------------------------------------------------------------------------
// Var
// ---------------------------------------------------------------------------

/// A handle to a node on a [`Tape`].
///
/// All arithmetic methods record a new node and return its handle. `Var` is
/// cheap to clone (it is an index plus a reference-counted tape handle).
#[derive(Clone)]
pub struct Var {
    tape: Tape,
    id: usize,
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var(id={}, shape={:?})", self.id, self.value().shape())
    }
}

impl Var {
    /// Returns a copy of this node's value.
    pub fn value(&self) -> Tensor {
        self.tape.inner.borrow().nodes[self.id].value.clone()
    }

    /// Shape of this node's value.
    pub fn shape(&self) -> (usize, usize) {
        let inner = self.tape.inner.borrow();
        inner.nodes[self.id].value.shape()
    }

    /// Returns the gradient computed for this node by the last
    /// [`Var::backward`] call, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.tape.inner.borrow().nodes[self.id].grad.clone()
    }

    fn same_tape(&self, other: &Var) {
        assert!(
            Rc::ptr_eq(&self.tape.inner, &other.tape.inner),
            "variables belong to different tapes"
        );
    }

    fn unary(&self, value: Tensor, op: Op) -> Var {
        self.tape.push(value, op)
    }

    // -- binary ops --------------------------------------------------------

    /// Matrix product `self × other`.
    pub fn matmul(&self, other: &Var) -> Var {
        self.same_tape(other);
        let value = self.value().matmul(&other.value());
        self.tape.push(value, Op::MatMul(self.id, other.id))
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Var) -> Var {
        self.same_tape(other);
        let value = self.value().add(&other.value());
        self.tape.push(value, Op::Add(self.id, other.id))
    }

    /// Adds a `1 × cols` bias row vector to every row of `self`.
    pub fn add_row(&self, bias: &Var) -> Var {
        self.same_tape(bias);
        let value = self.value().add_row_broadcast(&bias.value());
        self.tape.push(value, Op::AddRow(self.id, bias.id))
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Var) -> Var {
        self.same_tape(other);
        let value = self.value().sub(&other.value());
        self.tape.push(value, Op::Sub(self.id, other.id))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Var) -> Var {
        self.same_tape(other);
        let value = self.value().mul(&other.value());
        self.tape.push(value, Op::Mul(self.id, other.id))
    }

    // -- unary ops ----------------------------------------------------------

    /// Elementwise negation.
    pub fn neg(&self) -> Var {
        self.unary(self.value().neg(), Op::Neg(self.id))
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        self.unary(self.value().exp(), Op::Exp(self.id))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Var {
        self.unary(self.value().ln(), Op::Ln(self.id))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        self.unary(self.value().tanh(), Op::Tanh(self.id))
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&self) -> Var {
        self.unary(self.value().relu(), Op::Relu(self.id))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        self.unary(self.value().sigmoid(), Op::Sigmoid(self.id))
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        self.unary(self.value().square(), Op::Square(self.id))
    }

    /// Multiplies every element by a scalar constant.
    pub fn scale(&self, factor: f32) -> Var {
        self.unary(self.value().scale(factor), Op::Scale(self.id, factor))
    }

    /// Adds a scalar constant to every element.
    pub fn add_scalar(&self, value: f32) -> Var {
        self.unary(self.value().add_scalar(value), Op::AddScalar(self.id))
    }

    /// Elementwise product with a constant tensor (e.g. a binary mask).
    ///
    /// The constant is not differentiated through.
    pub fn mul_const(&self, constant: &Tensor) -> Var {
        let value = self.value().mul(constant);
        self.unary(value, Op::MulConst(self.id, constant.clone()))
    }

    // -- reductions ---------------------------------------------------------

    /// Sum of all elements (produces a `1 × 1` node).
    pub fn sum(&self) -> Var {
        self.unary(Tensor::scalar(self.value().sum()), Op::Sum(self.id))
    }

    /// Mean of all elements (produces a `1 × 1` node).
    pub fn mean(&self) -> Var {
        self.unary(Tensor::scalar(self.value().mean()), Op::Mean(self.id))
    }

    // -- backward -----------------------------------------------------------

    /// Runs reverse-mode differentiation from this node.
    ///
    /// The node is seeded with a gradient of ones (it is normally a `1 × 1`
    /// loss). Gradients are accumulated into every [`Parameter`] leaf that
    /// participated in the computation.
    ///
    /// # Panics
    ///
    /// Panics if any intermediate gradient has an unexpected shape, which
    /// indicates a bug in an operation's gradient rule.
    pub fn backward(&self) {
        self.backprop(|parameter, grad| parameter.accumulate_grad(grad));
    }

    /// Runs reverse-mode differentiation from this node, collecting the
    /// parameter gradients into a detached [`GradBatch`] instead of
    /// accumulating them into the shared parameter storage.
    ///
    /// This is the entry point for data-parallel gradient workers: each
    /// worker differentiates its own tape privately, and the resulting
    /// batches are merged in a fixed order so the reduction is independent
    /// of thread scheduling and worker count.
    pub fn backward_grads(&self) -> GradBatch {
        let mut batch = GradBatch::new();
        self.backprop(|parameter, grad| batch.accumulate(parameter, grad));
        batch
    }

    /// The shared reverse traversal behind [`backward`](Self::backward) and
    /// [`backward_grads`](Self::backward_grads); `sink` receives every
    /// parameter-leaf gradient.
    fn backprop(&self, mut sink: impl FnMut(&Parameter, &Tensor)) {
        let mut inner = self.tape.inner.borrow_mut();
        let n = inner.nodes.len();
        // Reset gradients from any previous backward pass on this tape.
        for node in inner.nodes.iter_mut() {
            node.grad = None;
        }
        let (r, c) = inner.nodes[self.id].value.shape();
        inner.nodes[self.id].grad = Some(Tensor::ones(r, c));

        for id in (0..n).rev() {
            let grad = match inner.nodes[id].grad.clone() {
                Some(g) => g,
                None => continue,
            };
            // Collect the (parent, contribution) pairs for this node.
            let mut contributions: Vec<(usize, Tensor)> = Vec::new();
            match &inner.nodes[id].op {
                Op::Constant => {}
                Op::Param(p) => sink(p, &grad),
                Op::MatMul(a, b) => {
                    let a_val = inner.nodes[*a].value.clone();
                    let b_val = inner.nodes[*b].value.clone();
                    contributions.push((*a, grad.matmul(&b_val.transpose())));
                    contributions.push((*b, a_val.transpose().matmul(&grad)));
                }
                Op::Add(a, b) => {
                    contributions.push((*a, grad.clone()));
                    contributions.push((*b, grad));
                }
                Op::AddRow(a, b) => {
                    contributions.push((*a, grad.clone()));
                    contributions.push((*b, grad.sum_cols()));
                }
                Op::Sub(a, b) => {
                    contributions.push((*a, grad.clone()));
                    contributions.push((*b, grad.neg()));
                }
                Op::Mul(a, b) => {
                    let a_val = inner.nodes[*a].value.clone();
                    let b_val = inner.nodes[*b].value.clone();
                    contributions.push((*a, grad.mul(&b_val)));
                    contributions.push((*b, grad.mul(&a_val)));
                }
                Op::Neg(a) => contributions.push((*a, grad.neg())),
                Op::Exp(a) => {
                    let out = inner.nodes[id].value.clone();
                    contributions.push((*a, grad.mul(&out)));
                }
                Op::Ln(a) => {
                    let x = inner.nodes[*a].value.clone();
                    contributions.push((*a, grad.div(&x)));
                }
                Op::Tanh(a) => {
                    let out = inner.nodes[id].value.clone();
                    let one_minus = out.square().neg().add_scalar(1.0);
                    contributions.push((*a, grad.mul(&one_minus)));
                }
                Op::Relu(a) => {
                    let x = inner.nodes[*a].value.clone();
                    let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    contributions.push((*a, grad.mul(&mask)));
                }
                Op::Sigmoid(a) => {
                    let out = inner.nodes[id].value.clone();
                    let d = out.mul(&out.neg().add_scalar(1.0));
                    contributions.push((*a, grad.mul(&d)));
                }
                Op::Square(a) => {
                    let x = inner.nodes[*a].value.clone();
                    contributions.push((*a, grad.mul(&x.scale(2.0))));
                }
                Op::Scale(a, f) => contributions.push((*a, grad.scale(*f))),
                Op::AddScalar(a) => contributions.push((*a, grad)),
                Op::MulConst(a, constant) => contributions.push((*a, grad.mul(constant))),
                Op::Sum(a) => {
                    let (r, c) = inner.nodes[*a].value.shape();
                    let g = grad.get(0, 0);
                    contributions.push((*a, Tensor::full(r, c, g)));
                }
                Op::Mean(a) => {
                    let (r, c) = inner.nodes[*a].value.shape();
                    let g = grad.get(0, 0) / (r * c) as f32;
                    contributions.push((*a, Tensor::full(r, c, g)));
                }
            }
            for (parent, contribution) in contributions {
                match &mut inner.nodes[parent].grad {
                    Some(existing) => existing.add_assign(&contribution),
                    slot @ None => *slot = Some(contribution),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    /// Numerically estimates d loss / d param[i][j] by central differences.
    fn finite_diff(
        param: &Parameter,
        loss_fn: &dyn Fn() -> f32,
        row: usize,
        col: usize,
        eps: f32,
    ) -> f32 {
        let original = param.value();
        let mut plus = original.clone();
        plus.set(row, col, original.get(row, col) + eps);
        param.set_value(plus);
        let loss_plus = loss_fn();
        let mut minus = original.clone();
        minus.set(row, col, original.get(row, col) - eps);
        param.set_value(minus);
        let loss_minus = loss_fn();
        param.set_value(original);
        (loss_plus - loss_minus) / (2.0 * eps)
    }

    #[test]
    fn parameter_accumulates_and_zeroes_grad() {
        let p = Parameter::new(Tensor::zeros(2, 2), "w");
        p.accumulate_grad(&Tensor::ones(2, 2));
        p.accumulate_grad(&Tensor::ones(2, 2));
        assert_eq!(p.grad().sum(), 8.0);
        p.zero_grad();
        assert_eq!(p.grad().sum(), 0.0);
    }

    #[test]
    fn parameter_ptr_eq_distinguishes_handles() {
        let p = Parameter::new(Tensor::zeros(1, 1), "a");
        let q = p.clone();
        let r = Parameter::new(Tensor::zeros(1, 1), "a");
        assert!(p.ptr_eq(&q));
        assert!(!p.ptr_eq(&r));
    }

    #[test]
    #[should_panic(expected = "shape cannot change")]
    fn parameter_rejects_shape_change() {
        let p = Parameter::new(Tensor::zeros(2, 2), "w");
        p.set_value(Tensor::zeros(3, 3));
    }

    #[test]
    fn simple_chain_gradient() {
        // loss = mean((x * 3 + 1)^2), x = [1, 2]
        let tape = Tape::new();
        let p = Parameter::new(Tensor::row(&[1.0, 2.0]), "x");
        let x = tape.param(&p);
        let y = x.scale(3.0).add_scalar(1.0).square().mean();
        y.backward();
        // d/dx_i mean((3x+1)^2) = (1/N) * 2 * 3 * (3x_i+1) = 3*(3x_i+1) for N=2.
        let grad = p.grad();
        assert!((grad.get(0, 0) - 3.0 * 4.0).abs() < 1e-5);
        assert!((grad.get(0, 1) - 3.0 * 7.0).abs() < 1e-5);
    }

    #[test]
    fn matmul_gradcheck() {
        let mut r = rng();
        let w = Parameter::new(Tensor::randn(3, 2, &mut r), "w");
        let x = Tensor::randn(4, 3, &mut r);

        let loss_fn = {
            let w = w.clone();
            let x = x.clone();
            move || {
                let tape = Tape::new();
                let xv = tape.constant(x.clone());
                let wv = tape.param(&w);
                xv.matmul(&wv).square().sum().value().get(0, 0)
            }
        };

        // Analytic gradient.
        let tape = Tape::new();
        let xv = tape.constant(x.clone());
        let wv = tape.param(&w);
        w.zero_grad();
        xv.matmul(&wv).square().sum().backward();
        let analytic = w.grad();

        for row in 0..3 {
            for col in 0..2 {
                let numeric = finite_diff(&w, &loss_fn, row, col, 1e-2);
                let a = analytic.get(row, col);
                assert!(
                    (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "grad mismatch at ({row},{col}): analytic={a}, numeric={numeric}"
                );
            }
        }
    }

    #[test]
    fn nonlinearity_gradcheck() {
        let mut r = rng();
        let w = Parameter::new(Tensor::randn(1, 5, &mut r), "w");

        let loss_fn = {
            let w = w.clone();
            move || {
                let tape = Tape::new();
                let wv = tape.param(&w);
                wv.tanh()
                    .mul(&wv.sigmoid())
                    .add(&wv.relu())
                    .exp()
                    .mean()
                    .value()
                    .get(0, 0)
            }
        };

        let tape = Tape::new();
        let wv = tape.param(&w);
        w.zero_grad();
        wv.tanh()
            .mul(&wv.sigmoid())
            .add(&wv.relu())
            .exp()
            .mean()
            .backward();
        let analytic = w.grad();

        for col in 0..5 {
            let numeric = finite_diff(&w, &loss_fn, 0, col, 1e-3);
            let a = analytic.get(0, col);
            assert!(
                (a - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                "grad mismatch at col {col}: analytic={a}, numeric={numeric}"
            );
        }
    }

    #[test]
    fn mul_const_masks_gradient() {
        let p = Parameter::new(Tensor::row(&[1.0, 2.0, 3.0]), "p");
        let mask = Tensor::row(&[1.0, 0.0, 1.0]);
        let tape = Tape::new();
        let x = tape.param(&p);
        x.mul_const(&mask).sum().backward();
        assert_eq!(p.grad().as_slice(), &[1.0, 0.0, 1.0]);
    }

    #[test]
    fn add_row_broadcast_gradient_sums_over_batch() {
        let bias = Parameter::new(Tensor::row(&[0.0, 0.0]), "b");
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones(4, 2));
        let b = tape.param(&bias);
        x.add_row(&b).sum().backward();
        // Each bias element receives a gradient contribution from all 4 rows.
        assert_eq!(bias.grad().as_slice(), &[4.0, 4.0]);
    }

    #[test]
    fn sub_and_neg_gradients() {
        let p = Parameter::new(Tensor::row(&[2.0, 4.0]), "p");
        let tape = Tape::new();
        let x = tape.param(&p);
        let y = tape.constant(Tensor::row(&[1.0, 1.0]));
        y.sub(&x).sum().backward();
        assert_eq!(p.grad().as_slice(), &[-1.0, -1.0]);

        p.zero_grad();
        let tape = Tape::new();
        let x = tape.param(&p);
        x.neg().sum().backward();
        assert_eq!(p.grad().as_slice(), &[-1.0, -1.0]);
    }

    #[test]
    fn ln_gradient() {
        let p = Parameter::new(Tensor::row(&[2.0, 4.0]), "p");
        let tape = Tape::new();
        let x = tape.param(&p);
        x.ln().sum().backward();
        let g = p.grad();
        assert!((g.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((g.get(0, 1) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let p = Parameter::new(Tensor::row(&[1.0]), "p");
        for _ in 0..3 {
            let tape = Tape::new();
            let x = tape.param(&p);
            x.scale(2.0).sum().backward();
        }
        assert_eq!(p.grad().get(0, 0), 6.0);
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // y = x*x + x  => dy/dx = 2x + 1
        let p = Parameter::new(Tensor::row(&[3.0]), "p");
        let tape = Tape::new();
        let x = tape.param(&p);
        let y = x.mul(&x).add(&x).sum();
        y.backward();
        assert!((p.grad().get(0, 0) - 7.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "different tapes")]
    fn mixing_tapes_panics() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.constant(Tensor::ones(1, 1));
        let b = t2.constant(Tensor::ones(1, 1));
        let _ = a.add(&b);
    }

    #[test]
    fn tape_len_tracks_nodes() {
        let tape = Tape::new();
        assert!(tape.is_empty());
        let a = tape.constant(Tensor::ones(1, 1));
        let _ = a.exp();
        assert_eq!(tape.len(), 2);
    }

    #[test]
    fn var_debug_contains_shape() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::ones(2, 3));
        assert!(format!("{a:?}").contains("(2, 3)"));
    }

    #[test]
    fn parameter_key_tracks_identity() {
        let p = Parameter::new(Tensor::zeros(1, 1), "a");
        let q = p.clone();
        let r = Parameter::new(Tensor::zeros(1, 1), "a");
        assert_eq!(p.key(), q.key());
        assert_ne!(p.key(), r.key());
    }

    #[test]
    fn backward_grads_matches_backward_bitwise() {
        let mut r = rng();
        let w = Parameter::new(Tensor::randn(3, 2, &mut r), "w");
        let x = Tensor::randn(4, 3, &mut r);

        // Reference: shared-accumulation backward.
        w.zero_grad();
        let tape = Tape::new();
        let out = tape.constant(x.clone()).matmul(&tape.param(&w));
        out.square().sum().backward();
        let reference = w.grad();
        w.zero_grad();

        // Detached collection must produce the identical tensor and leave
        // the parameter's shared gradient untouched.
        let tape = Tape::new();
        let out = tape.constant(x).matmul(&tape.param(&w));
        let batch = out.square().sum().backward_grads();
        assert_eq!(w.grad().sum(), 0.0);
        assert_eq!(batch.len(), 1);
        let collected = batch.get(&w).expect("gradient for w");
        assert_eq!(collected.as_slice(), reference.as_slice());

        // Applying the batch reproduces the shared-accumulation state.
        batch.apply();
        assert_eq!(w.grad().as_slice(), reference.as_slice());
    }

    #[test]
    fn backward_grads_dedupes_repeated_registration() {
        // The same parameter registered twice on one tape accumulates both
        // path gradients into a single entry.
        let p = Parameter::new(Tensor::row(&[2.0]), "p");
        let tape = Tape::new();
        let a = tape.param(&p);
        let b = tape.param(&p);
        let batch = a.mul(&b).sum().backward_grads();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.get(&p).unwrap().get(0, 0), 4.0);
    }

    #[test]
    fn grad_batch_merge_and_scale() {
        let p = Parameter::new(Tensor::row(&[0.0, 0.0]), "p");
        let q = Parameter::new(Tensor::row(&[0.0]), "q");
        let mut total = GradBatch::new();
        let mut part = GradBatch::new();
        total.accumulate(&p, &Tensor::row(&[1.0, 2.0]));
        part.accumulate(&p, &Tensor::row(&[0.5, 0.5]));
        part.accumulate(&q, &Tensor::row(&[3.0]));
        total.merge(&part);
        total.scale(2.0);
        assert_eq!(total.len(), 2);
        assert_eq!(total.get(&p).unwrap().as_slice(), &[3.0, 5.0]);
        assert_eq!(total.get(&q).unwrap().as_slice(), &[6.0]);
        assert_eq!(total.iter().count(), 2);
        assert!(!total.is_empty());
        assert!(GradBatch::new().is_empty());
    }
}
