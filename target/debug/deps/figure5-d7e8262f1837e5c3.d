/root/repo/target/debug/deps/figure5-d7e8262f1837e5c3.d: crates/bench/src/bin/figure5.rs Cargo.toml

/root/repo/target/debug/deps/libfigure5-d7e8262f1837e5c3.rmeta: crates/bench/src/bin/figure5.rs Cargo.toml

crates/bench/src/bin/figure5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
