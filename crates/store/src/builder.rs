//! Bounded-memory streaming construction of `PFDIGEST v1` artifacts.
//!
//! The builder ingests an arbitrarily large password or digest stream —
//! wordlists, attack guess streams — while holding at most
//! `memory_records` records in RAM. When the in-memory buffer fills it is
//! sorted, duplicate digests are merged (counts summed) and the run is
//! spilled to a scratch file; [`DigestStoreBuilder::finish`] then k-way
//! merges every run plus the final buffer straight into the
//! [`crate::format::ArtifactWriter`]. This is a classic
//! external merge sort, so build memory is bounded by the spill threshold
//! regardless of input size, and the resulting artifact is byte-identical
//! to what an unbounded in-memory build would produce.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::format::{format_err, ArtifactWriter, DigestConfig, DigestStats, RawDigest, Result};
use crate::io::{FaultyWrite, ScratchFile};
use crate::merge::{merge_sources, KeyedSource};
use crate::sha1;

/// Default spill threshold: ~28 MB of buffered records.
pub const DEFAULT_MEMORY_RECORDS: usize = 1 << 20;

/// Monotonic suffix so concurrent builders never collide on scratch names.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Next unique scratch-run sequence number (shared by every builder in the
/// crate, so digest and guess runs never collide either).
pub(crate) fn next_run_seq() -> u64 {
    RUN_SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Streaming artifact builder with external-merge-sort spills.
///
/// Every spill run lives behind a `ScratchFile` drop-guard, so runs are
/// unlinked when the builder goes away on *any* path — normal completion,
/// a spill dying mid-write, or the final k-way merge failing.
pub struct DigestStoreBuilder {
    config: DigestConfig,
    memory_records: usize,
    scratch_dir: PathBuf,
    buffer: Vec<(RawDigest, u64)>,
    runs: Vec<ScratchFile>,
    ingested: u64,
    /// Chaos seam: `(nth_spill, byte_budget)` — the nth spill (0-based)
    /// writes through a [`FaultyWrite`] capped at `byte_budget` bytes.
    spill_fault: Option<(u64, u64)>,
    spills: u64,
}

impl DigestStoreBuilder {
    /// Creates a builder; scratch runs default to [`std::env::temp_dir`].
    pub fn new(config: DigestConfig) -> DigestStoreBuilder {
        DigestStoreBuilder {
            config,
            memory_records: DEFAULT_MEMORY_RECORDS,
            scratch_dir: std::env::temp_dir(),
            buffer: Vec::new(),
            runs: Vec::new(),
            ingested: 0,
            spill_fault: None,
            spills: 0,
        }
    }

    /// Caps in-memory buffered records before a sorted run is spilled.
    #[must_use]
    pub fn with_memory_records(mut self, n: usize) -> DigestStoreBuilder {
        self.memory_records = n.max(1);
        self
    }

    /// Directory for spilled sorted runs (must exist and be writable).
    #[must_use]
    pub fn with_scratch_dir(mut self, dir: impl Into<PathBuf>) -> DigestStoreBuilder {
        self.scratch_dir = dir.into();
        self
    }

    /// Chaos seam: make the `nth` spill (0-based) fail after `byte_budget`
    /// bytes. The chaos suite uses this to prove spill files never outlive
    /// a builder whose write path died.
    #[must_use]
    pub fn with_injected_spill_fault(mut self, nth: u64, byte_budget: u64) -> DigestStoreBuilder {
        self.spill_fault = Some((nth, byte_budget));
        self
    }

    /// Records ingested so far (pre-dedup).
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Ingests one password (count 1); duplicates accumulate.
    ///
    /// # Errors
    ///
    /// Spill I/O failures.
    pub fn add_password(&mut self, password: &str) -> Result<()> {
        self.add_digest(&sha1::password_digest(password), 1)
    }

    /// Ingests a raw digest with an explicit count (full or pre-truncated;
    /// only the first `digest_bytes` are significant).
    ///
    /// # Errors
    ///
    /// Spill I/O failures, or a digest shorter than the store width.
    pub fn add_digest(&mut self, digest: &[u8], count: u64) -> Result<()> {
        if digest.len() < self.config.digest_bytes {
            return format_err(format!(
                "digest is {} bytes, store needs at least {}",
                digest.len(),
                self.config.digest_bytes
            ));
        }
        self.buffer.push((
            crate::format::truncate_digest(digest, self.config.digest_bytes),
            count.max(1),
        ));
        self.ingested += 1;
        if self.buffer.len() >= self.memory_records {
            self.spill()?;
        }
        Ok(())
    }

    /// Ingests every non-empty line of a wordlist reader as one password.
    ///
    /// # Errors
    ///
    /// Read or spill failures.
    pub fn add_wordlist(&mut self, reader: impl BufRead) -> Result<u64> {
        let mut added = 0u64;
        for line in reader.lines() {
            let line = line?;
            if !line.is_empty() {
                self.add_password(&line)?;
                added += 1;
            }
        }
        Ok(added)
    }

    /// Sorts and dedups `buffer` in place (counts summed, saturating).
    fn compact(buffer: &mut Vec<(RawDigest, u64)>) {
        buffer.sort_unstable_by_key(|r| r.0);
        buffer.dedup_by(|next, kept| {
            if next.0 == kept.0 {
                kept.1 = kept.1.saturating_add(next.1);
                true
            } else {
                false
            }
        });
    }

    /// Spills the compacted buffer as one sorted run file.
    fn spill(&mut self) -> Result<()> {
        Self::compact(&mut self.buffer);
        if self.buffer.is_empty() {
            return Ok(());
        }
        let seq = next_run_seq();
        let path = self
            .scratch_dir
            .join(format!("pfdigest-run-{}-{seq}.tmp", std::process::id()));
        // Guard before create: a write failure below (or any later error
        // in the builder's life) unlinks the partial run on drop.
        let guard = ScratchFile::new(path);
        let file = File::create(guard.path())?;
        let fault = self.spill_fault.filter(|&(nth, _)| nth == self.spills);
        self.spills += 1;
        let db = self.config.digest_bytes;
        let buffer = &self.buffer;
        let write_records = |out: &mut dyn Write| -> Result<()> {
            for (digest, count) in buffer {
                out.write_all(&digest[..db])?;
                out.write_all(&count.to_le_bytes())?;
            }
            out.flush()?;
            Ok(())
        };
        match fault {
            Some((_, budget)) => {
                write_records(&mut BufWriter::new(FaultyWrite::new(file, budget)))?;
            }
            None => write_records(&mut BufWriter::new(file))?,
        }
        self.buffer.clear();
        self.runs.push(guard);
        Ok(())
    }

    /// Merges all spilled runs plus the live buffer into the artifact at
    /// `path`, returning its stats. Consumes the builder; scratch runs are
    /// deleted afterwards.
    ///
    /// # Errors
    ///
    /// I/O failures at any stage; the target path is written atomically.
    pub fn finish(mut self, path: impl AsRef<Path>) -> Result<DigestStats> {
        Self::compact(&mut self.buffer);
        let buffer = std::mem::take(&mut self.buffer);
        let db = self.config.digest_bytes;

        let mut sources: Vec<Box<dyn KeyedSource<RawDigest>>> =
            Vec::with_capacity(self.runs.len() + 1);
        for run in &self.runs {
            sources.push(Box::new(RunReader {
                reader: BufReader::new(File::open(run.path())?),
                digest_bytes: db,
            }));
        }
        sources.push(Box::new(VecSource {
            iter: buffer.into_iter(),
        }));

        let mut writer = ArtifactWriter::create(path, self.config)?;
        merge_sources(sources, &mut writer)?;
        writer.finish()
        // `self` drops here; the ScratchFile guards remove the run files.
    }
}

/// A spilled sorted run: fixed-size `digest_bytes + 8` records.
struct RunReader {
    reader: BufReader<File>,
    digest_bytes: usize,
}

impl KeyedSource<RawDigest> for RunReader {
    fn next_record(&mut self) -> Result<Option<(RawDigest, u64)>> {
        let mut digest = [0u8; sha1::DIGEST_LEN];
        match self.reader.read_exact(&mut digest[..self.digest_bytes]) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let mut count = [0u8; 8];
        self.reader.read_exact(&mut count)?;
        Ok(Some((digest, u64::from_le_bytes(count))))
    }
}

/// The final in-memory buffer as a merge source.
struct VecSource {
    iter: std::vec::IntoIter<(RawDigest, u64)>,
}

impl KeyedSource<RawDigest> for VecSource {
    fn next_record(&mut self) -> Result<Option<(RawDigest, u64)>> {
        Ok(self.iter.next())
    }
}
