//! Model persistence: saving and loading trained flows and checkpoints.
//!
//! Two formats share one self-describing text layout (weights are stored as
//! hexadecimal IEEE-754 bit patterns, so every round trip is bit-exact and
//! checkpoints stay inspectable and diff-able with no extra serialization
//! dependency):
//!
//! * `PASSFLOW v1` — architecture + weights. Written by [`save_flow`];
//!   still fully readable for backward compatibility.
//! * `PASSFLOW v2` — everything in v1 plus an optional training-state
//!   section: the [`TrainConfig`], the position in the run, the Adam
//!   moments and step count, the best-epoch selection (metric + weight
//!   snapshot), the early-stop counter and the epoch history. Written by
//!   [`save_checkpoint`]; a killed training run resumes **bit-exactly**
//!   from it ([`Trainer::resume`](crate::Trainer::resume)). The RNG needs
//!   no serialized internals: training randomness is drawn from streams
//!   keyed by `(seed, epoch, batch)`, so the epoch ordinal stored here *is*
//!   the RNG state.
//!
//! ```text
//! PASSFLOW v2
//! max_len 10
//! coupling_layers 18
//! hidden_size 256
//! residual_blocks 2
//! masking char-run 1
//! tensors 216
//! tensor 10 256
//! 3f800000 bf000000 …
//! …
//! train_state 1
//! seed 0
//! …
//! adam_moments 432
//! tensor 10 256
//! …
//! ```

use std::fs;
use std::io::{BufRead, BufReader, Lines, Read, Write};
use std::path::Path;

use rand::SeedableRng;

use passflow_nn::{AdamState, Tensor};

use crate::config::{FlowConfig, TrainConfig};
use crate::error::{FlowError, Result};
use crate::flow::PassFlow;
use crate::mask::MaskStrategy;
use crate::train::{EarlyStopConfig, EpochStats, Schedule, TrainState};

const MAGIC_V1: &str = "PASSFLOW v1";
const MAGIC_V2: &str = "PASSFLOW v2";

fn io_err(e: std::io::Error) -> FlowError {
    FlowError::IncompatibleWeights(format!("write failed: {e}"))
}

fn masking_to_string(masking: MaskStrategy) -> String {
    match masking {
        MaskStrategy::CharRun(m) => format!("char-run {m}"),
        MaskStrategy::Horizontal => "horizontal".to_string(),
    }
}

fn masking_from_string(text: &str) -> Result<MaskStrategy> {
    let text = text.trim();
    if text == "horizontal" {
        return Ok(MaskStrategy::Horizontal);
    }
    if let Some(rest) = text.strip_prefix("char-run ") {
        let m: usize = rest
            .trim()
            .parse()
            .map_err(|_| FlowError::IncompatibleWeights(format!("bad masking {text:?}")))?;
        return Ok(MaskStrategy::CharRun(m));
    }
    Err(FlowError::IncompatibleWeights(format!(
        "unknown masking strategy {text:?}"
    )))
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_flow_header<W: Write>(flow: &PassFlow, magic: &str, writer: &mut W) -> Result<()> {
    let config = flow.config();
    writeln!(writer, "{magic}").map_err(io_err)?;
    writeln!(writer, "max_len {}", config.max_len).map_err(io_err)?;
    writeln!(writer, "coupling_layers {}", config.coupling_layers).map_err(io_err)?;
    writeln!(writer, "hidden_size {}", config.hidden_size).map_err(io_err)?;
    writeln!(writer, "residual_blocks {}", config.residual_blocks).map_err(io_err)?;
    writeln!(writer, "masking {}", masking_to_string(config.masking)).map_err(io_err)?;
    Ok(())
}

fn write_tensor_block<W: Write>(tensor: &Tensor, writer: &mut W) -> Result<()> {
    writeln!(writer, "tensor {} {}", tensor.rows(), tensor.cols()).map_err(io_err)?;
    let words: Vec<String> = tensor
        .as_slice()
        .iter()
        .map(|v| format!("{:08x}", v.to_bits()))
        .collect();
    writeln!(writer, "{}", words.join(" ")).map_err(io_err)
}

fn write_tensors<W: Write>(label: &str, tensors: &[Tensor], writer: &mut W) -> Result<()> {
    writeln!(writer, "{label} {}", tensors.len()).map_err(io_err)?;
    for tensor in tensors {
        write_tensor_block(tensor, writer)?;
    }
    Ok(())
}

fn f32_hex(value: f32) -> String {
    format!("{:08x}", value.to_bits())
}

fn schedule_to_string(schedule: Schedule) -> String {
    match schedule {
        Schedule::Constant => "constant".to_string(),
        Schedule::Step { every, gamma } => format!("step {every} {}", f32_hex(gamma)),
        Schedule::WarmupCosine {
            warmup,
            period,
            min_factor,
        } => format!("warmup-cosine {warmup} {period} {}", f32_hex(min_factor)),
    }
}

/// Serializes a flow's architecture and weights to a writer (`PASSFLOW v1`,
/// the weights-only format).
///
/// # Errors
///
/// Returns [`FlowError::IncompatibleWeights`] wrapping any I/O failure.
pub fn save_flow_to_writer<W: Write>(flow: &PassFlow, writer: &mut W) -> Result<()> {
    write_flow_header(flow, MAGIC_V1, writer)?;
    write_tensors("tensors", &flow.weight_snapshot(), writer)
}

/// Saves a flow to a file. See [`save_flow_to_writer`] for the format.
///
/// # Errors
///
/// Returns [`FlowError::IncompatibleWeights`] wrapping any I/O failure.
pub fn save_flow(flow: &PassFlow, path: impl AsRef<Path>) -> Result<()> {
    let file = fs::File::create(path.as_ref())
        .map_err(|e| FlowError::IncompatibleWeights(format!("cannot create file: {e}")))?;
    let mut writer = std::io::BufWriter::new(file);
    save_flow_to_writer(flow, &mut writer)?;
    writer.flush().map_err(io_err)
}

/// Serializes a `PASSFLOW v2` checkpoint: the flow plus, when given, the
/// full mid-run training state needed for bit-exact resume.
///
/// # Errors
///
/// Returns [`FlowError::IncompatibleWeights`] wrapping any I/O failure.
pub fn save_checkpoint_to_writer<W: Write>(
    flow: &PassFlow,
    state: Option<&TrainState>,
    writer: &mut W,
) -> Result<()> {
    write_flow_header(flow, MAGIC_V2, writer)?;
    write_tensors("tensors", &flow.weight_snapshot(), writer)?;
    let Some(state) = state else {
        writeln!(writer, "train_state 0").map_err(io_err)?;
        return Ok(());
    };
    writeln!(writer, "train_state 1").map_err(io_err)?;
    let c = &state.config;
    writeln!(writer, "seed {}", c.seed).map_err(io_err)?;
    writeln!(writer, "epochs {}", c.epochs).map_err(io_err)?;
    writeln!(writer, "batch_size {}", c.batch_size).map_err(io_err)?;
    writeln!(writer, "micro_batch {}", c.micro_batch).map_err(io_err)?;
    writeln!(writer, "grad_workers {}", c.grad_workers).map_err(io_err)?;
    writeln!(writer, "accum_steps {}", c.accum_steps).map_err(io_err)?;
    writeln!(writer, "learning_rate {}", f32_hex(c.learning_rate)).map_err(io_err)?;
    writeln!(writer, "schedule {}", schedule_to_string(c.schedule)).map_err(io_err)?;
    writeln!(writer, "dequantization {}", f32_hex(c.dequantization)).map_err(io_err)?;
    match c.clip_norm {
        Some(clip) => writeln!(writer, "clip_norm {}", f32_hex(clip)).map_err(io_err)?,
        None => writeln!(writer, "clip_norm none").map_err(io_err)?,
    }
    writeln!(
        writer,
        "validation_fraction {}",
        f32_hex(c.validation_fraction)
    )
    .map_err(io_err)?;
    match c.early_stop {
        Some(rule) => writeln!(
            writer,
            "early_stop {} {}",
            rule.patience,
            f32_hex(rule.min_delta)
        )
        .map_err(io_err)?,
        None => writeln!(writer, "early_stop none").map_err(io_err)?,
    }
    writeln!(writer, "checkpoint_every {}", c.checkpoint_every).map_err(io_err)?;
    writeln!(writer, "next_epoch {}", state.next_epoch).map_err(io_err)?;
    writeln!(writer, "steps {}", state.steps).map_err(io_err)?;
    writeln!(writer, "best_epoch {}", state.best_epoch).map_err(io_err)?;
    writeln!(writer, "best_metric {}", f32_hex(state.best_metric)).map_err(io_err)?;
    writeln!(writer, "stale_epochs {}", state.stale_epochs).map_err(io_err)?;
    writeln!(writer, "stopped {}", u8::from(state.stopped)).map_err(io_err)?;
    writeln!(writer, "corpus_digest {:016x}", state.corpus_digest).map_err(io_err)?;
    writeln!(writer, "adam_step_count {}", state.optimizer.step_count).map_err(io_err)?;
    let moment_tensors: Vec<Tensor> = state
        .optimizer
        .moments
        .iter()
        .flat_map(|(m, v)| [m.clone(), v.clone()])
        .collect();
    write_tensors("adam_moments", &moment_tensors, writer)?;
    write_tensors("best_weights", &state.best_weights, writer)?;
    writeln!(writer, "history {}", state.history.len()).map_err(io_err)?;
    for e in &state.history {
        let val = match e.val_nll {
            Some(v) => f32_hex(v),
            None => "none".to_string(),
        };
        writeln!(
            writer,
            "epoch {} train {} val {} lr {}",
            e.epoch,
            f32_hex(e.train_nll),
            val,
            f32_hex(e.learning_rate)
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// Saves a `PASSFLOW v2` checkpoint to a file. See
/// [`save_checkpoint_to_writer`].
///
/// The write is atomic: the checkpoint is assembled in a `.tmp` sibling
/// and renamed over `path`, so a crash mid-write never destroys the
/// previous good checkpoint — the failure mode checkpointing exists to
/// survive.
///
/// # Errors
///
/// Returns [`FlowError::IncompatibleWeights`] wrapping any I/O failure.
pub fn save_checkpoint(
    flow: &PassFlow,
    state: Option<&TrainState>,
    path: impl AsRef<Path>,
) -> Result<()> {
    let path = path.as_ref();
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let file = fs::File::create(&tmp)
        .map_err(|e| FlowError::IncompatibleWeights(format!("cannot create file: {e}")))?;
    let mut writer = std::io::BufWriter::new(file);
    save_checkpoint_to_writer(flow, state, &mut writer)?;
    writer.flush().map_err(io_err)?;
    drop(writer);
    fs::rename(&tmp, path)
        .map_err(|e| FlowError::IncompatibleWeights(format!("cannot replace checkpoint: {e}")))
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

fn parse_header_line(line: Option<std::io::Result<String>>, key: &str) -> Result<String> {
    let line = line
        .ok_or_else(|| FlowError::IncompatibleWeights(format!("missing {key} line")))?
        .map_err(|e| FlowError::IncompatibleWeights(format!("read failed: {e}")))?;
    line.strip_prefix(key)
        .map(|rest| rest.trim().to_string())
        .ok_or_else(|| FlowError::IncompatibleWeights(format!("expected {key:?}, got {line:?}")))
}

fn parse_usize(text: &str, key: &str) -> Result<usize> {
    text.parse()
        .map_err(|_| FlowError::IncompatibleWeights(format!("bad {key} value {text:?}")))
}

fn parse_u64(text: &str, key: &str) -> Result<u64> {
    text.parse()
        .map_err(|_| FlowError::IncompatibleWeights(format!("bad {key} value {text:?}")))
}

fn parse_f32_hex(text: &str, key: &str) -> Result<f32> {
    u32::from_str_radix(text.trim(), 16)
        .map(f32::from_bits)
        .map_err(|_| FlowError::IncompatibleWeights(format!("bad {key} value {text:?}")))
}

fn read_tensor_blocks<R: BufRead>(
    lines: &mut Lines<R>,
    count: usize,
    what: &str,
) -> Result<Vec<Tensor>> {
    let mut tensors = Vec::with_capacity(count);
    for index in 0..count {
        let shape_line = parse_header_line(lines.next(), "tensor")?;
        let mut parts = shape_line.split_whitespace();
        let rows = parse_usize(parts.next().unwrap_or(""), "tensor rows")?;
        let cols = parse_usize(parts.next().unwrap_or(""), "tensor cols")?;
        let data_line = lines
            .next()
            .ok_or_else(|| {
                FlowError::IncompatibleWeights(format!("missing data for {what} {index}"))
            })?
            .map_err(|e| FlowError::IncompatibleWeights(format!("read failed: {e}")))?;
        let values: Vec<f32> = data_line
            .split_whitespace()
            .map(|word| {
                u32::from_str_radix(word, 16)
                    .map(f32::from_bits)
                    .map_err(|_| {
                        FlowError::IncompatibleWeights(format!("bad weight word {word:?}"))
                    })
            })
            .collect::<Result<Vec<f32>>>()?;
        let tensor = Tensor::from_vec(rows, cols, values).map_err(|e| {
            FlowError::IncompatibleWeights(format!("{what} {index} has wrong size: {e}"))
        })?;
        tensors.push(tensor);
    }
    Ok(tensors)
}

fn schedule_from_string(text: &str) -> Result<Schedule> {
    let mut parts = text.split_whitespace();
    match parts.next() {
        Some("constant") => Ok(Schedule::Constant),
        Some("step") => {
            let every = parse_u64(parts.next().unwrap_or(""), "schedule every")?;
            let gamma = parse_f32_hex(parts.next().unwrap_or(""), "schedule gamma")?;
            Ok(Schedule::Step { every, gamma })
        }
        Some("warmup-cosine") => {
            let warmup = parse_u64(parts.next().unwrap_or(""), "schedule warmup")?;
            let period = parse_u64(parts.next().unwrap_or(""), "schedule period")?;
            let min_factor = parse_f32_hex(parts.next().unwrap_or(""), "schedule min_factor")?;
            Ok(Schedule::WarmupCosine {
                warmup,
                period,
                min_factor,
            })
        }
        other => Err(FlowError::IncompatibleWeights(format!(
            "unknown schedule {other:?}"
        ))),
    }
}

fn read_train_state<R: BufRead>(lines: &mut Lines<R>) -> Result<TrainState> {
    let seed = parse_u64(&parse_header_line(lines.next(), "seed")?, "seed")?;
    let epochs = parse_usize(&parse_header_line(lines.next(), "epochs")?, "epochs")?;
    let batch_size = parse_usize(
        &parse_header_line(lines.next(), "batch_size")?,
        "batch_size",
    )?;
    let micro_batch = parse_usize(
        &parse_header_line(lines.next(), "micro_batch")?,
        "micro_batch",
    )?;
    let grad_workers = parse_usize(
        &parse_header_line(lines.next(), "grad_workers")?,
        "grad_workers",
    )?;
    let accum_steps = parse_usize(
        &parse_header_line(lines.next(), "accum_steps")?,
        "accum_steps",
    )?;
    let learning_rate = parse_f32_hex(
        &parse_header_line(lines.next(), "learning_rate")?,
        "learning_rate",
    )?;
    let schedule = schedule_from_string(&parse_header_line(lines.next(), "schedule")?)?;
    let dequantization = parse_f32_hex(
        &parse_header_line(lines.next(), "dequantization")?,
        "dequantization",
    )?;
    let clip_text = parse_header_line(lines.next(), "clip_norm")?;
    let clip_norm = if clip_text == "none" {
        None
    } else {
        Some(parse_f32_hex(&clip_text, "clip_norm")?)
    };
    let validation_fraction = parse_f32_hex(
        &parse_header_line(lines.next(), "validation_fraction")?,
        "validation_fraction",
    )?;
    let es_text = parse_header_line(lines.next(), "early_stop")?;
    let early_stop = if es_text == "none" {
        None
    } else {
        let mut parts = es_text.split_whitespace();
        let patience = parse_usize(parts.next().unwrap_or(""), "early_stop patience")?;
        let min_delta = parse_f32_hex(parts.next().unwrap_or(""), "early_stop min_delta")?;
        Some(EarlyStopConfig::new(patience).with_min_delta(min_delta))
    };
    let checkpoint_every = parse_usize(
        &parse_header_line(lines.next(), "checkpoint_every")?,
        "checkpoint_every",
    )?;
    let next_epoch = parse_usize(
        &parse_header_line(lines.next(), "next_epoch")?,
        "next_epoch",
    )?;
    let steps = parse_u64(&parse_header_line(lines.next(), "steps")?, "steps")?;
    let best_epoch = parse_usize(
        &parse_header_line(lines.next(), "best_epoch")?,
        "best_epoch",
    )?;
    let best_metric = parse_f32_hex(
        &parse_header_line(lines.next(), "best_metric")?,
        "best_metric",
    )?;
    let stale_epochs = parse_usize(
        &parse_header_line(lines.next(), "stale_epochs")?,
        "stale_epochs",
    )?;
    let stopped = match parse_header_line(lines.next(), "stopped")?.as_str() {
        "0" => false,
        "1" => true,
        other => {
            return Err(FlowError::IncompatibleWeights(format!(
                "bad stopped flag {other:?}"
            )))
        }
    };
    let digest_text = parse_header_line(lines.next(), "corpus_digest")?;
    let corpus_digest = u64::from_str_radix(digest_text.trim(), 16).map_err(|_| {
        FlowError::IncompatibleWeights(format!("bad corpus_digest value {digest_text:?}"))
    })?;
    let step_count = parse_u64(
        &parse_header_line(lines.next(), "adam_step_count")?,
        "adam_step_count",
    )?;
    let num_moment_tensors = parse_usize(
        &parse_header_line(lines.next(), "adam_moments")?,
        "adam_moments",
    )?;
    if !num_moment_tensors.is_multiple_of(2) {
        return Err(FlowError::IncompatibleWeights(format!(
            "adam_moments count {num_moment_tensors} is not a multiple of two"
        )));
    }
    let moment_tensors = read_tensor_blocks(lines, num_moment_tensors, "adam moment")?;
    let mut moments = Vec::with_capacity(num_moment_tensors / 2);
    let mut iter = moment_tensors.into_iter();
    while let (Some(m), Some(v)) = (iter.next(), iter.next()) {
        moments.push((m, v));
    }
    let num_best = parse_usize(
        &parse_header_line(lines.next(), "best_weights")?,
        "best_weights",
    )?;
    let best_weights = read_tensor_blocks(lines, num_best, "best weight")?;
    let num_history = parse_usize(&parse_header_line(lines.next(), "history")?, "history")?;
    let mut history = Vec::with_capacity(num_history);
    for _ in 0..num_history {
        let line = parse_header_line(lines.next(), "epoch")?;
        let mut parts = line.split_whitespace();
        let epoch = parse_usize(parts.next().unwrap_or(""), "history epoch")?;
        if parts.next() != Some("train") {
            return Err(FlowError::IncompatibleWeights(format!(
                "malformed history line {line:?}"
            )));
        }
        let train_nll = parse_f32_hex(parts.next().unwrap_or(""), "history train")?;
        if parts.next() != Some("val") {
            return Err(FlowError::IncompatibleWeights(format!(
                "malformed history line {line:?}"
            )));
        }
        let val_text = parts.next().unwrap_or("");
        let val_nll = if val_text == "none" {
            None
        } else {
            Some(parse_f32_hex(val_text, "history val")?)
        };
        if parts.next() != Some("lr") {
            return Err(FlowError::IncompatibleWeights(format!(
                "malformed history line {line:?}"
            )));
        }
        let learning_rate = parse_f32_hex(parts.next().unwrap_or(""), "history lr")?;
        history.push(EpochStats {
            epoch,
            train_nll,
            val_nll,
            learning_rate,
        });
    }

    Ok(TrainState {
        config: TrainConfig {
            epochs,
            batch_size,
            micro_batch,
            grad_workers,
            accum_steps,
            learning_rate,
            schedule,
            dequantization,
            clip_norm,
            validation_fraction,
            early_stop,
            checkpoint_every,
            seed,
        },
        next_epoch,
        steps,
        optimizer: AdamState {
            step_count,
            moments,
        },
        best_epoch,
        best_metric,
        best_weights,
        stale_epochs,
        stopped,
        corpus_digest,
        history,
    })
}

/// Loads a checkpoint from a reader: either format version, with the
/// training-state section surfaced when present (`PASSFLOW v1` files load
/// as weights-only — full read compatibility).
///
/// # Errors
///
/// Returns [`FlowError::IncompatibleWeights`] if the stream is not a valid
/// checkpoint, or any construction error from [`PassFlow::new`].
pub fn load_checkpoint_from_reader<R: Read>(reader: R) -> Result<(PassFlow, Option<TrainState>)> {
    let mut lines = BufReader::new(reader).lines();
    let magic = lines
        .next()
        .ok_or_else(|| FlowError::IncompatibleWeights("empty checkpoint".into()))?
        .map_err(|e| FlowError::IncompatibleWeights(format!("read failed: {e}")))?;
    let version = match magic.trim() {
        MAGIC_V1 => 1,
        MAGIC_V2 => 2,
        other => {
            return Err(FlowError::IncompatibleWeights(format!(
                "bad magic line {other:?}"
            )))
        }
    };
    let max_len = parse_usize(&parse_header_line(lines.next(), "max_len")?, "max_len")?;
    let coupling_layers = parse_usize(
        &parse_header_line(lines.next(), "coupling_layers")?,
        "coupling_layers",
    )?;
    let hidden_size = parse_usize(
        &parse_header_line(lines.next(), "hidden_size")?,
        "hidden_size",
    )?;
    let residual_blocks = parse_usize(
        &parse_header_line(lines.next(), "residual_blocks")?,
        "residual_blocks",
    )?;
    let masking = masking_from_string(&parse_header_line(lines.next(), "masking")?)?;
    let num_tensors = parse_usize(&parse_header_line(lines.next(), "tensors")?, "tensors")?;

    let config = FlowConfig {
        max_len,
        coupling_layers,
        hidden_size,
        residual_blocks,
        masking,
    };
    // The RNG only provides the initial weights, which are immediately
    // overwritten by the checkpoint, so any seed works.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let flow = PassFlow::new(config, &mut rng)?;
    let tensors = read_tensor_blocks(&mut lines, num_tensors, "tensor")?;
    flow.load_weights(&tensors)?;

    if version == 1 {
        return Ok((flow, None));
    }
    let has_state = parse_usize(
        &parse_header_line(lines.next(), "train_state")?,
        "train_state",
    )?;
    let state = match has_state {
        0 => None,
        1 => Some(read_train_state(&mut lines)?),
        other => {
            return Err(FlowError::IncompatibleWeights(format!(
                "bad train_state flag {other}"
            )))
        }
    };
    Ok((flow, state))
}

/// Loads a checkpoint file written by [`save_checkpoint`] (or a v1 file
/// written by [`save_flow`], which carries no training state).
///
/// # Errors
///
/// See [`load_checkpoint_from_reader`].
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<(PassFlow, Option<TrainState>)> {
    let file = fs::File::open(path.as_ref())
        .map_err(|e| FlowError::IncompatibleWeights(format!("cannot open file: {e}")))?;
    load_checkpoint_from_reader(file)
}

/// Loads a flow from a reader in either checkpoint format, discarding any
/// training state.
///
/// # Errors
///
/// See [`load_checkpoint_from_reader`].
pub fn load_flow_from_reader<R: Read>(reader: R) -> Result<PassFlow> {
    load_checkpoint_from_reader(reader).map(|(flow, _)| flow)
}

/// Loads a flow from a checkpoint file written by [`save_flow`] or
/// [`save_checkpoint`].
///
/// # Errors
///
/// See [`load_checkpoint_from_reader`].
pub fn load_flow(path: impl AsRef<Path>) -> Result<PassFlow> {
    let file = fs::File::open(path.as_ref())
        .map_err(|e| FlowError::IncompatibleWeights(format!("cannot open file: {e}")))?;
    load_flow_from_reader(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use passflow_nn::rng as nnrng;

    fn tiny_flow(seed: u64) -> PassFlow {
        let mut rng = nnrng::seeded(seed);
        PassFlow::new(
            FlowConfig::tiny().with_masking(MaskStrategy::CharRun(2)),
            &mut rng,
        )
        .unwrap()
    }

    fn sample_state(flow: &PassFlow) -> TrainState {
        let weights = flow.weight_snapshot();
        let moments: Vec<(Tensor, Tensor)> =
            weights.iter().map(|w| (w.scale(0.5), w.square())).collect();
        TrainState {
            config: TrainConfig::tiny()
                .with_epochs(6)
                .with_validation_fraction(0.25)
                .with_early_stop(crate::train::EarlyStopConfig::new(2).with_min_delta(0.125))
                .with_schedule(Schedule::WarmupCosine {
                    warmup: 3,
                    period: 40,
                    min_factor: 0.25,
                }),
            next_epoch: 3,
            steps: 9,
            optimizer: AdamState {
                step_count: 9,
                moments,
            },
            best_epoch: 2,
            best_metric: 4.75,
            best_weights: weights,
            stale_epochs: 1,
            stopped: false,
            corpus_digest: 0xdead_beef_cafe_f00d,
            history: vec![
                EpochStats {
                    epoch: 0,
                    train_nll: 9.5,
                    val_nll: Some(9.25),
                    learning_rate: 2e-3,
                },
                EpochStats {
                    epoch: 1,
                    train_nll: 7.5,
                    val_nll: None,
                    learning_rate: 1e-3,
                },
            ],
        }
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let flow = tiny_flow(1);
        let mut buffer = Vec::new();
        save_flow_to_writer(&flow, &mut buffer).unwrap();
        let restored = load_flow_from_reader(buffer.as_slice()).unwrap();

        assert_eq!(restored.config(), flow.config());
        // Same exact densities for a handful of passwords.
        for pw in ["jimmy91", "123456", "qwerty"] {
            assert_eq!(
                flow.log_prob_password(pw).unwrap().to_bits(),
                restored.log_prob_password(pw).unwrap().to_bits(),
                "density mismatch for {pw}"
            );
        }
        // And bit-exact weights.
        for (a, b) in flow
            .weight_snapshot()
            .iter()
            .zip(restored.weight_snapshot().iter())
        {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn checkpoint_round_trip_preserves_full_train_state() {
        let flow = tiny_flow(5);
        let state = sample_state(&flow);
        let mut buffer = Vec::new();
        save_checkpoint_to_writer(&flow, Some(&state), &mut buffer).unwrap();
        let (restored_flow, restored_state) =
            load_checkpoint_from_reader(buffer.as_slice()).unwrap();
        assert_eq!(restored_flow.config(), flow.config());
        let restored_state = restored_state.expect("state present");
        assert_eq!(restored_state, state);
    }

    #[test]
    fn stateless_v2_checkpoint_loads_without_state() {
        let flow = tiny_flow(6);
        let mut buffer = Vec::new();
        save_checkpoint_to_writer(&flow, None, &mut buffer).unwrap();
        let text = String::from_utf8(buffer.clone()).unwrap();
        assert!(text.starts_with(MAGIC_V2));
        assert!(text.contains("train_state 0"));
        let (restored, state) = load_checkpoint_from_reader(buffer.as_slice()).unwrap();
        assert!(state.is_none());
        assert_eq!(restored.config(), flow.config());
    }

    #[test]
    fn v1_files_load_through_the_checkpoint_reader() {
        // v1 read-compat: a weights-only v1 file loads with no state and
        // bit-exact weights.
        let flow = tiny_flow(7);
        let mut buffer = Vec::new();
        save_flow_to_writer(&flow, &mut buffer).unwrap();
        let text = String::from_utf8(buffer.clone()).unwrap();
        assert!(text.starts_with(MAGIC_V1));
        let (restored, state) = load_checkpoint_from_reader(buffer.as_slice()).unwrap();
        assert!(state.is_none());
        for (a, b) in flow
            .weight_snapshot()
            .iter()
            .zip(restored.weight_snapshot().iter())
        {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn file_round_trip_works() {
        let flow = tiny_flow(2);
        let path = std::env::temp_dir().join("passflow_persist_test.pfw");
        save_flow(&flow, &path).unwrap();
        let restored = load_flow(&path).unwrap();
        assert_eq!(restored.config(), flow.config());
        let _ = fs::remove_file(path);
    }

    #[test]
    fn checkpoint_file_round_trip_works() {
        let flow = tiny_flow(8);
        let state = sample_state(&flow);
        let path = std::env::temp_dir().join("passflow_persist_test_v2.pfw");
        save_checkpoint(&flow, Some(&state), &path).unwrap();
        let (_, restored) = load_checkpoint(&path).unwrap();
        assert_eq!(restored.unwrap(), state);
        let _ = fs::remove_file(path);
    }

    #[test]
    fn corrupted_checkpoints_are_rejected() {
        // Wrong magic.
        assert!(matches!(
            load_flow_from_reader("NOT A CHECKPOINT".as_bytes()),
            Err(FlowError::IncompatibleWeights(_))
        ));
        // Truncated file: header only.
        let flow = tiny_flow(3);
        let mut buffer = Vec::new();
        save_flow_to_writer(&flow, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let truncated: String = text.lines().take(7).collect::<Vec<_>>().join("\n");
        assert!(load_flow_from_reader(truncated.as_bytes()).is_err());
        // Corrupted weight word.
        let corrupted = text.replacen("tensor", "tensor_bad", 1);
        assert!(load_flow_from_reader(corrupted.as_bytes()).is_err());
        // v2 with a truncated train-state section.
        let flow = tiny_flow(4);
        let state = sample_state(&flow);
        let mut buffer = Vec::new();
        save_checkpoint_to_writer(&flow, Some(&state), &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let cut = text.find("adam_moments").unwrap();
        assert!(load_checkpoint_from_reader(&text.as_bytes()[..cut]).is_err());
    }

    #[test]
    fn masking_strings_round_trip() {
        for masking in [
            MaskStrategy::CharRun(1),
            MaskStrategy::CharRun(3),
            MaskStrategy::Horizontal,
        ] {
            assert_eq!(
                masking_from_string(&masking_to_string(masking)).unwrap(),
                masking
            );
        }
        assert!(masking_from_string("diagonal").is_err());
    }

    #[test]
    fn schedule_strings_round_trip() {
        for schedule in [
            Schedule::Constant,
            Schedule::Step {
                every: 7,
                gamma: 0.25,
            },
            Schedule::WarmupCosine {
                warmup: 3,
                period: 99,
                min_factor: 0.125,
            },
        ] {
            assert_eq!(
                schedule_from_string(&schedule_to_string(schedule)).unwrap(),
                schedule
            );
        }
        assert!(schedule_from_string("linear 3").is_err());
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        assert!(matches!(
            load_flow("/definitely/not/a/real/path.pfw"),
            Err(FlowError::IncompatibleWeights(_))
        ));
        assert!(load_checkpoint("/definitely/not/a/real/path.pfw").is_err());
    }
}
