/root/repo/target/debug/deps/passflow-3d23704dd9c217d2.d: src/lib.rs

/root/repo/target/debug/deps/passflow-3d23704dd9c217d2: src/lib.rs

src/lib.rs:
