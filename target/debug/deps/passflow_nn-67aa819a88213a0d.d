/root/repo/target/debug/deps/passflow_nn-67aa819a88213a0d.d: crates/nn/src/lib.rs crates/nn/src/autograd.rs crates/nn/src/error.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/rng.rs crates/nn/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libpassflow_nn-67aa819a88213a0d.rmeta: crates/nn/src/lib.rs crates/nn/src/autograd.rs crates/nn/src/error.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/rng.rs crates/nn/src/tensor.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/autograd.rs:
crates/nn/src/error.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/rng.rs:
crates/nn/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
