/root/repo/target/debug/examples/targeted_guessing-e948c0bcaf76e749.d: examples/targeted_guessing.rs Cargo.toml

/root/repo/target/debug/examples/libtargeted_guessing-e948c0bcaf76e749.rmeta: examples/targeted_guessing.rs Cargo.toml

examples/targeted_guessing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
