/root/repo/target/debug/deps/figure3-4d85a33926f47f4a.d: crates/bench/src/bin/figure3.rs Cargo.toml

/root/repo/target/debug/deps/libfigure3-4d85a33926f47f4a.rmeta: crates/bench/src/bin/figure3.rs Cargo.toml

crates/bench/src/bin/figure3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
