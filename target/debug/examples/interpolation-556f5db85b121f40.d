/root/repo/target/debug/examples/interpolation-556f5db85b121f40.d: examples/interpolation.rs

/root/repo/target/debug/examples/interpolation-556f5db85b121f40: examples/interpolation.rs

examples/interpolation.rs:
