//! A password-strength meter backed by the Monte-Carlo guess-number
//! estimator (DESIGN.md, "Strength estimation").
//!
//! Unlike GANs, a normalizing flow assigns an exact log-likelihood to any
//! password — so instead of *enumerating* guesses to see when a password
//! falls, the meter samples the model once into a persisted [`SampleTable`]
//! and thereafter answers "after how many guesses would this password
//! fall?" in microseconds per query:
//!
//! 1. train a small flow and build its sample table (once),
//! 2. persist the table and reload it (what a deployed meter would ship),
//! 3. score a 10 000-password wordlist from the table — no guess
//!    enumeration,
//! 4. validate the estimator against ground truth: run a real
//!    [`Attack`](passflow::Attack) through the engine and check the
//!    measured unique-guess rank falls inside the estimator's confidence
//!    interval.
//!
//! ```text
//! cargo run --release --example strength_meter
//! ```

use std::time::Instant;

use passflow::baselines::PcfgModel;
use passflow::{
    attack_unique_rank, probe_quantization, score_wordlist, train, CorpusConfig, FlowConfig,
    FlowScorer, PassFlow, ProbabilityModel, QuantizedScorer, SampleTable, SyntheticCorpusGenerator,
    TrainConfig,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Corpus + a small trained flow.
    // ------------------------------------------------------------------
    let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small()).generate(13);
    let split = corpus.paper_split(0.8, 5_000, 13);

    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let flow = PassFlow::new(FlowConfig::tiny(), &mut rng)?;
    train(&flow, &split.train, &TrainConfig::tiny().with_epochs(6))?;

    // ------------------------------------------------------------------
    // 2. Build the sample table once, persist it, reload it.
    // ------------------------------------------------------------------
    let t0 = Instant::now();
    let table = SampleTable::build_sharded(&flow, 20_000, 7, 4);
    println!(
        "built sample table: {} samples in {:.2}s ({} unscorable dropped)",
        table.len(),
        t0.elapsed().as_secs_f64(),
        table.dropped()
    );

    let dir = std::path::Path::new("target/strength_meter");
    std::fs::create_dir_all(dir)?;
    let path = dir.join("flow.pfstrength");
    table.save(&path)?;
    let reloaded = SampleTable::load(&path)?;
    assert_eq!(reloaded, table, "persistence must round-trip bit-exactly");
    let table = reloaded;
    println!(
        "persisted + reloaded {} ({} samples, model {:?})\n",
        path.display(),
        table.len(),
        table.model_name()
    );

    // ------------------------------------------------------------------
    // 3. Score a 10k wordlist straight from the table.
    // ------------------------------------------------------------------
    let wordlist = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(10_000))
        .generate(99)
        .into_passwords();
    let t0 = Instant::now();
    let scored = score_wordlist(&flow, &table, &wordlist, 4);
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(scored.len(), wordlist.len(), "one result per password");
    let mut bits: Vec<f64> = scored
        .iter()
        .filter_map(|s| s.estimate.map(|e| e.log2_guess_number))
        .collect();
    assert!(
        bits.len() > wordlist.len() / 2,
        "most of the wordlist must be scorable ({} of {})",
        bits.len(),
        wordlist.len()
    );
    bits.sort_by(f64::total_cmp);
    println!(
        "scored {} passwords in {:.3}s ({:.1} µs/password, no guess enumeration)",
        scored.len(),
        elapsed,
        1e6 * elapsed / scored.len() as f64
    );
    println!(
        "guess-number distribution (log2): p10 {:.1}  p50 {:.1}  p90 {:.1}\n",
        bits[bits.len() / 10],
        bits[bits.len() / 2],
        bits[9 * bits.len() / 10]
    );

    println!(
        "{:<14} {:>10}  {:>17}",
        "password", "log2 rank", "95% CI (log2)"
    );
    for candidate in ["123456", "jessica1", "jimmy91", "tr0ub4dor", "zq!7Kp#2vX"] {
        match table.estimate_password(&flow, candidate) {
            Some(est) => println!(
                "{candidate:<14} {:>10.1}  [{:>6.1}, {:>6.1}]",
                est.log2_guess_number, est.log2_ci_low, est.log2_ci_high
            ),
            None => println!("{candidate:<14} {:>10}", "unscorable"),
        }
    }

    // ------------------------------------------------------------------
    // 4. Ground truth: estimator vs a real engine attack.
    //
    // The PCFG baseline is an *exact* discrete distribution (sampling and
    // scoring agree), so it is the cleanest validation model: estimate the
    // sampling-attack rank of a frequent password, then measure the true
    // unique-guess rank with the AttackEngine and check it lands inside
    // the estimator's confidence interval.
    // ------------------------------------------------------------------
    let pcfg = PcfgModel::train(&split.train, 10);
    let pcfg_table = SampleTable::build(&pcfg, 4_000, 21);

    let mut counts = std::collections::HashMap::new();
    for p in &split.train {
        *counts.entry(p.as_str()).or_insert(0u32) += 1;
    }
    let (target, _) = counts
        .into_iter()
        .max_by_key(|(p, c)| (*c, std::cmp::Reverse(*p)))
        .expect("non-empty training split");

    let lp = pcfg
        .password_log_prob(target)
        .expect("training passwords are in the grammar's support");
    let predicted = pcfg_table.sampling_rank(lp);
    let measured = attack_unique_rank(&pcfg, target, 50_000, 3)?
        .expect("a frequent password falls within the budget");
    println!(
        "\nvalidation against the engine (PCFG, target {target:?}):\n  \
         estimator: rank {:.1}, 95% CI [{:.1}, {:.1}]\n  \
         engine:    matched after {measured} unique guesses -> {}",
        predicted.rank,
        predicted.ci_low,
        predicted.ci_high,
        if predicted.contains(measured as f64) {
            "inside the confidence interval"
        } else {
            "OUTSIDE the confidence interval"
        }
    );
    assert!(
        predicted.contains(measured as f64),
        "measured rank {measured} must fall inside the estimator's CI \
         [{:.1}, {:.1}]",
        predicted.ci_low,
        predicted.ci_high
    );

    // ------------------------------------------------------------------
    // 5. The int8 quantized scoring tier: the same 10k wordlist through
    //    both tiers. Quantization trades an approximate score (bounded
    //    below) for 4×-smaller coupling weights — the win is memory, so
    //    on this deliberately tiny model (weights fit L1) expect the time
    //    ratio near or below 1×; BENCH_PR8.json shows the wide-model case
    //    where the smaller weight stream is a real speedup.
    // ------------------------------------------------------------------
    let exact = FlowScorer::new(&flow);
    let quantized = QuantizedScorer::from_scorer(&exact);

    let t0 = Instant::now();
    let exact_scores = exact.log_probs(&wordlist);
    let exact_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let quant_scores = quantized.log_probs(&wordlist);
    let quant_secs = t0.elapsed().as_secs_f64();
    assert_eq!(exact_scores.len(), quant_scores.len());

    let report = probe_quantization(&exact, &quantized, &wordlist);
    println!(
        "\nquantized scoring tier ({} passwords):\n  \
         exact {exact_secs:.3}s, int8 {quant_secs:.3}s (speedup {:.2}x)\n  \
         max |delta log-prob| {:.4}, mean {:.6}, weights {:.2}x smaller",
        report.samples,
        exact_secs / quant_secs,
        report.max_abs_delta,
        report.mean_abs_delta,
        report.compression()
    );

    // The documented accuracy contract (DESIGN.md, "Threaded GEMM, SIMD
    // tiles & quantized tier"); `tests/fastpath.rs` asserts the same bound
    // against the exact `log_prob_reference` oracle.
    const QUANT_LOG_PROB_BOUND: f64 = 1.0;
    assert!(
        report.max_abs_delta > 0.0 && report.max_abs_delta < QUANT_LOG_PROB_BOUND,
        "quantized tier out of contract: max |delta log-prob| = {}, \
         documented bound {QUANT_LOG_PROB_BOUND}",
        report.max_abs_delta
    );
    Ok(())
}
