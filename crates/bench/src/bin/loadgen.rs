//! Loopback load generator for the serving subsystem.
//!
//! Starts a `passflow-serve` server in-process on an ephemeral loopback
//! port and drives it in one of five modes:
//!
//! * **hammer** (default) — many keep-alive clients send single-password
//!   `POST /v1/score` requests back-to-back, measured twice: batching
//!   disabled (`max_batch = 1`) and the adaptive batcher at
//!   `max_batch = 64`. Both runs carry identical HTTP/JSON/syscall
//!   overhead, so the ratio isolates what batching buys. Emits
//!   `BENCH_PR5.json`; the acceptance bar is batched ≥ 3× serial.
//! * **synth** — synthesizes a seeded `PFTRACE v1` workload trace
//!   (heavy-tailed batch sizes, bursty arrivals, score/logprob/screen
//!   endpoint mix) and writes it to `--trace`.
//! * **record** — runs a live workload and *records* it: each request's
//!   measured inter-arrival gap, endpoint and password seed go into a
//!   `PFTRACE v1` file that `replay` reproduces byte-for-byte.
//! * **replay** — loads `--trace` (or synthesizes from `--seed`), replays
//!   it against an in-process server at `--lanes`, honoring recorded
//!   inter-arrival gaps, and prints throughput plus a digest of every
//!   response's exact score bits.
//! * **sweep** — the PR 9 benchmark: a lanes × clients throughput grid,
//!   a cross-lane-count trace replay asserting **bit-identical** outcomes
//!   at lanes 1/2/4, and the idle keep-alive figure (threads + VmRSS
//!   delta for ~1k parked connections). Emits `BENCH_PR9.json`.
//!
//! ```text
//! cargo run --release -p passflow-bench --bin loadgen -- \
//!     [--mode hammer|synth|record|replay|sweep] [--quick] [--out PATH] \
//!     [--trace PATH] [--seed N] [--count N] [--clients N] [--lanes N]
//! ```
//!
//! Emits `passflow-bench-v1` rows (schema: DESIGN.md, "Artifact schemas").

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use passflow_core::{FlowConfig, PassFlow, SampleTable};
use passflow_serve::client::{request_with_retry, Connection, RetryPolicy};
use passflow_serve::trace::{self, Trace, TraceRecord, TraceSynthProfile};
use passflow_serve::{serve, BatcherConfig, ModelRegistry, ServedModel, ServerConfig};
use passflow_store::{DigestConfig, DigestStore, DigestStoreBuilder};

/// Concurrent client threads for hammer cells. Each holds one keep-alive
/// connection and sends single-password requests back-to-back, so up to
/// `CLIENTS` requests are in flight — enough to fill 64-row ticks.
const CLIENTS: usize = 64;

fn build_registry(quick: bool) -> (Arc<ModelRegistry>, PassFlow) {
    // A production-shaped architecture (18 coupling layers × hidden 128 —
    // the paper's depth at half its width): a model whose per-password
    // scoring cost dominates HTTP/syscall overhead, which is exactly the
    // regime the micro-batcher exists for. On this 1-row-vs-64-row GEMM
    // the pure scoring ratio is ≈4.4×; smaller models (6×48) are so cheap
    // that loopback HTTP overhead swallows the batching win. Untrained
    // weights score exactly like trained ones.
    let mut rng = passflow_nn::rng::seeded(11);
    let flow =
        PassFlow::new(FlowConfig::paper().with_hidden_size(128), &mut rng).expect("valid config");
    let table = SampleTable::build(&flow, if quick { 500 } else { 2_000 }, 7);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(ServedModel::from_flow("default", &flow, 1, Some(table)));
    (registry, flow)
}

/// A small digest store in a temp file, so traces that mix in
/// `/v1/screen` exercise the real endpoint instead of a 503.
fn digest_fixture() -> Arc<DigestStore> {
    let path = std::env::temp_dir().join(format!("pfdigest-loadgen-{}.pfd", std::process::id()));
    let mut builder = DigestStoreBuilder::new(DigestConfig::default());
    for pw in ["password1", "dragon", "letmein", "qwerty99"] {
        builder.add_password(pw).expect("digest fixture password");
    }
    builder.finish(&path).expect("digest fixture build");
    Arc::new(DigestStore::open(&path).expect("digest fixture open"))
}

fn server_config(lanes: usize, max_batch: usize, digest: Option<Arc<DigestStore>>) -> ServerConfig {
    ServerConfig {
        batcher: BatcherConfig {
            lanes,
            max_batch,
            max_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            ..BatcherConfig::default()
        },
        max_connections: 4096,
        digest,
        ..ServerConfig::default()
    }
}

/// Runs one measured load: `clients` threads for `duration`, returning
/// (total requests completed, elapsed seconds).
fn hammer(addr: std::net::SocketAddr, clients: usize, duration: Duration) -> (u64, f64) {
    let completed = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicU64::new(0)); // 0 = run, 1 = stop
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|t| {
            let completed = Arc::clone(&completed);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Per-thread jitter seed: a shed burst must not come back
                // as a synchronized stampede.
                let policy = RetryPolicy {
                    seed: t as u64,
                    ..RetryPolicy::default()
                };
                let mut conn =
                    Connection::open(addr, Duration::from_secs(30)).expect("connect to loopback");
                let body = format!("{{\"passwords\":[\"password{t}\"]}}");
                while stop.load(Ordering::Relaxed) == 0 {
                    // Transient sheds (503) and torn keep-alive connections
                    // back off and retry instead of killing the run; only
                    // genuine failures (or a 503 that outlives every
                    // retry) abort.
                    let response = match conn.request("POST", "/v1/score", Some(&body)) {
                        Ok(r) if r.status != 503 => r,
                        _ => {
                            let r =
                                request_with_retry(addr, "POST", "/v1/score", Some(&body), &policy)
                                    .expect("score request after retries");
                            conn = Connection::open(addr, Duration::from_secs(30))
                                .expect("reconnect to loopback");
                            r
                        }
                    };
                    assert_eq!(response.status, 200, "{}", response.text());
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(1, Ordering::Relaxed);
    for thread in threads {
        thread.join().expect("client thread");
    }
    let elapsed = start.elapsed().as_secs_f64();
    (completed.load(Ordering::Relaxed), elapsed)
}

/// Bit-exactness probe: one served score must equal direct scoring.
fn probe_bit_exact(addr: std::net::SocketAddr, flow: &PassFlow) {
    let response = request_with_retry(
        addr,
        "POST",
        "/v1/score",
        Some("{\"passwords\":[\"jimmy91\"]}"),
        &RetryPolicy::default(),
    )
    .expect("probe request");
    let expected = passflow_core::ProbabilityModel::password_log_prob(flow, "jimmy91")
        .expect("encodable probe");
    let bits_text = response
        .text()
        .split("\"log_prob_bits\":\"")
        .nth(1)
        .map(|rest| rest[..16].to_string())
        .expect("log_prob_bits in response");
    assert_eq!(
        u64::from_str_radix(&bits_text, 16).unwrap(),
        expected.to_bits(),
        "served score must equal direct scoring"
    );
}

/// `/proc/self/status` Threads and VmRSS (kB); zeros off-Linux.
fn proc_threads_and_rss() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |name: &str| {
        status
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    (field("Threads:"), field("VmRSS:"))
}

/// FNV-1a digest over every outcome's status and score bits — two replays
/// agree on this iff they agreed on every response.
fn outcome_digest(outcomes: &[trace::ReplayOutcome]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for outcome in outcomes {
        eat(&outcome.status.to_le_bytes());
        for bits in &outcome.bits {
            eat(bits.as_bytes());
        }
        for verdict in &outcome.verdicts {
            eat(verdict.as_bytes());
        }
    }
    hash
}

struct Args {
    mode: String,
    quick: bool,
    out: Option<String>,
    trace: String,
    seed: u64,
    count: Option<usize>,
    clients: usize,
    lanes: usize,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let value = |flag: &str| {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    Args {
        mode: value("--mode").unwrap_or_else(|| "hammer".to_string()),
        quick: argv.iter().any(|a| a == "--quick"),
        out: value("--out"),
        trace: value("--trace").unwrap_or_else(|| "trace.pftrace".to_string()),
        seed: value("--seed").and_then(|v| v.parse().ok()).unwrap_or(42),
        count: value("--count").and_then(|v| v.parse().ok()),
        clients: value("--clients")
            .and_then(|v| v.parse().ok())
            .unwrap_or(16),
        lanes: value("--lanes").and_then(|v| v.parse().ok()).unwrap_or(1),
    }
}

/// Writes `passflow-bench-v1` JSON: (name, seconds_per_iter, rate) rows.
fn write_bench_json(path: &str, rows: &[(String, f64, f64)]) {
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut json = format!(
        "{{\n  \"schema\": \"passflow-bench-v1\",\n  \"host_cpus\": {host_cpus},\n  \"results\": {{\n"
    );
    for (i, (name, spi, rate)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{name}\": {{ \"seconds_per_iter\": {spi:.9}, \"elements_per_second\": {rate:.2} }}{comma}"
        );
    }
    json.push_str("  }\n}\n");
    std::fs::write(path, &json).expect("writing benchmark JSON");
    println!("{json}");
    println!("wrote {path}");
}

/// The original PR 5 benchmark: serial vs batch64 under hammer load.
fn run_hammer(args: &Args) {
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());
    let measure = Duration::from_secs(if args.quick { 2 } else { 6 });
    let warmup = Duration::from_millis(if args.quick { 200 } else { 1_000 });
    let (registry, flow) = build_registry(args.quick);

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut throughputs: Vec<f64> = Vec::new();
    for (label, max_batch) in [("serial", 1usize), ("batch64", 64usize)] {
        let server = serve(
            server_config(args.lanes, max_batch, None),
            Arc::clone(&registry),
        )
        .expect("bind loopback");
        let addr = server.addr();
        probe_bit_exact(addr, &flow);
        let _ = hammer(addr, CLIENTS, warmup);
        let (requests, seconds) = hammer(addr, CLIENTS, measure);
        server.shutdown();
        server.join();

        let throughput = requests as f64 / seconds;
        println!(
            "serve/score_loopback/{label}: {requests} requests in {seconds:.2}s = {throughput:.0} req/s"
        );
        rows.push((
            format!("serve/score_loopback/{label}"),
            seconds / (requests as f64).max(1.0),
            throughput,
        ));
        throughputs.push(throughput);
    }

    let speedup = throughputs[1] / throughputs[0];
    println!("batched_over_serial: {speedup:.2}×");
    rows.push(("serve/batched_over_serial".to_string(), 0.0, speedup));
    write_bench_json(&out_path, &rows);

    // The PR 5 acceptance bar; --quick CI runs still assert a clear win.
    let bar = if args.quick { 2.0 } else { 3.0 };
    assert!(
        speedup >= bar,
        "batched serving must be ≥ {bar}× serial (measured {speedup:.2}×)"
    );
}

fn synth_profile() -> TraceSynthProfile {
    TraceSynthProfile::default()
}

/// `--mode synth`: write a seeded synthetic trace.
fn run_synth(args: &Args) {
    let count = args.count.unwrap_or(if args.quick { 200 } else { 2_000 });
    let trace = Trace::synth(args.seed, count, &synth_profile());
    trace
        .write(std::path::Path::new(&args.trace))
        .expect("writing trace");
    println!(
        "synthesized {} records ({} passwords) from seed {} -> {}",
        trace.records.len(),
        trace.total_passwords(),
        args.seed,
        args.trace
    );
}

/// `--mode record`: run a live workload and record its *measured*
/// arrival process (gaps, endpoints, password seeds) as a trace.
fn run_record(args: &Args) {
    let count = args.count.unwrap_or(if args.quick { 200 } else { 1_000 });
    let (registry, _flow) = build_registry(args.quick);
    let server = serve(
        server_config(args.lanes, 64, Some(digest_fixture())),
        registry,
    )
    .expect("bind loopback");
    let addr = server.addr();

    // The shape (endpoint mix, batch sizes, password seeds) comes from the
    // synth generator; the *timing* is measured off the wire. A recorded
    // trace therefore replays the workload the server actually saw, not
    // the workload the generator intended.
    let planned = Trace::synth(args.seed, count, &synth_profile());
    let mut conn = Connection::open(addr, Duration::from_secs(30)).expect("connect");
    let mut records = Vec::with_capacity(count);
    let mut last = Instant::now();
    for planned_record in &planned.records {
        let response = conn
            .request(
                "POST",
                planned_record.endpoint.path(),
                Some(&planned_record.body()),
            )
            .expect("recorded request");
        assert!(
            response.status == 200 || response.status == 503,
            "unexpected status {} while recording",
            response.status
        );
        let now = Instant::now();
        let gap_us = now.duration_since(last).as_micros().min(u32::MAX as u128) as u32;
        last = now;
        records.push(TraceRecord {
            gap_us,
            ..*planned_record
        });
    }
    server.shutdown();
    server.join();

    let trace = Trace { seed: 0, records };
    trace
        .write(std::path::Path::new(&args.trace))
        .expect("writing trace");
    println!(
        "recorded {} live requests -> {}",
        trace.records.len(),
        args.trace
    );
}

/// `--mode replay`: replay a trace file (or a synthesized one) against an
/// in-process server and report throughput + the outcome digest.
fn run_replay(args: &Args) {
    let trace = if std::path::Path::new(&args.trace).exists() {
        Trace::load(std::path::Path::new(&args.trace)).expect("loading trace")
    } else {
        let count = args.count.unwrap_or(if args.quick { 200 } else { 1_000 });
        println!(
            "{} not found; synthesizing {count} records from seed {}",
            args.trace, args.seed
        );
        Trace::synth(args.seed, count, &synth_profile())
    };
    let (registry, _flow) = build_registry(args.quick);
    let server = serve(
        server_config(args.lanes, 64, Some(digest_fixture())),
        registry,
    )
    .expect("bind loopback");

    let start = Instant::now();
    let outcomes = trace::replay(server.addr(), &trace, args.clients).expect("replay");
    let seconds = start.elapsed().as_secs_f64();
    let ok = outcomes.iter().filter(|o| o.status == 200).count();
    println!(
        "replayed {} records ({} passwords) in {seconds:.2}s = {:.0} req/s with {} lanes; \
         {ok} ok; outcome_digest={:016x}",
        outcomes.len(),
        trace.total_passwords(),
        outcomes.len() as f64 / seconds,
        args.lanes,
        outcome_digest(&outcomes)
    );
    let steals = server.batcher().total_steals();
    println!("lane steals: {steals}");
    server.shutdown();
    server.join();
}

/// `--mode sweep`: the PR 9 benchmark grid (`BENCH_PR9.json`).
fn run_sweep(args: &Args) {
    let out_path = args
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());
    let measure = Duration::from_secs(if args.quick { 1 } else { 3 });
    let warmup = Duration::from_millis(if args.quick { 200 } else { 500 });
    let idle_conns = if args.quick { 200 } else { 1_000 };
    let trace_count = if args.quick { 150 } else { 600 };
    let (registry, flow) = build_registry(args.quick);
    let digest = digest_fixture();
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    // -- Lane × clients hammer grid -------------------------------------
    for lanes in [1usize, 2, 4] {
        for clients in [8usize, 64] {
            let server = serve(
                server_config(lanes, 64, Some(Arc::clone(&digest))),
                Arc::clone(&registry),
            )
            .expect("bind loopback");
            let addr = server.addr();
            probe_bit_exact(addr, &flow);
            let _ = hammer(addr, clients, warmup);
            let (requests, seconds) = hammer(addr, clients, measure);
            server.shutdown();
            server.join();
            let throughput = requests as f64 / seconds;
            println!(
                "serve/lane_sweep/lanes{lanes}_clients{clients}: {requests} requests in \
                 {seconds:.2}s = {throughput:.0} req/s"
            );
            rows.push((
                format!("serve/lane_sweep/lanes{lanes}_clients{clients}"),
                seconds / (requests as f64).max(1.0),
                throughput,
            ));
        }
    }

    // -- Cross-lane-count trace replay: bit-identical outcomes ----------
    let trace = Trace::synth(args.seed, trace_count, &synth_profile());
    let mut digests = Vec::new();
    for lanes in [1usize, 2, 4] {
        let server = serve(
            server_config(lanes, 64, Some(Arc::clone(&digest))),
            Arc::clone(&registry),
        )
        .expect("bind loopback");
        let start = Instant::now();
        let outcomes = trace::replay(server.addr(), &trace, args.clients).expect("replay");
        let seconds = start.elapsed().as_secs_f64();
        server.shutdown();
        server.join();
        assert!(
            outcomes.iter().all(|o| o.status == 200),
            "every replayed request must succeed"
        );
        let digest_value = outcome_digest(&outcomes);
        println!(
            "serve/trace_replay/lanes{lanes}: {} records in {seconds:.2}s = {:.0} req/s, \
             outcome digest {digest_value:016x}",
            outcomes.len(),
            outcomes.len() as f64 / seconds
        );
        rows.push((
            format!("serve/trace_replay/lanes{lanes}"),
            seconds / (outcomes.len() as f64).max(1.0),
            outcomes.len() as f64 / seconds,
        ));
        digests.push(digest_value);
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "trace replay outcomes must be bit-identical across lane counts: {digests:x?}"
    );
    println!("cross-lane outcome digests identical: {:016x}", digests[0]);

    // -- Idle keep-alive cost: ~1k parked connections --------------------
    let server = serve(
        server_config(4, 64, Some(Arc::clone(&digest))),
        Arc::clone(&registry),
    )
    .expect("bind loopback");
    let addr = server.addr();
    probe_bit_exact(addr, &flow);
    let (threads_before, rss_before) = proc_threads_and_rss();
    let mut parked: Vec<Connection> = (0..idle_conns)
        .map(|_| Connection::open(addr, Duration::from_secs(30)).expect("idle connection"))
        .collect();
    // Let the poller park them all, then measure.
    std::thread::sleep(Duration::from_millis(500));
    let (threads_after, rss_after) = proc_threads_and_rss();
    let thread_delta = threads_after.saturating_sub(threads_before);
    let rss_delta_kb = rss_after.saturating_sub(rss_before);
    println!(
        "serve/idle_conns: {idle_conns} idle keep-alive connections cost {thread_delta} \
         threads, {rss_delta_kb} kB RSS"
    );
    // The whole point of the multiplexer: idle sockets must not spawn
    // threads (allow a little scheduler slack, never O(connections)).
    assert!(
        thread_delta < 8,
        "{idle_conns} idle connections must cost ~0 threads, measured +{thread_delta}"
    );
    // The parked sockets are still live connections: each still serves.
    for conn in parked.iter_mut().take(5) {
        let response = conn
            .request("POST", "/v1/score", Some("{\"passwords\":[\"jimmy91\"]}"))
            .expect("parked connection revival");
        assert_eq!(response.status, 200);
    }
    drop(parked);
    server.shutdown();
    server.join();
    rows.push((
        format!("serve/idle_conns/threads_delta_per_{idle_conns}"),
        0.0,
        thread_delta as f64,
    ));
    rows.push((
        format!("serve/idle_conns/vmrss_delta_kb_per_{idle_conns}"),
        0.0,
        rss_delta_kb as f64,
    ));

    write_bench_json(&out_path, &rows);
}

fn main() {
    let args = parse_args();
    match args.mode.as_str() {
        "hammer" => run_hammer(&args),
        "synth" => run_synth(&args),
        "record" => run_record(&args),
        "replay" => run_replay(&args),
        "sweep" => run_sweep(&args),
        other => {
            eprintln!("loadgen: unknown --mode {other:?} (hammer|synth|record|replay|sweep)");
            std::process::exit(2);
        }
    }
}
