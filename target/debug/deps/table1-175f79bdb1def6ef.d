/root/repo/target/debug/deps/table1-175f79bdb1def6ef.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-175f79bdb1def6ef: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
