/root/repo/target/debug/examples/targeted_guessing-b595ccf4282aa9e9.d: examples/targeted_guessing.rs

/root/repo/target/debug/examples/targeted_guessing-b595ccf4282aa9e9: examples/targeted_guessing.rs

examples/targeted_guessing.rs:
