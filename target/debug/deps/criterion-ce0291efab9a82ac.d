/root/repo/target/debug/deps/criterion-ce0291efab9a82ac.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-ce0291efab9a82ac.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
