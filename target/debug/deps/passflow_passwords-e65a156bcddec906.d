/root/repo/target/debug/deps/passflow_passwords-e65a156bcddec906.d: crates/passwords/src/lib.rs crates/passwords/src/alphabet.rs crates/passwords/src/dataset.rs crates/passwords/src/encoding.rs crates/passwords/src/generator.rs crates/passwords/src/stats.rs crates/passwords/src/wordlists.rs Cargo.toml

/root/repo/target/debug/deps/libpassflow_passwords-e65a156bcddec906.rmeta: crates/passwords/src/lib.rs crates/passwords/src/alphabet.rs crates/passwords/src/dataset.rs crates/passwords/src/encoding.rs crates/passwords/src/generator.rs crates/passwords/src/stats.rs crates/passwords/src/wordlists.rs Cargo.toml

crates/passwords/src/lib.rs:
crates/passwords/src/alphabet.rs:
crates/passwords/src/dataset.rs:
crates/passwords/src/encoding.rs:
crates/passwords/src/generator.rs:
crates/passwords/src/stats.rs:
crates/passwords/src/wordlists.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
