//! The data-parallel [`Trainer`] for [`PassFlow`] models.
//!
//! # Execution model
//!
//! Each macro-batch is dequantized once (with noise drawn from an RNG
//! stream keyed by `(seed, epoch, batch)`), then partitioned into
//! fixed-size **micro-batches**. Gradient workers pull micro-batches from a
//! shared counter, differentiate each on a private tape
//! ([`Var::backward_grads`](passflow_nn::Var)), and the trainer merges the
//! resulting [`GradBatch`]es **in micro-batch index order** before scaling
//! and applying them. Because the partition, the noise, and the reduction
//! order are all independent of the worker count, `grad_workers = 1` and
//! `grad_workers = N` produce bit-identical parameter trajectories — the
//! training-side mirror of the attack engine's shard-count invariance.
//!
//! # Resumability
//!
//! All randomness is drawn from streams derived from `(seed, epoch, batch)`
//! rather than one sequential RNG, so the full RNG state is captured by the
//! epoch ordinal alone. A `PASSFLOW v2` checkpoint stores the weights, the
//! Adam moments and step count, the best-epoch selection, the early-stop
//! counter and the epoch history; [`Trainer::resume`] therefore continues a
//! killed run bit-exactly — the resumed trajectory is indistinguishable
//! from one that never stopped.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::seq::SliceRandom;
use rand::Rng;

use passflow_nn::rng as nnrng;
use passflow_nn::{Adam, GradBatch, Optimizer, Parameter, Tensor};

use crate::config::TrainConfig;
use crate::error::{FlowError, Result};
use crate::flow::PassFlow;
use crate::persist::{load_checkpoint, save_checkpoint};

use super::driver::{EpochDriver, LoopControl, StepCtx, TrainLoop};
use super::early_stop::EarlyStop;
use super::{EpochStats, TrainState, TrainingReport};

/// RNG stream offsets. Streams are keyed by purpose so each consumer is
/// independent and each is addressable from `(seed, epoch, batch)` alone.
const STREAM_SPLIT: u64 = 1 << 40;
const STREAM_SHUFFLE: u64 = 1 << 41;
const STREAM_NOISE: u64 = 1 << 42;
/// Maximum addressable batches per epoch in the noise stream keying.
const NOISE_EPOCH_STRIDE: u64 = 1 << 22;

/// Trains a [`PassFlow`] with sharded gradient workers, schedules,
/// validation-based selection and resumable checkpoints.
///
/// ```rust,no_run
/// # use passflow_core::{FlowConfig, PassFlow, TrainConfig, Trainer};
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// # let flow = PassFlow::new(FlowConfig::tiny(), &mut rng)?;
/// # let passwords: Vec<String> = Vec::new();
/// let config = TrainConfig::evaluation().with_grad_workers(4);
/// let report = Trainer::new(&flow, config)?
///     .with_checkpoint("run.ckpt")
///     .train(&passwords)?;
/// # Ok::<(), passflow_core::FlowError>(())
/// ```
pub struct Trainer<'a> {
    flow: &'a PassFlow,
    config: TrainConfig,
    checkpoint_path: Option<PathBuf>,
}

impl<'a> Trainer<'a> {
    /// Creates a trainer for `flow`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] if the configuration does not
    /// validate.
    pub fn new(flow: &'a PassFlow, config: TrainConfig) -> Result<Self> {
        config.validate()?;
        Ok(Trainer {
            flow,
            config,
            checkpoint_path: None,
        })
    }

    /// Enables periodic checkpointing to `path`. A `PASSFLOW v2` checkpoint
    /// is (re)written every [`TrainConfig::checkpoint_every`] epochs,
    /// containing everything [`Trainer::resume`] needs.
    #[must_use]
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Trains from scratch. See the module docs for the execution model.
    ///
    /// # Errors
    ///
    /// * [`FlowError::EmptyTrainingSet`] if no password could be encoded.
    /// * [`FlowError::Diverged`] if a batch loss becomes non-finite.
    /// * Any checkpoint I/O error, surfaced as
    ///   [`FlowError::IncompatibleWeights`].
    pub fn train(&self, passwords: &[String]) -> Result<TrainingReport> {
        self.run(passwords, None)
    }

    /// Resumes a checkpointed run: restores weights, optimizer moments,
    /// best-epoch selection and the early-stop counter from `path`, then
    /// continues training up to the configured epoch count.
    ///
    /// Resuming is bit-exact: given the same `TrainConfig`, a run killed
    /// after a checkpoint and resumed from it produces the same weights,
    /// report and subsequent checkpoints as a run that was never
    /// interrupted.
    ///
    /// # Errors
    ///
    /// In addition to the [`train`](Self::train) errors:
    ///
    /// * [`FlowError::IncompatibleWeights`] if the checkpoint cannot be
    ///   read, has no training state, or was written by a different flow
    ///   architecture.
    /// * [`FlowError::InvalidConfig`] if the checkpoint's training
    ///   configuration differs on a trajectory-relevant knob.
    pub fn resume(&self, passwords: &[String], path: impl AsRef<Path>) -> Result<TrainingReport> {
        let (ckpt_flow, state) = load_checkpoint(path)?;
        let state = state.ok_or_else(|| {
            FlowError::IncompatibleWeights(
                "checkpoint has no training state (weights-only checkpoint)".into(),
            )
        })?;
        if ckpt_flow.config() != self.flow.config() {
            return Err(FlowError::IncompatibleWeights(format!(
                "checkpoint architecture {:?} does not match the trainer's flow {:?}",
                ckpt_flow.config(),
                self.flow.config()
            )));
        }
        self.check_resume_compat(&state.config)?;
        self.flow.load_weights(&ckpt_flow.weight_snapshot())?;
        self.run(passwords, Some(state))
    }

    /// Rejects resumes whose stored configuration differs on any knob that
    /// shapes the training trajectory (throughput-only knobs — worker
    /// count, checkpoint cadence — and the epoch budget may differ).
    fn check_resume_compat(&self, stored: &TrainConfig) -> Result<()> {
        let c = &self.config;
        let mismatch = stored.seed != c.seed
            || stored.batch_size != c.batch_size
            || stored.micro_batch != c.micro_batch
            || stored.accum_steps != c.accum_steps
            || stored.learning_rate.to_bits() != c.learning_rate.to_bits()
            || stored.dequantization.to_bits() != c.dequantization.to_bits()
            || stored.clip_norm.map(f32::to_bits) != c.clip_norm.map(f32::to_bits)
            || stored.validation_fraction.to_bits() != c.validation_fraction.to_bits()
            || stored.schedule != c.schedule
            || stored.early_stop != c.early_stop;
        if mismatch {
            return Err(FlowError::InvalidConfig(format!(
                "checkpoint was written with a different training configuration \
                 (stored {stored:?}, trainer has {c:?}); bit-exact resume is impossible"
            )));
        }
        Ok(())
    }

    fn run(&self, passwords: &[String], resume: Option<TrainState>) -> Result<TrainingReport> {
        let config = &self.config;
        let data = self.flow.encode_batch(passwords)?;
        let corpus_digest = corpus_digest(&data);
        if let Some(state) = &resume {
            if state.corpus_digest != corpus_digest {
                return Err(FlowError::InvalidConfig(format!(
                    "checkpoint was written against a different training corpus \
                     (digest {:016x}, resuming with {corpus_digest:016x}); the validation \
                     split and batch partition would shift, so bit-exact resume is impossible",
                    state.corpus_digest
                )));
            }
        }
        let (train_data, val_data) =
            split_validation(&data, config.validation_fraction, config.seed);
        let num_examples = train_data.rows();
        let num_validation = val_data.as_ref().map_or(0, Tensor::rows);

        let parameters = self.flow.parameters();
        let mut optimizer = Adam::new(config.learning_rate);
        if let Some(clip) = config.clip_norm {
            optimizer = optimizer.with_clip_norm(clip);
        }

        let batches_per_epoch = num_examples.div_ceil(config.batch_size);
        let amplitude = config.dequantization * self.flow.encoder().quantization_step();

        // Worker count is a pure throughput knob (results are invariant),
        // so it goes through the repo-wide clamp (see `passflow_nn::pool`).
        let effective_workers = passflow_nn::clamp_threads(config.grad_workers);

        let mut driver = FlowDriver {
            flow: self.flow,
            config,
            effective_workers,
            corpus_digest,
            parameters,
            optimizer,
            data: train_data,
            validation: val_data,
            shuffled: (0..num_examples).collect(),
            amplitude,
            pending: GradBatch::new(),
            pending_rows: 0,
            pending_batches: 0,
            batches_per_epoch,
            steps: 0,
            last_lr: config.learning_rate,
            tracker: match config.early_stop {
                Some(rule) => EarlyStop::with_rule(rule),
                None => EarlyStop::best_only(),
            },
            best: None,
            history: Vec::new(),
            stopped_early: false,
            checkpoint_path: self.checkpoint_path.as_deref(),
        };

        let start_epoch = match resume {
            Some(state) => {
                driver
                    .optimizer
                    .load_state(&driver.parameters, &state.optimizer)
                    .map_err(|e| FlowError::IncompatibleWeights(format!("optimizer state: {e}")))?;
                driver.steps = state.steps;
                driver
                    .tracker
                    .restore(state.best_metric, state.stale_epochs);
                if !state.best_weights.is_empty() {
                    driver.best = Some((state.best_epoch, state.best_weights));
                }
                driver.history = state.history;
                if state.stopped {
                    // The run had already stopped early when this
                    // checkpoint was written: it is complete. Skip the
                    // loop instead of training epochs the uninterrupted
                    // run never ran.
                    driver.stopped_early = true;
                    config.epochs
                } else {
                    state.next_epoch
                }
            }
            None => 0,
        };

        TrainLoop::new(
            config.epochs,
            batches_per_epoch,
            config.learning_rate,
            config.schedule,
        )
        .with_accum_steps(config.accum_steps)
        .run(start_epoch, &mut driver)?;

        // Restore the best-performing epoch, as the paper does for
        // generation (best on validation when a split is configured, best
        // on training NLL otherwise).
        let (best_epoch, stopped_early) = (driver.best_epoch(), driver.stopped_early);
        if let Some((_, weights)) = &driver.best {
            self.flow.load_weights(weights)?;
        }

        Ok(TrainingReport {
            epochs: driver.history,
            num_examples,
            num_validation,
            best_epoch,
            stopped_early,
        })
    }
}

// ---------------------------------------------------------------------------
// The epoch driver
// ---------------------------------------------------------------------------

/// The flow-specific [`EpochDriver`]: sharded gradient computation per
/// batch, validation/selection/checkpointing per epoch.
struct FlowDriver<'a> {
    flow: &'a PassFlow,
    config: &'a TrainConfig,
    /// `config.grad_workers` clamped to the host's core count.
    effective_workers: usize,
    /// Digest of the encoded corpus, serialized into checkpoints.
    corpus_digest: u64,
    parameters: Vec<Parameter>,
    optimizer: Adam,
    data: Tensor,
    validation: Option<Tensor>,
    shuffled: Vec<usize>,
    amplitude: f32,
    /// Gradients accumulated since the last optimizer step.
    pending: GradBatch,
    pending_rows: usize,
    pending_batches: usize,
    batches_per_epoch: usize,
    /// Optimizer steps taken (serialized into checkpoints).
    steps: u64,
    last_lr: f32,
    tracker: EarlyStop,
    /// Best epoch observed so far and its weight snapshot.
    best: Option<(usize, Vec<Tensor>)>,
    history: Vec<EpochStats>,
    stopped_early: bool,
    checkpoint_path: Option<&'a Path>,
}

impl FlowDriver<'_> {
    fn best_epoch(&self) -> usize {
        self.best.as_ref().map_or(0, |(epoch, _)| *epoch)
    }

    fn save_checkpoint(&self, next_epoch: usize) -> Result<()> {
        let Some(path) = self.checkpoint_path else {
            return Ok(());
        };
        let (best_epoch, best_weights) = match &self.best {
            Some((epoch, weights)) => (*epoch, weights.clone()),
            None => (0, Vec::new()),
        };
        let state = TrainState {
            config: self.config.clone(),
            next_epoch,
            steps: self.steps,
            optimizer: self.optimizer.export_state(&self.parameters),
            best_epoch,
            best_metric: self.tracker.best(),
            best_weights,
            stale_epochs: self.tracker.stale(),
            stopped: self.stopped_early,
            corpus_digest: self.corpus_digest,
            history: self.history.clone(),
        };
        save_checkpoint(self.flow, Some(&state), path)
    }
}

impl EpochDriver for FlowDriver<'_> {
    type Error = FlowError;

    fn on_epoch_start(&mut self, epoch: usize) -> Result<()> {
        // Per-epoch shuffle stream: resume at epoch E replays exactly the
        // permutations an uninterrupted run would have drawn.
        let mut rng = nnrng::derived(self.config.seed, STREAM_SHUFFLE + epoch as u64);
        self.shuffled.sort_unstable();
        self.shuffled.shuffle(&mut rng);
        Ok(())
    }

    fn on_batch(&mut self, ctx: &StepCtx) -> Result<f32> {
        let start = ctx.batch * self.config.batch_size;
        let end = (start + self.config.batch_size).min(self.shuffled.len());
        let mut batch = self.data.select_rows(&self.shuffled[start..end]);

        // Dequantization noise comes from a stream keyed by (epoch, batch),
        // drawn over the whole macro-batch *before* it is sharded: the
        // noise, like everything else, is independent of the worker count.
        let mut noise_rng = nnrng::derived(
            self.config.seed,
            STREAM_NOISE + ctx.epoch as u64 * NOISE_EPOCH_STRIDE + ctx.batch as u64,
        );
        dequantize_in_place(&mut batch, self.amplitude, &mut noise_rng);

        let outputs = compute_micro_grads(
            self.flow,
            &batch,
            self.config.micro_batch,
            self.effective_workers,
        );

        // Deterministic fixed-order reduction: merge in micro-batch index
        // order, never in thread-completion order.
        let mut loss_sum = 0.0f64;
        for (micro_loss, grads) in &outputs {
            loss_sum += f64::from(*micro_loss);
            self.pending.merge(grads);
        }
        let rows = batch.rows();
        let batch_mean = (loss_sum / rows as f64) as f32;
        if !batch_mean.is_finite() {
            return Err(FlowError::Diverged { epoch: ctx.epoch });
        }
        self.pending_rows += rows;
        self.pending_batches += 1;

        let last_batch = ctx.batch + 1 == self.batches_per_epoch;
        if self.pending_batches == self.config.accum_steps || last_batch {
            self.pending.scale(1.0 / self.pending_rows as f32);
            self.pending.apply();
            // The schedule ordinal is the driver's own optimizer-step
            // counter, not `ctx.lr`'s batch-derived estimate: the epoch
            // boundary flushes partial accumulation groups, so the two
            // drift apart whenever `accum_steps` does not divide the
            // batches per epoch. `steps` is serialized into checkpoints,
            // so resumed runs replay the same ordinals.
            let lr = self.config.learning_rate * self.config.schedule.factor(self.steps);
            self.optimizer.set_learning_rate(lr);
            self.optimizer.step(&self.parameters);
            self.last_lr = lr;
            self.steps += 1;
            self.pending = GradBatch::new();
            self.pending_rows = 0;
            self.pending_batches = 0;
        }
        Ok(batch_mean)
    }

    fn on_epoch_end(&mut self, epoch: usize, mean_loss: f32) -> Result<LoopControl> {
        let val_nll = self.validation.as_ref().map(|v| self.flow.nll(v));
        let metric = val_nll.unwrap_or(mean_loss);
        let verdict = self.tracker.observe(metric);
        if verdict.improved {
            self.best = Some((epoch, self.flow.weight_snapshot()));
        }
        self.history.push(EpochStats {
            epoch,
            train_nll: mean_loss,
            val_nll,
            learning_rate: self.last_lr,
        });
        // Record the stop *before* a cadence checkpoint so resuming a
        // checkpoint written at the stopping epoch does not train epochs
        // the uninterrupted run never ran.
        if verdict.stop {
            self.stopped_early = true;
        }
        if (epoch + 1).is_multiple_of(self.config.checkpoint_every) {
            self.save_checkpoint(epoch + 1)?;
        }
        if verdict.stop {
            return Ok(LoopControl::Stop);
        }
        Ok(LoopControl::Continue)
    }
}

// ---------------------------------------------------------------------------
// Sharded gradient computation
// ---------------------------------------------------------------------------

/// Computes `(loss_sum, gradients)` for every micro-batch of `batch`,
/// farming micro-batches out to `workers` threads.
///
/// The partition is a pure function of `(batch.rows(), micro_batch)` and
/// each micro-batch is differentiated on a private tape, so the returned
/// vector — ordered by micro-batch index — is bit-identical for any worker
/// count; workers only change wall-clock time.
fn compute_micro_grads(
    flow: &PassFlow,
    batch: &Tensor,
    micro_batch: usize,
    workers: usize,
) -> Vec<(f32, GradBatch)> {
    let ranges = micro_ranges(batch.rows(), micro_batch);
    let workers = workers.min(ranges.len()).max(1);
    if workers == 1 {
        return ranges
            .iter()
            .map(|&(start, len)| grad_of_micro(flow, batch, start, len))
            .collect();
    }

    // Dynamic load balancing as in the attack engine: workers pull the next
    // unclaimed micro-batch from a shared counter; outputs are re-assembled
    // by index so the schedule never shows in the results.
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<(f32, GradBatch)>> = ranges.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let ranges = &ranges;
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= ranges.len() {
                            break;
                        }
                        let (start, len) = ranges[i];
                        produced.push((i, grad_of_micro(flow, batch, start, len)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, output) in handle.join().expect("gradient worker panicked") {
                slots[i] = Some(output);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every micro-batch produced"))
        .collect()
}

/// Partitions `rows` into `(start, len)` micro-batch ranges.
fn micro_ranges(rows: usize, micro_batch: usize) -> Vec<(usize, usize)> {
    let micro = micro_batch.max(1);
    (0..rows)
        .step_by(micro)
        .map(|start| (start, micro.min(rows - start)))
        .collect()
}

/// Differentiates one micro-batch on a private tape, returning its summed
/// NLL and detached gradients.
fn grad_of_micro(flow: &PassFlow, batch: &Tensor, start: usize, len: usize) -> (f32, GradBatch) {
    let cols = batch.cols();
    let rows = &batch.as_slice()[start * cols..(start + len) * cols];
    let micro =
        Tensor::from_vec(len, cols, rows.to_vec()).expect("micro-batch slice matches its shape");
    flow.nll_grad_sum(&micro)
}

/// Adds uniform noise in `[-amplitude, amplitude)` to every element in
/// place (no per-batch noise tensor allocation).
fn dequantize_in_place<R: Rng + ?Sized>(batch: &mut Tensor, amplitude: f32, rng: &mut R) {
    if amplitude == 0.0 {
        return;
    }
    for v in batch.as_mut_slice() {
        *v += rng.gen_range(-amplitude..amplitude);
    }
}

/// A deterministic fingerprint of an encoded corpus (shape + every value's
/// bit pattern, through the fixed-key SipHash the dedup set also relies on
/// for cross-process determinism). Checkpoints store it so a resume against
/// a different corpus is rejected instead of silently diverging.
fn corpus_digest(data: &Tensor) -> u64 {
    use std::hash::Hasher;
    let mut hasher = std::hash::DefaultHasher::default();
    hasher.write_usize(data.rows());
    hasher.write_usize(data.cols());
    for v in data.as_slice() {
        hasher.write_u32(v.to_bits());
    }
    hasher.finish()
}

/// Splits encoded rows into `(train, validation)` with a deterministic
/// permutation drawn from the split stream of `seed`. Returns no validation
/// tensor when the fraction rounds to zero rows (or would leave no training
/// rows).
fn split_validation(data: &Tensor, fraction: f32, seed: u64) -> (Tensor, Option<Tensor>) {
    let n = data.rows();
    let val_rows = ((n as f64) * f64::from(fraction)).floor() as usize;
    let val_rows = val_rows.min(n.saturating_sub(1));
    if val_rows == 0 {
        return (data.clone(), None);
    }
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = nnrng::derived(seed, STREAM_SPLIT);
    indices.shuffle(&mut rng);
    let mut val_idx = indices[..val_rows].to_vec();
    let mut train_idx = indices[val_rows..].to_vec();
    val_idx.sort_unstable();
    train_idx.sort_unstable();
    (
        data.select_rows(&train_idx),
        Some(data.select_rows(&val_idx)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};

    fn tiny_flow(seed: u64) -> PassFlow {
        let mut rng = nnrng::seeded(seed);
        PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
    }

    fn tiny_corpus(n: usize) -> Vec<String> {
        SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(n))
            .generate(31)
            .into_passwords()
    }

    #[test]
    fn micro_ranges_cover_exactly_once() {
        assert_eq!(micro_ranges(10, 4), vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(micro_ranges(4, 4), vec![(0, 4)]);
        assert_eq!(micro_ranges(3, 8), vec![(0, 3)]);
        assert_eq!(micro_ranges(0, 4), Vec::<(usize, usize)>::new());
    }

    #[test]
    fn micro_grads_sum_to_the_full_batch_gradient() {
        let flow = tiny_flow(3);
        let x = flow.encode_batch(&tiny_corpus(64)).unwrap();

        // Reference: one tape over the whole batch.
        let (full_loss, full_grads) = flow.nll_grad_sum(&x);

        // Micro-batched: merge in order, compare within numerical tolerance
        // (the summation tree differs, so this is approximate equality; the
        // bit-exactness guarantee is across *worker counts*, not against
        // the monolithic tape).
        let outputs = compute_micro_grads(&flow, &x, 16, 1);
        let mut merged = GradBatch::new();
        let mut loss = 0.0f32;
        for (l, g) in &outputs {
            loss += l;
            merged.merge(g);
        }
        assert!((loss - full_loss).abs() / full_loss.abs() < 1e-4);
        for p in flow.parameters() {
            let a = full_grads.get(&p).unwrap();
            let b = merged.get(&p).unwrap();
            let scale = 1.0 + a.abs().max();
            assert!(
                a.sub(b).abs().max() / scale < 1e-3,
                "gradient mismatch for {}",
                p.name()
            );
        }
    }

    #[test]
    fn micro_grads_are_worker_count_invariant_bitwise() {
        let flow = tiny_flow(4);
        let x = flow.encode_batch(&tiny_corpus(96)).unwrap();
        let reference = compute_micro_grads(&flow, &x, 16, 1);
        for workers in [2, 3, 4, 8] {
            let parallel = compute_micro_grads(&flow, &x, 16, workers);
            assert_eq!(reference.len(), parallel.len());
            for ((l1, g1), (l2, g2)) in reference.iter().zip(parallel.iter()) {
                assert_eq!(l1.to_bits(), l2.to_bits(), "workers={workers}");
                for p in flow.parameters() {
                    let a = g1.get(&p).unwrap();
                    let b = g2.get(&p).unwrap();
                    assert_eq!(a.as_slice(), b.as_slice(), "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn dequantize_in_place_preserves_decoding() {
        let flow = tiny_flow(8);
        let passwords = vec!["jessica1".to_string(), "dragon99".to_string()];
        let x = flow.encode_batch(&passwords).unwrap();
        let mut noisy = x.clone();
        let mut rng = nnrng::seeded(9);
        dequantize_in_place(
            &mut noisy,
            flow.encoder().quantization_step() * 0.99,
            &mut rng,
        );
        assert_ne!(noisy, x);
        assert_eq!(flow.decode_batch(&noisy), passwords);
        let mut clean = x.clone();
        dequantize_in_place(&mut clean, 0.0, &mut rng);
        assert_eq!(clean, x);
    }

    #[test]
    fn validation_split_is_deterministic_and_disjoint() {
        let flow = tiny_flow(10);
        let x = flow.encode_batch(&tiny_corpus(100)).unwrap();
        let (t1, v1) = split_validation(&x, 0.2, 7);
        let (t2, v2) = split_validation(&x, 0.2, 7);
        assert_eq!(t1, t2);
        assert_eq!(v1, v2);
        let v1 = v1.unwrap();
        assert_eq!(t1.rows() + v1.rows(), x.rows());
        assert!(v1.rows() > 0);
        // Zero fraction: everything is training data.
        let (t, v) = split_validation(&x, 0.0, 7);
        assert_eq!(t.rows(), x.rows());
        assert!(v.is_none());
    }
}
