//! Pluggable positioned-read I/O with deterministic fault injection.
//!
//! [`DigestStore`](crate::DigestStore) never reads its artifact through a
//! bare [`File`]: every positioned read goes through the [`StoreIo`] trait
//! and the bounded-retry helper [`read_exact_at`]. In production the
//! implementation is [`FileIo`] (a plain `pread`); in the chaos suite it is
//! [`FaultyIo`], which wraps any `StoreIo` with a **seeded, deterministic**
//! [`FaultPlan`] injecting the whole taxonomy of read failures:
//!
//! * **short reads** — fewer bytes than asked, the POSIX-legal case almost
//!   no code path ever exercises;
//! * **EINTR** ([`ErrorKind::Interrupted`]) — retried essentially for free,
//!   as the kernel contract intends;
//! * **transient errors** ([`ErrorKind::WouldBlock`]) — retried a bounded
//!   number of times ([`RetryPolicy`]) before surfacing;
//! * **permanent errors / outages** — surfaced immediately; the serving
//!   layer's circuit breaker decides what happens next;
//! * **injected latency** — faulted reads can also stall, so timeout and
//!   deadline paths get exercised together with error paths.
//!
//! Fault decisions are a pure function of `(seed, read index)` via a
//! SplitMix64 stream, so a single-threaded request sequence sees the exact
//! same faults on every run — the chaos suite's determinism rests on this.

use std::fmt;
use std::fs::File;
use std::io::{self, ErrorKind, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Positioned reads over an artifact. One attempt per call: implementations
/// may return fewer bytes than requested (a short read) and may fail
/// transiently; callers go through [`read_exact_at`] for the retry
/// discipline. Implementations never move a shared cursor, so a store is
/// safe to share across serving threads.
pub trait StoreIo: Send + Sync + fmt::Debug {
    /// Reads up to `buf.len()` bytes at `offset`; returns the bytes read
    /// (0 means end-of-file).
    ///
    /// # Errors
    ///
    /// Any I/O failure; [`read_exact_at`] classifies it for retry.
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize>;

    /// Total byte length of the underlying artifact.
    ///
    /// # Errors
    ///
    /// Propagates metadata failures.
    fn byte_len(&self) -> io::Result<u64>;
}

/// The production [`StoreIo`]: positioned reads against a real file
/// (`pread` on unix; a mutex-serialized seek+read elsewhere).
#[derive(Debug)]
pub struct FileIo {
    file: File,
    #[cfg(not(unix))]
    seek_lock: std::sync::Mutex<()>,
}

impl FileIo {
    /// Opens `path` read-only.
    ///
    /// # Errors
    ///
    /// Propagates the open failure.
    pub fn open(path: impl AsRef<Path>) -> io::Result<FileIo> {
        Ok(FileIo {
            file: File::open(path)?,
            #[cfg(not(unix))]
            seek_lock: std::sync::Mutex::new(()),
        })
    }
}

impl StoreIo for FileIo {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt as _;
            self.file.read_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read as _, Seek as _, SeekFrom};
            let _guard = self.seek_lock.lock().expect("seek lock");
            let mut f = &self.file;
            f.seek(SeekFrom::Start(offset))?;
            f.read(buf)
        }
    }

    fn byte_len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

/// Bounded-retry policy for positioned reads.
///
/// Interrupts (EINTR) are part of the kernel contract and retried under a
/// separate, generous cap; transient errors are retried a small bounded
/// number of times (with the fault taxonomy's latency already paid by the
/// failing read, no extra sleep is inserted — the store layer is not the
/// place to queue). Permanent errors fail fast.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Transient failures tolerated per logical read before giving up.
    pub max_transient_retries: u32,
    /// EINTR deliveries tolerated per logical read before giving up.
    pub max_interrupt_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_transient_retries: 3,
            max_interrupt_retries: 64,
        }
    }
}

/// Whether an I/O error is worth a bounded retry (as opposed to EINTR,
/// retried under its own cap, and permanent errors, surfaced immediately).
fn is_transient(e: &io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Reads exactly `buf.len()` bytes at `offset`, absorbing short reads,
/// EINTR and bounded transient failures per `policy`.
///
/// # Errors
///
/// [`ErrorKind::UnexpectedEof`] if the file ends early; the last transient
/// error once the retry budget is exhausted; permanent errors immediately.
pub fn read_exact_at(
    io: &dyn StoreIo,
    buf: &mut [u8],
    offset: u64,
    policy: &RetryPolicy,
) -> io::Result<()> {
    let mut done = 0usize;
    let mut transient = 0u32;
    let mut interrupts = 0u32;
    while done < buf.len() {
        match io.read_at(&mut buf[done..], offset + done as u64) {
            Ok(0) => {
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "unexpected end of file in positioned read",
                ));
            }
            // A short read is progress, not a fault: continue from where
            // the kernel stopped.
            Ok(n) => done += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {
                interrupts += 1;
                if interrupts > policy.max_interrupt_retries {
                    return Err(e);
                }
            }
            Err(e) if is_transient(&e) => {
                transient += 1;
                if transient > policy.max_transient_retries {
                    return Err(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/// SplitMix64 — the per-read fault decision stream.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded fault schedule: per-mille rates for each fault class, rolled
/// deterministically per read index. Rates are applied in the order short
/// read → interrupt → transient; their sum must stay ≤ 1000.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed of the per-read decision stream.
    pub seed: u64,
    /// ‰ of reads returning roughly half the requested bytes.
    pub short_read_per_mille: u16,
    /// ‰ of reads failing with EINTR ([`ErrorKind::Interrupted`]).
    pub interrupt_per_mille: u16,
    /// ‰ of reads failing with a retryable transient error
    /// ([`ErrorKind::WouldBlock`]).
    pub transient_per_mille: u16,
    /// Latency added to every injected fault (and to outage reads), so
    /// failure paths are slow as well as wrong — like real disks.
    pub latency: Duration,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a base to customize).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            short_read_per_mille: 0,
            interrupt_per_mille: 0,
            transient_per_mille: 0,
            latency: Duration::ZERO,
        }
    }
}

/// Shared control surface of a [`FaultyIo`]: tests and operators flip
/// injection on/off (or declare a total outage) and read the counters
/// while the store is live behind an `Arc` in the server.
#[derive(Debug, Default)]
pub struct FaultInjector {
    /// Whether probabilistic faults fire at all.
    active: AtomicBool,
    /// Whether every read fails permanently (a dead disk / lost mount).
    outage: AtomicBool,
    /// Total `read_at` calls observed (including retries).
    reads: AtomicU64,
    /// Faults injected so far.
    injected: AtomicU64,
}

impl FaultInjector {
    /// Enables or disables the probabilistic fault classes.
    pub fn set_active(&self, active: bool) {
        self.active.store(active, Ordering::SeqCst);
    }

    /// Starts or ends a total outage (every read fails permanently).
    pub fn set_outage(&self, outage: bool) {
        self.outage.store(outage, Ordering::SeqCst);
    }

    /// Total read attempts seen so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::SeqCst)
    }

    /// Faults injected so far.
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }
}

/// A [`StoreIo`] decorator injecting faults per its [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyIo {
    inner: Box<dyn StoreIo>,
    plan: FaultPlan,
    injector: Arc<FaultInjector>,
}

impl FaultyIo {
    /// Wraps `inner` with `plan`; injection starts active.
    pub fn new(inner: Box<dyn StoreIo>, plan: FaultPlan) -> FaultyIo {
        let injector = Arc::new(FaultInjector::default());
        injector.set_active(true);
        FaultyIo {
            inner,
            plan,
            injector,
        }
    }

    /// The shared control handle (keep a clone before boxing the io into a
    /// [`DigestStore`](crate::DigestStore)).
    pub fn injector(&self) -> Arc<FaultInjector> {
        Arc::clone(&self.injector)
    }

    fn stall(&self) {
        if !self.plan.latency.is_zero() {
            std::thread::sleep(self.plan.latency);
        }
    }
}

impl StoreIo for FaultyIo {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        let index = self.injector.reads.fetch_add(1, Ordering::SeqCst);
        if self.injector.outage.load(Ordering::SeqCst) {
            self.injector.injected.fetch_add(1, Ordering::SeqCst);
            self.stall();
            return Err(io::Error::other("injected permanent store outage"));
        }
        if !self.injector.active.load(Ordering::SeqCst) {
            return self.inner.read_at(buf, offset);
        }
        let roll =
            (splitmix64(self.plan.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 1000) as u16;
        let mut band = self.plan.short_read_per_mille;
        if roll < band && buf.len() >= 2 {
            self.injector.injected.fetch_add(1, Ordering::SeqCst);
            self.stall();
            let half = buf.len() / 2;
            return self.inner.read_at(&mut buf[..half], offset);
        }
        band = band.saturating_add(self.plan.interrupt_per_mille);
        if roll < band {
            self.injector.injected.fetch_add(1, Ordering::SeqCst);
            self.stall();
            return Err(io::Error::new(ErrorKind::Interrupted, "injected EINTR"));
        }
        band = band.saturating_add(self.plan.transient_per_mille);
        if roll < band {
            self.injector.injected.fetch_add(1, Ordering::SeqCst);
            self.stall();
            return Err(io::Error::new(
                ErrorKind::WouldBlock,
                "injected transient fault",
            ));
        }
        self.inner.read_at(buf, offset)
    }

    fn byte_len(&self) -> io::Result<u64> {
        // Length is header metadata read once at open; faulting it would
        // only test `open`'s error propagation, which the corruption tests
        // already cover.
        self.inner.byte_len()
    }
}

// ---------------------------------------------------------------------------
// Write-side fault injection and scratch-file lifetime guards
// ---------------------------------------------------------------------------

/// A [`Write`] decorator that fails deterministically once a byte budget is
/// exhausted — the write-side counterpart of [`FaultyIo`]. The chaos suite
/// wraps builder spill files in it to prove that a spill dying mid-write
/// leaves no scratch files behind.
#[derive(Debug)]
pub struct FaultyWrite<W: Write> {
    inner: W,
    remaining: u64,
}

impl<W: Write> FaultyWrite<W> {
    /// Wraps `inner`: the first `byte_budget` bytes are accepted, every
    /// write after that fails permanently.
    pub fn new(inner: W, byte_budget: u64) -> FaultyWrite<W> {
        FaultyWrite {
            inner,
            remaining: byte_budget,
        }
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::other(
                "injected write fault: byte budget exhausted",
            ));
        }
        let allowed = buf
            .len()
            .min(usize::try_from(self.remaining).unwrap_or(usize::MAX));
        let written = self.inner.write(&buf[..allowed])?;
        self.remaining -= written as u64;
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A scratch file that unlinks itself on drop. Builders create the guard
/// *before* the file, so a spill that errors mid-write — or a k-way merge
/// that fails after some runs were spilled — still removes every run when
/// the builder unwinds.
#[derive(Debug)]
pub(crate) struct ScratchFile {
    path: PathBuf,
}

impl ScratchFile {
    pub(crate) fn new(path: PathBuf) -> ScratchFile {
        ScratchFile { path }
    }

    pub(crate) fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted io: replays a fixed sequence of outcomes, then serves
    /// zeroes.
    #[derive(Debug)]
    struct Scripted {
        script: std::sync::Mutex<Vec<Outcome>>,
    }

    #[derive(Debug)]
    enum Outcome {
        Ok(usize),
        Err(ErrorKind),
    }

    impl Scripted {
        fn new(script: Vec<Outcome>) -> Scripted {
            Scripted {
                script: std::sync::Mutex::new(script),
            }
        }
    }

    impl StoreIo for Scripted {
        fn read_at(&self, buf: &mut [u8], _offset: u64) -> io::Result<usize> {
            let mut script = self.script.lock().unwrap();
            if script.is_empty() {
                buf.fill(0);
                return Ok(buf.len());
            }
            match script.remove(0) {
                Outcome::Ok(n) => {
                    let n = n.min(buf.len());
                    buf[..n].fill(0);
                    Ok(n)
                }
                Outcome::Err(kind) => Err(io::Error::new(kind, "scripted")),
            }
        }

        fn byte_len(&self) -> io::Result<u64> {
            Ok(u64::MAX)
        }
    }

    #[test]
    fn short_reads_and_eintr_are_absorbed() {
        let io = Scripted::new(vec![
            Outcome::Ok(3),
            Outcome::Err(ErrorKind::Interrupted),
            Outcome::Ok(2),
            Outcome::Err(ErrorKind::WouldBlock),
            Outcome::Ok(3),
        ]);
        let mut buf = [1u8; 8];
        read_exact_at(&io, &mut buf, 0, &RetryPolicy::default()).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn transient_budget_is_bounded_and_permanent_fails_fast() {
        let io = Scripted::new(vec![
            Outcome::Err(ErrorKind::WouldBlock),
            Outcome::Err(ErrorKind::WouldBlock),
            Outcome::Err(ErrorKind::WouldBlock),
            Outcome::Err(ErrorKind::WouldBlock),
        ]);
        let mut buf = [0u8; 4];
        let policy = RetryPolicy {
            max_transient_retries: 3,
            max_interrupt_retries: 64,
        };
        let err = read_exact_at(&io, &mut buf, 0, &policy).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::WouldBlock, "budget exhausted");

        let io = Scripted::new(vec![Outcome::Err(ErrorKind::PermissionDenied)]);
        let err = read_exact_at(&io, &mut buf, 0, &policy).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::PermissionDenied, "no retry");

        let io = Scripted::new(vec![Outcome::Ok(0)]);
        let err = read_exact_at(&io, &mut buf, 0, &policy).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn fault_plans_are_deterministic_per_seed() {
        let plan = FaultPlan {
            seed: 7,
            short_read_per_mille: 100,
            interrupt_per_mille: 100,
            transient_per_mille: 100,
            latency: Duration::ZERO,
        };
        let run = || {
            let io = FaultyIo::new(Box::new(Scripted::new(Vec::new())), plan);
            let injector = io.injector();
            let mut outcomes = Vec::new();
            for i in 0..200 {
                let mut buf = [0u8; 16];
                outcomes.push(match io.read_at(&mut buf, i) {
                    Ok(n) => format!("ok{n}"),
                    Err(e) => format!("{:?}", e.kind()),
                });
            }
            (outcomes, injector.injected_faults())
        };
        let (a, faults_a) = run();
        let (b, faults_b) = run();
        assert_eq!(a, b, "same seed, same fault stream");
        assert_eq!(faults_a, faults_b);
        assert!(faults_a > 0, "a 300‰ plan over 200 reads must inject");
        assert!(
            a.iter().any(|o| o == "ok8"),
            "short reads must halve 16-byte requests"
        );
    }

    #[test]
    fn outage_and_deactivation_toggle_at_runtime() {
        let plan = FaultPlan {
            seed: 1,
            short_read_per_mille: 1000,
            interrupt_per_mille: 0,
            transient_per_mille: 0,
            latency: Duration::ZERO,
        };
        let io = FaultyIo::new(Box::new(Scripted::new(Vec::new())), plan);
        let injector = io.injector();
        let mut buf = [0u8; 8];

        injector.set_outage(true);
        assert!(io.read_at(&mut buf, 0).is_err(), "outage fails every read");
        injector.set_outage(false);

        injector.set_active(false);
        assert_eq!(io.read_at(&mut buf, 0).unwrap(), 8, "quiet when inactive");
        injector.set_active(true);
        assert_eq!(io.read_at(&mut buf, 0).unwrap(), 4, "short when active");
        assert!(injector.reads() >= 3);
    }

    #[test]
    fn faulty_write_honors_its_byte_budget_exactly() {
        let mut sink = FaultyWrite::new(Vec::new(), 10);
        assert_eq!(sink.write(b"0123456").unwrap(), 7);
        assert_eq!(sink.write(b"89abcdef").unwrap(), 3, "clipped to budget");
        let err = sink.write(b"x").unwrap_err();
        assert!(err.to_string().contains("injected write fault"));
    }

    #[test]
    fn scratch_files_unlink_themselves_on_drop() {
        let path =
            std::env::temp_dir().join(format!("pf-scratch-guard-{}.tmp", std::process::id()));
        let guard = ScratchFile::new(path.clone());
        std::fs::write(guard.path(), b"run data").unwrap();
        assert!(path.exists());
        drop(guard);
        assert!(!path.exists(), "guard must unlink the file");
    }
}
