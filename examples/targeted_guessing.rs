//! Targeted guessing with partial knowledge (the Table V scenario).
//!
//! If an attacker knows something about the target password — say, that it
//! is built around the name "jimmy" — the flow's smooth latent space lets
//! them concentrate guesses in the latent neighbourhood of a pivot string
//! instead of sampling the whole prior.
//!
//! ```text
//! cargo run --release --example targeted_guessing
//! ```

use std::collections::HashSet;

use passflow::{train, CorpusConfig, FlowConfig, PassFlow, SyntheticCorpusGenerator, TrainConfig};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small()).generate(3);
    let split = corpus.paper_split(0.8, 4_000, 3);

    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let flow = PassFlow::new(FlowConfig::tiny(), &mut rng)?;
    train(&flow, &split.train, &TrainConfig::tiny().with_epochs(6))?;

    // The attacker's partial knowledge: the victim's password is probably a
    // variation of "jimmy91".
    let pivot = "jimmy91";
    println!("bounded sampling around the pivot {pivot:?}\n");
    println!("{:<12} {:<60}", "sigma", "first unique neighbours");
    for sigma in [0.05f32, 0.08, 0.10, 0.15] {
        let mut unique: Vec<String> = Vec::new();
        let mut seen = HashSet::new();
        while unique.len() < 8 {
            for candidate in flow.sample_near(pivot, sigma, 64, &mut rng)? {
                if !candidate.is_empty() && seen.insert(candidate.clone()) {
                    unique.push(candidate);
                    if unique.len() == 8 {
                        break;
                    }
                }
            }
        }
        assert_eq!(
            unique.len(),
            8,
            "sigma {sigma}: must find 8 unique neighbours"
        );
        for candidate in &unique {
            assert!(
                flow.encoder().can_encode(candidate),
                "sigma {sigma}: unencodable neighbour {candidate:?}"
            );
        }
        println!("{sigma:<12} {}", unique.join("  "));
    }

    // A near-zero sigma collapses onto the pivot itself — the latent
    // neighbourhood really is centred on f(pivot).
    let collapsed = flow.sample_near(pivot, 1e-5, 8, &mut rng)?;
    assert!(
        collapsed.iter().all(|p| p == pivot),
        "sigma→0 must reproduce the pivot, got {collapsed:?}"
    );

    println!(
        "\nsmall sigma keeps guesses structurally close to the pivot; larger sigma trades\n\
         similarity for coverage — exactly the behaviour reported in Table V of the paper."
    );
    Ok(())
}
