/root/repo/target/debug/deps/table6-1c0739c84f4388fa.d: crates/bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-1c0739c84f4388fa.rmeta: crates/bench/src/bin/table6.rs Cargo.toml

crates/bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
