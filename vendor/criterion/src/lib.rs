//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! measure-and-print harness instead of criterion's statistical machinery.
//!
//! Each benchmark runs a short warm-up, then `sample_size` timed samples of
//! an adaptively chosen iteration count, and reports the median per-iteration
//! time (plus throughput when configured). Good enough to compare strategies
//! and catch order-of-magnitude regressions; swap in the real crate for
//! publication-grade statistics.

#![warn(rust_2018_idioms)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many abstract elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of a parameterized benchmark within a group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing harness handed to each benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `body` under `id`.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut body: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let per_iter = run_samples(self.sample_size, &mut |b| body(b));
        report(&label, per_iter, self.throughput);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Benchmarks `body` under `id`, passing `input` through.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut body: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let per_iter = run_samples(self.sample_size, &mut |b| body(b, input));
        report(&label, per_iter, self.throughput);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Finishes the group (a no-op in this shim; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmarks `body` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) -> &mut Self {
        let per_iter = run_samples(10, &mut |b| body(b));
        report(id, per_iter, None);
        self.benchmarks_run += 1;
        self
    }

    /// Number of benchmarks executed so far.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Runs warm-up plus `samples` timed samples; returns the median seconds per
/// iteration.
fn run_samples(samples: usize, body: &mut dyn FnMut(&mut Bencher)) -> f64 {
    // Warm-up and calibration: find an iteration count that takes ≥ ~5 ms,
    // so Instant's resolution stays negligible.
    let mut iters = 1u64;
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        body(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            body(&mut bencher);
            bencher.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    per_iter[per_iter.len() / 2]
}

fn report(label: &str, seconds_per_iter: f64, throughput: Option<Throughput>) {
    let time = format_seconds(seconds_per_iter);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / seconds_per_iter;
            println!("{label:<44} {time:>12}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / seconds_per_iter;
            println!("{label:<44} {time:>12}/iter  {rate:>14.0} B/s");
        }
        None => println!("{label:<44} {time:>12}/iter"),
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a benchmark harness entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(2);
        group.throughput(Throughput::Elements(4));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert_eq!(c.benchmarks_run(), 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
