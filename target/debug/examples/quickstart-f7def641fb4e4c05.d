/root/repo/target/debug/examples/quickstart-f7def641fb4e4c05.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f7def641fb4e4c05: examples/quickstart.rs

examples/quickstart.rs:
