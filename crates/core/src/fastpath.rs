//! The flow's inference fast path: weight snapshots and scratch workspaces.
//!
//! Every guessing experiment is bounded by the same steady-state loop —
//! sample latents, invert the flow, decode — so this module restructures
//! that loop's per-batch cost into pure compute: [`FlowSnapshot`] holds an
//! owned, immutable copy of every coupling layer's weights (exported once
//! per chunk/epoch instead of cloning each matrix through a lock per layer
//! call), and [`FlowWorkspace`] supplies the scratch tensors the fused
//! kernels write into, so after warm-up no buffer is allocated no matter
//! how many batches are processed.
//!
//! All fast-path transforms are **bit-exact** (0 ULP) with the reference
//! implementations on [`CouplingLayer`] and `PassFlow::*_reference`; the
//! conformance suite in `tests/fastpath.rs` and the engine's
//! shard-invariance tests are the oracle.

use passflow_nn::kernels::{
    affine_coupling_forward_into, affine_coupling_inverse_into, mul_row_broadcast_into,
    row_squared_norms_into,
};
use passflow_nn::{
    NetWorkspace, Parameter, QuantizedResNetSnapshot, ResNetSnapshot, Tensor, ThreadPool,
};
use std::sync::Arc;

/// ln(2π), matching the constant used by the training loss and the prior.
const LN_2PI: f32 = 1.837_877_1;

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

/// Scratch buffers threaded through `ResNet` evaluation →
/// [`CouplingSnapshot`] → [`FlowSnapshot`] → the attack engine's chunk loop.
///
/// Reusing one workspace across calls is what makes steady-state generation
/// allocation-free; results are byte-identical whether a workspace is fresh
/// or reused (asserted by the fast-path conformance tests).
#[derive(Clone, Debug, Default)]
pub struct FlowWorkspace {
    /// Hidden-activation pool for the `s`/`t` ResNets.
    net: NetWorkspace,
    /// Masked copy of the current layer input (`b ⊙ x`).
    masked: Tensor,
    /// Scale-network output.
    s: Tensor,
    /// Translation-network output.
    t: Tensor,
    /// Ping/pong buffers for chaining coupling layers.
    ping: Tensor,
    pong: Tensor,
    /// Latent output buffer for the fused log-density path.
    z_buf: Tensor,
    /// Log-determinant accumulator for the fused log-density path.
    log_det_buf: Tensor,
}

impl FlowWorkspace {
    /// Creates an empty (cold) workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace whose GEMMs run on a fresh [`ThreadPool`] of
    /// `threads` threads (`threads <= 1` installs no pool — the serial
    /// path). Results are bit-identical at any thread count.
    pub fn with_threads(threads: usize) -> Self {
        let mut ws = Self::new();
        if threads > 1 {
            ws.set_thread_pool(Some(Arc::new(ThreadPool::new(threads))));
        }
        ws
    }

    /// Installs (or removes, with `None`) the GEMM thread pool used by every
    /// forward/inverse/log-prob pass through this workspace.
    pub fn set_thread_pool(&mut self, pool: Option<Arc<ThreadPool>>) {
        self.net.set_thread_pool(pool);
    }

    /// The installed GEMM thread pool, if any.
    pub fn thread_pool(&self) -> Option<&ThreadPool> {
        self.net.thread_pool()
    }
}

// ---------------------------------------------------------------------------
// Coupling snapshot
// ---------------------------------------------------------------------------

/// An owned, immutable copy of one coupling layer's masks and network
/// weights, evaluated through the fused kernels.
#[derive(Clone, Debug)]
pub struct CouplingSnapshot {
    mask: Tensor,
    inv_mask: Tensor,
    s_net: ResNetSnapshot,
    t_net: ResNetSnapshot,
    dim: usize,
}

impl CouplingSnapshot {
    /// Assembles a coupling snapshot from its mask and network snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `mask` is not a binary `1 × dim` row vector.
    pub fn new(mask: Tensor, s_net: ResNetSnapshot, t_net: ResNetSnapshot) -> Self {
        assert_eq!(mask.rows(), 1, "mask must be a row vector");
        assert!(
            mask.as_slice().iter().all(|&v| v == 0.0 || v == 1.0),
            "mask must be binary"
        );
        let dim = mask.cols();
        let inv_mask = mask.neg().add_scalar(1.0);
        CouplingSnapshot {
            mask,
            inv_mask,
            s_net,
            t_net,
            dim,
        }
    }

    /// Input/output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Fast-path forward transform: writes `z` into `z_out` and **adds**
    /// each row's log-determinant to `log_det_acc` (a `rows × 1` tensor),
    /// matching how the flow accumulates log-determinants across layers.
    ///
    /// Bit-exact with [`CouplingLayer::forward`](crate::CouplingLayer::forward).
    pub fn forward_into(
        &self,
        x: &Tensor,
        ws: &mut FlowWorkspace,
        z_out: &mut Tensor,
        log_det_acc: &mut Tensor,
    ) {
        assert_eq!(x.cols(), self.dim, "input width must equal coupling dim");
        mul_row_broadcast_into(x, &self.mask, &mut ws.masked);
        self.s_net.forward_into(&ws.masked, &mut ws.net, &mut ws.s);
        self.t_net.forward_into(&ws.masked, &mut ws.net, &mut ws.t);
        affine_coupling_forward_into(
            x,
            &ws.s,
            &ws.t,
            &self.mask,
            &self.inv_mask,
            z_out,
            log_det_acc,
        );
    }

    /// Fast-path inverse transform: recovers `x` from `z` into `x_out`.
    ///
    /// Bit-exact with [`CouplingLayer::inverse`](crate::CouplingLayer::inverse).
    pub fn inverse_into(&self, z: &Tensor, ws: &mut FlowWorkspace, x_out: &mut Tensor) {
        assert_eq!(z.cols(), self.dim, "input width must equal coupling dim");
        mul_row_broadcast_into(z, &self.mask, &mut ws.masked);
        self.s_net.forward_into(&ws.masked, &mut ws.net, &mut ws.s);
        self.t_net.forward_into(&ws.masked, &mut ws.net, &mut ws.t);
        affine_coupling_inverse_into(z, &ws.s, &ws.t, &self.mask, &self.inv_mask, x_out);
    }
}

// ---------------------------------------------------------------------------
// Flow snapshot
// ---------------------------------------------------------------------------

/// An owned, immutable snapshot of an entire flow's weights.
///
/// The snapshot records each source [`Parameter`]'s version stamp at export
/// time; [`FlowSnapshot::is_current`] compares stamps so `PassFlow` can
/// cache a snapshot and invalidate it automatically when an optimizer (or
/// `load_weights`) mutates any parameter.
#[derive(Clone, Debug)]
pub struct FlowSnapshot {
    couplings: Vec<CouplingSnapshot>,
    dim: usize,
    params: Vec<Parameter>,
    stamps: Vec<u64>,
}

impl FlowSnapshot {
    /// Assembles a flow snapshot from per-layer coupling snapshots plus the
    /// live parameters they were exported from (used for staleness checks).
    ///
    /// # Panics
    ///
    /// Panics if `couplings` is empty, dimensions disagree, or the stamp
    /// bookkeeping is inconsistent.
    pub fn new(couplings: Vec<CouplingSnapshot>, params: Vec<Parameter>) -> Self {
        assert!(!couplings.is_empty(), "flow has at least one coupling");
        let dim = couplings[0].dim();
        assert!(
            couplings.iter().all(|c| c.dim() == dim),
            "all couplings must share the flow dimension"
        );
        let stamps = params.iter().map(Parameter::version).collect();
        FlowSnapshot {
            couplings,
            dim,
            params,
            stamps,
        }
    }

    /// Dimensionality of the data and latent spaces.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of coupling layers.
    pub fn num_couplings(&self) -> usize {
        self.couplings.len()
    }

    /// Bytes held by the f32 coupling-network weights (for compression
    /// reporting against [`QuantizedFlowSnapshot::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        self.couplings
            .iter()
            .map(|c| c.s_net.memory_bytes() + c.t_net.memory_bytes())
            .sum()
    }

    /// Returns `true` while no source parameter has been mutated since the
    /// snapshot was exported.
    pub fn is_current(&self) -> bool {
        self.params
            .iter()
            .zip(self.stamps.iter())
            .all(|(p, &stamp)| p.version() == stamp)
    }

    /// Applies the forward flow `z = f_θ(x)` into `z_out`, writing the
    /// per-sample log-determinants into `log_det_out` (`rows × 1`).
    ///
    /// Bit-exact with `PassFlow::forward_reference`.
    pub fn forward_into(
        &self,
        x: &Tensor,
        ws: &mut FlowWorkspace,
        z_out: &mut Tensor,
        log_det_out: &mut Tensor,
    ) {
        assert_eq!(x.cols(), self.dim, "input width must equal flow dimension");
        log_det_out.resize(x.rows(), 1);
        log_det_out.as_mut_slice().fill(0.0);
        chain(
            self.couplings.iter(),
            x,
            ws,
            z_out,
            |coupling, src, ws, dst| {
                coupling.forward_into(src, ws, dst, log_det_out);
            },
        );
    }

    /// Applies the inverse flow `x = f_θ⁻¹(z)` into `x_out`.
    ///
    /// Bit-exact with `PassFlow::inverse_reference`.
    pub fn inverse_into(&self, z: &Tensor, ws: &mut FlowWorkspace, x_out: &mut Tensor) {
        assert_eq!(z.cols(), self.dim, "input width must equal flow dimension");
        chain(
            self.couplings.iter().rev(),
            z,
            ws,
            x_out,
            |coupling, src, ws, dst| coupling.inverse_into(src, ws, dst),
        );
    }

    /// Exact log-density of each row of `x` (Equation 5) through the fast
    /// path, written into `log_prob_out` (`rows × 1`):
    /// `log p_θ(x) = −½·(‖f_θ(x)‖² + D·ln 2π) + log |det ∂f_θ/∂x|`.
    ///
    /// The forward transform, the per-row squared norms
    /// ([`row_squared_norms_into`]) and the per-row log-determinants all run
    /// in workspace scratch, so batched scoring (the strength subsystem's
    /// hot loop) allocates nothing after warm-up. Bit-exact with
    /// `PassFlow::log_prob_reference`.
    pub fn log_prob_into(&self, x: &Tensor, ws: &mut FlowWorkspace, log_prob_out: &mut Tensor) {
        let mut z = std::mem::take(&mut ws.z_buf);
        let mut log_det = std::mem::take(&mut ws.log_det_buf);
        self.forward_into(x, ws, &mut z, &mut log_det);
        row_squared_norms_into(&z, log_prob_out);
        let norm = self.dim as f32 * LN_2PI;
        for (lp, ld) in log_prob_out
            .as_mut_slice()
            .iter_mut()
            .zip(log_det.as_slice())
        {
            // Same operation order as the reference prior + add chain:
            // lp = -0.5 * (‖z‖² + D·ln 2π), then lp + log_det.
            *lp = -0.5 * (*lp + norm) + ld;
        }
        ws.z_buf = z;
        ws.log_det_buf = log_det;
    }

    /// Convenience inverse allocating its own workspace and output.
    pub fn inverse(&self, z: &Tensor) -> Tensor {
        let mut ws = FlowWorkspace::new();
        let mut out = Tensor::zeros(0, 0);
        self.inverse_into(z, &mut ws, &mut out);
        out
    }

    /// Convenience forward allocating its own workspace and outputs.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Tensor) {
        let mut ws = FlowWorkspace::new();
        let mut z = Tensor::zeros(0, 0);
        let mut log_det = Tensor::zeros(0, 0);
        self.forward_into(x, &mut ws, &mut z, &mut log_det);
        (z, log_det)
    }

    /// Converts this snapshot to the opt-in int8 tier (see
    /// [`QuantizedFlowSnapshot`]). The conversion is deterministic; the
    /// resulting scores are approximate — measure the error with
    /// `strength::probe_quantization` before serving from it.
    pub fn quantize(&self) -> QuantizedFlowSnapshot {
        QuantizedFlowSnapshot {
            couplings: self
                .couplings
                .iter()
                .map(QuantizedCouplingSnapshot::from_coupling)
                .collect(),
            dim: self.dim,
        }
    }
}

// ---------------------------------------------------------------------------
// Quantized tier
// ---------------------------------------------------------------------------

/// One coupling layer with int8-quantized `s`/`t` networks.
///
/// Only the scoring direction (forward + log-determinant) is provided: the
/// quantized tier exists for scoring-only workloads (serve `/v1/score`,
/// strength tables), and inverting through approximate weights would let
/// quantization error compound across the guess-generation chain.
#[derive(Clone, Debug)]
pub struct QuantizedCouplingSnapshot {
    mask: Tensor,
    inv_mask: Tensor,
    s_net: QuantizedResNetSnapshot,
    t_net: QuantizedResNetSnapshot,
    dim: usize,
}

impl QuantizedCouplingSnapshot {
    fn from_coupling(coupling: &CouplingSnapshot) -> Self {
        QuantizedCouplingSnapshot {
            mask: coupling.mask.clone(),
            inv_mask: coupling.inv_mask.clone(),
            s_net: QuantizedResNetSnapshot::from_snapshot(&coupling.s_net),
            t_net: QuantizedResNetSnapshot::from_snapshot(&coupling.t_net),
            dim: coupling.dim,
        }
    }

    /// Quantized forward transform; same structure as
    /// [`CouplingSnapshot::forward_into`], approximate values.
    fn forward_into(
        &self,
        x: &Tensor,
        ws: &mut FlowWorkspace,
        z_out: &mut Tensor,
        log_det_acc: &mut Tensor,
    ) {
        assert_eq!(x.cols(), self.dim, "input width must equal coupling dim");
        mul_row_broadcast_into(x, &self.mask, &mut ws.masked);
        self.s_net.forward_into(&ws.masked, &mut ws.net, &mut ws.s);
        self.t_net.forward_into(&ws.masked, &mut ws.net, &mut ws.t);
        affine_coupling_forward_into(
            x,
            &ws.s,
            &ws.t,
            &self.mask,
            &self.inv_mask,
            z_out,
            log_det_acc,
        );
    }
}

/// The opt-in int8 tier of a [`FlowSnapshot`]: every coupling network's
/// weights stored as one byte per element plus per-row scales (~4× smaller),
/// scoring through the same fused kernels.
///
/// Scores are **approximate**: per model, the error bound
/// (max |Δ log-prob| vs. the exact `log_prob_reference` oracle) must be
/// measured — `strength::probe_quantization` does exactly that — and
/// reported to callers so they opt in knowingly. Scores are deterministic
/// and thread-count invariant, exactly like the f32 path.
#[derive(Clone, Debug)]
pub struct QuantizedFlowSnapshot {
    couplings: Vec<QuantizedCouplingSnapshot>,
    dim: usize,
}

impl QuantizedFlowSnapshot {
    /// Dimensionality of the data and latent spaces.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of coupling layers.
    pub fn num_couplings(&self) -> usize {
        self.couplings.len()
    }

    /// Bytes held by the quantized coupling networks.
    pub fn memory_bytes(&self) -> usize {
        self.couplings
            .iter()
            .map(|c| c.s_net.memory_bytes() + c.t_net.memory_bytes())
            .sum()
    }

    /// Quantized forward flow; same contract as
    /// [`FlowSnapshot::forward_into`], approximate values.
    pub fn forward_into(
        &self,
        x: &Tensor,
        ws: &mut FlowWorkspace,
        z_out: &mut Tensor,
        log_det_out: &mut Tensor,
    ) {
        assert_eq!(x.cols(), self.dim, "input width must equal flow dimension");
        log_det_out.resize(x.rows(), 1);
        log_det_out.as_mut_slice().fill(0.0);
        chain(
            self.couplings.iter(),
            x,
            ws,
            z_out,
            |coupling, src, ws, dst| {
                coupling.forward_into(src, ws, dst, log_det_out);
            },
        );
    }

    /// Quantized log-density of each row of `x` into `log_prob_out`
    /// (`rows × 1`); same structure as [`FlowSnapshot::log_prob_into`],
    /// approximate values.
    pub fn log_prob_into(&self, x: &Tensor, ws: &mut FlowWorkspace, log_prob_out: &mut Tensor) {
        let mut z = std::mem::take(&mut ws.z_buf);
        let mut log_det = std::mem::take(&mut ws.log_det_buf);
        self.forward_into(x, ws, &mut z, &mut log_det);
        row_squared_norms_into(&z, log_prob_out);
        let norm = self.dim as f32 * LN_2PI;
        for (lp, ld) in log_prob_out
            .as_mut_slice()
            .iter_mut()
            .zip(log_det.as_slice())
        {
            *lp = -0.5 * (*lp + norm) + ld;
        }
        ws.z_buf = z;
        ws.log_det_buf = log_det;
    }
}

/// Chains coupling layers (in the iterator's order) through the workspace's
/// ping/pong buffers: the first layer reads `input`, the last writes `out`,
/// and intermediates bounce between two reused scratch tensors. Generic over
/// the coupling type so the exact and quantized tiers share it.
fn chain<'a, C: 'a>(
    couplings: impl ExactSizeIterator<Item = &'a C>,
    input: &Tensor,
    ws: &mut FlowWorkspace,
    out: &mut Tensor,
    mut step_fn: impl FnMut(&C, &Tensor, &mut FlowWorkspace, &mut Tensor),
) {
    let n = couplings.len();
    let mut ping = std::mem::take(&mut ws.ping);
    let mut pong = std::mem::take(&mut ws.pong);
    for (step, coupling) in couplings.enumerate() {
        let src: &Tensor = if step == 0 { input } else { &ping };
        if step == n - 1 {
            step_fn(coupling, src, ws, out);
        } else {
            step_fn(coupling, src, ws, &mut pong);
            std::mem::swap(&mut ping, &mut pong);
        }
    }
    ws.ping = ping;
    ws.pong = pong;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use crate::flow::PassFlow;
    use passflow_nn::rng as nnrng;

    fn flow(seed: u64) -> PassFlow {
        let mut rng = nnrng::seeded(seed);
        PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn snapshot_inverse_is_bit_exact_with_reference() {
        let f = flow(31);
        let mut rng = nnrng::seeded(32);
        let z = Tensor::randn(17, f.dim(), &mut rng);
        let reference = f.inverse_reference(&z);
        let snap = f.snapshot();
        assert_eq!(snap.inverse(&z).as_slice(), reference.as_slice());
    }

    #[test]
    fn snapshot_forward_is_bit_exact_with_reference() {
        let f = flow(33);
        let mut rng = nnrng::seeded(34);
        let x = Tensor::randn(9, f.dim(), &mut rng);
        let (z_ref, ld_ref) = f.forward_reference(&x);
        let (z_fast, ld_fast) = f.snapshot().forward(&x);
        assert_eq!(z_fast.as_slice(), z_ref.as_slice());
        assert_eq!(ld_fast.as_slice(), ld_ref.as_slice());
    }

    #[test]
    fn snapshot_detects_weight_mutations() {
        let f = flow(35);
        let snap = f.snapshot();
        assert!(snap.is_current());
        let p = &f.parameters()[0];
        p.set_value(p.value().add_scalar(0.25));
        assert!(!snap.is_current());
    }

    #[test]
    fn workspace_reuse_is_byte_identical_to_fresh() {
        let f = flow(36);
        let snap = f.snapshot();
        let mut rng = nnrng::seeded(37);
        let mut ws = FlowWorkspace::new();
        let mut out = Tensor::zeros(0, 0);
        for trial in 0..5 {
            let z = Tensor::randn(3 + trial * 11, f.dim(), &mut rng);
            snap.inverse_into(&z, &mut ws, &mut out);
            assert_eq!(out.as_slice(), snap.inverse(&z).as_slice());
        }
    }
}
