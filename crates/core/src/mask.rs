//! Coupling-layer masking strategies (Section III-A.1 and Section V-C).
//!
//! A coupling layer conditions half of the input dimensions on the other
//! half. Which dimensions go in which half is decided by a binary mask `b`;
//! consecutive coupling layers alternate between `b` and `1 − b` so every
//! dimension is transformed (Figure 1 of the paper).
//!
//! The paper evaluates three strategies (Table VI):
//!
//! * **char-run m** — runs of `m` consecutive zeros and ones
//!   (`m = 1` → `0101…`, `m = 2` → `0011 0011…`); `m = 1` performs best and
//!   is the default,
//! * **horizontal** — the first half of the password conditions the second
//!   half (`000…0111…1`).

use serde::{Deserialize, Serialize};

/// How coupling-layer binary masks are constructed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MaskStrategy {
    /// Alternating runs of `m` zeros and `m` ones (the paper's "char-run m").
    CharRun(usize),
    /// First half zeros, second half ones (the paper's "horizontal" masking).
    Horizontal,
}

impl Default for MaskStrategy {
    /// Char-run masking with `m = 1`, the best-performing strategy in
    /// Table VI.
    fn default() -> Self {
        MaskStrategy::CharRun(1)
    }
}

impl std::fmt::Display for MaskStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MaskStrategy::CharRun(m) => write!(f, "char-run {m}"),
            MaskStrategy::Horizontal => write!(f, "horizontal"),
        }
    }
}

impl MaskStrategy {
    /// Builds the base binary mask `b` for a `dim`-dimensional input.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or if a `CharRun` strategy has `m = 0`.
    pub fn base_mask(&self, dim: usize) -> Vec<f32> {
        assert!(dim > 0, "mask dimension must be positive");
        match *self {
            MaskStrategy::CharRun(m) => {
                assert!(m > 0, "char-run length must be positive");
                (0..dim)
                    .map(|i| if (i / m) % 2 == 0 { 1.0 } else { 0.0 })
                    .collect()
            }
            MaskStrategy::Horizontal => {
                let half = dim / 2;
                (0..dim).map(|i| if i < half { 1.0 } else { 0.0 }).collect()
            }
        }
    }

    /// Returns the mask for coupling layer `layer_index`: even layers use the
    /// base mask `b`, odd layers use the complement `1 − b`, so consecutive
    /// layers transform complementary subsets of the dimensions.
    pub fn mask_for_layer(&self, layer_index: usize, dim: usize) -> Vec<f32> {
        let base = self.base_mask(dim);
        if layer_index.is_multiple_of(2) {
            base
        } else {
            base.into_iter().map(|v| 1.0 - v).collect()
        }
    }

    /// Human-readable identifier used in reports and benchmarks.
    pub fn label(&self) -> String {
        self.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_run_1_alternates_every_position() {
        let b = MaskStrategy::CharRun(1).base_mask(6);
        assert_eq!(b, vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn char_run_2_alternates_in_pairs() {
        let b = MaskStrategy::CharRun(2).base_mask(8);
        assert_eq!(b, vec![1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn horizontal_splits_in_half() {
        let b = MaskStrategy::Horizontal.base_mask(10);
        assert_eq!(b[..5], [1.0; 5]);
        assert_eq!(b[5..], [0.0; 5]);
        // Odd dimension: first floor(dim/2) are ones.
        let b = MaskStrategy::Horizontal.base_mask(5);
        assert_eq!(b, vec![1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn layers_alternate_mask_and_complement() {
        let strategy = MaskStrategy::CharRun(1);
        let even = strategy.mask_for_layer(0, 4);
        let odd = strategy.mask_for_layer(1, 4);
        for (a, b) in even.iter().zip(odd.iter()) {
            assert_eq!(a + b, 1.0);
        }
        assert_eq!(strategy.mask_for_layer(2, 4), even);
    }

    #[test]
    fn every_position_is_transformed_across_two_layers() {
        // A position is transformed by a layer when its mask value is 0.
        for strategy in [
            MaskStrategy::CharRun(1),
            MaskStrategy::CharRun(2),
            MaskStrategy::Horizontal,
        ] {
            let dim = 10;
            let l0 = strategy.mask_for_layer(0, dim);
            let l1 = strategy.mask_for_layer(1, dim);
            for i in 0..dim {
                assert!(
                    l0[i] == 0.0 || l1[i] == 0.0,
                    "{strategy}: position {i} never transformed"
                );
            }
        }
    }

    #[test]
    fn masks_are_binary() {
        for strategy in [
            MaskStrategy::CharRun(1),
            MaskStrategy::CharRun(3),
            MaskStrategy::Horizontal,
        ] {
            for v in strategy.base_mask(10) {
                assert!(v == 0.0 || v == 1.0);
            }
        }
    }

    #[test]
    fn default_is_char_run_1() {
        assert_eq!(MaskStrategy::default(), MaskStrategy::CharRun(1));
    }

    #[test]
    fn display_labels() {
        assert_eq!(MaskStrategy::CharRun(2).label(), "char-run 2");
        assert_eq!(MaskStrategy::Horizontal.label(), "horizontal");
    }

    #[test]
    #[should_panic(expected = "char-run length must be positive")]
    fn zero_run_length_rejected() {
        let _ = MaskStrategy::CharRun(0).base_mask(4);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        let _ = MaskStrategy::CharRun(1).base_mask(0);
    }
}
