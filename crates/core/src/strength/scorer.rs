//! A detached, `Send + Sync` batch-scoring handle over a flow snapshot.
//!
//! [`FlowScorer`] is the serving-side entry point into the fused
//! log-probability path: it owns an immutable [`FlowSnapshot`], a clone of
//! the flow's encoder and the quantization-cell volume, so any thread can
//! score password batches without borrowing the [`PassFlow`] it came from —
//! and without observing later weight mutations. A trainer can keep
//! updating the live flow while a server keeps answering from the exported
//! snapshot; swapping in new weights is just building a fresh scorer.
//!
//! Scores are **bit-identical** to
//! [`ProbabilityModel::password_log_prob`](super::ProbabilityModel) on the
//! flow the snapshot was exported from: every fused kernel is row-
//! independent, so batching requests together never changes a result
//! (asserted by `tests/strength.rs` and the serving suite in
//! `tests/serve.rs`).

use std::sync::Arc;

use passflow_nn::Tensor;
use passflow_passwords::PasswordEncoder;

use crate::fastpath::{FlowSnapshot, FlowWorkspace};
use crate::flow::PassFlow;

/// Rows scored per fused call; bounds scratch memory without affecting
/// results (row-independent kernels).
const CHUNK_ROWS: usize = 1024;

/// An owned, immutable scoring handle: snapshot + encoder + cell volume.
///
/// Cheap to clone (the snapshot is shared behind an [`Arc`]); `Send + Sync`,
/// so one scorer can be shared by any number of serving threads.
#[derive(Clone, Debug)]
pub struct FlowScorer {
    snapshot: Arc<FlowSnapshot>,
    encoder: PasswordEncoder,
    log_cell_volume: f64,
}

impl FlowScorer {
    /// Exports a scorer from the flow's current weights (reusing the flow's
    /// cached snapshot when it is current).
    ///
    /// The scorer is detached: later weight mutations on `flow` do not
    /// affect it.
    pub fn new(flow: &PassFlow) -> FlowScorer {
        FlowScorer {
            snapshot: flow.snapshot(),
            encoder: flow.encoder().clone(),
            log_cell_volume: flow.log_cell_volume(),
        }
    }

    /// Dimensionality of the underlying flow.
    pub fn dim(&self) -> usize {
        self.snapshot.dim()
    }

    /// The encoder the scorer canonicalizes passwords with.
    pub fn encoder(&self) -> &PasswordEncoder {
        &self.encoder
    }

    /// Scores one password; `None` if it cannot be encoded. Bit-identical
    /// to scoring it inside any batch.
    pub fn log_prob(&self, password: &str) -> Option<f64> {
        let mut ws = FlowWorkspace::new();
        let mut out = vec![None];
        self.log_probs_with(
            std::slice::from_ref(&password.to_string()),
            &mut ws,
            &mut out,
        );
        out[0]
    }

    /// Scores a batch of passwords, allocating a fresh workspace.
    ///
    /// Returns exactly one entry per input password, in input order;
    /// unencodable passwords score `None`.
    pub fn log_probs(&self, passwords: &[String]) -> Vec<Option<f64>> {
        let mut ws = FlowWorkspace::new();
        let mut out = Vec::new();
        self.log_probs_with(passwords, &mut ws, &mut out);
        out
    }

    /// Scores a batch of passwords into `out` through a caller-managed
    /// workspace — the allocation-free steady-state form used by the
    /// serving batcher, which keeps one workspace alive across ticks.
    ///
    /// `out` is cleared and refilled with one entry per input password, in
    /// input order. Results are bit-identical for any chunking of the same
    /// passwords (each output row depends only on its own input row).
    pub fn log_probs_with(
        &self,
        passwords: &[String],
        ws: &mut FlowWorkspace,
        out: &mut Vec<Option<f64>>,
    ) {
        out.clear();
        out.resize(passwords.len(), None);

        let mut lp = Tensor::default();
        let mut rows: Vec<Vec<f32>> = Vec::with_capacity(CHUNK_ROWS.min(passwords.len()));
        let mut row_indices: Vec<usize> = Vec::with_capacity(CHUNK_ROWS.min(passwords.len()));

        let mut flush =
            |rows: &mut Vec<Vec<f32>>, row_indices: &mut Vec<usize>, out: &mut Vec<Option<f64>>| {
                if rows.is_empty() {
                    return;
                }
                let x = Tensor::from_rows(rows);
                self.snapshot.log_prob_into(&x, ws, &mut lp);
                for (slot, &idx) in lp.as_slice().iter().zip(row_indices.iter()) {
                    out[idx] = Some(f64::from(*slot) + self.log_cell_volume);
                }
                rows.clear();
                row_indices.clear();
            };

        for (i, password) in passwords.iter().enumerate() {
            if let Some(features) = self.encoder.encode(password) {
                rows.push(features);
                row_indices.push(i);
                if rows.len() == CHUNK_ROWS {
                    flush(&mut rows, &mut row_indices, out);
                }
            }
        }
        flush(&mut rows, &mut row_indices, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use crate::strength::ProbabilityModel;
    use passflow_nn::rng as nnrng;

    fn tiny_flow(seed: u64) -> PassFlow {
        let mut rng = nnrng::seeded(seed);
        PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn scorer_matches_the_flow_bit_for_bit() {
        let flow = tiny_flow(71);
        let scorer = FlowScorer::new(&flow);
        for pw in ["jimmy91", "123456", "", "dragon"] {
            match (flow.password_log_prob(pw), scorer.log_prob(pw)) {
                (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits(), "{pw:?}"),
                (None, None) => {}
                other => panic!("flow/scorer disagree for {pw:?}: {other:?}"),
            }
        }
        assert!(scorer.log_prob("waytoolongtoencode").is_none());
    }

    #[test]
    fn scorer_is_detached_from_later_weight_mutations() {
        let flow = tiny_flow(72);
        let scorer = FlowScorer::new(&flow);
        let before = scorer.log_prob("monkey12").unwrap();
        for p in flow.parameters() {
            p.set_value(p.value().add_scalar(0.125));
        }
        // The live flow moved; the detached scorer did not.
        let after_live = flow.password_log_prob("monkey12").unwrap();
        let after_scorer = scorer.log_prob("monkey12").unwrap();
        assert_ne!(before.to_bits(), after_live.to_bits());
        assert_eq!(before.to_bits(), after_scorer.to_bits());
    }

    #[test]
    fn workspace_reuse_and_chunking_do_not_change_scores() {
        let flow = tiny_flow(73);
        let scorer = FlowScorer::new(&flow);
        let passwords: Vec<String> = (0..50).map(|i| format!("pw{i}")).collect();
        let whole = scorer.log_probs(&passwords);
        let mut ws = FlowWorkspace::new();
        let mut out = Vec::new();
        let mut pieced = Vec::new();
        for chunk in passwords.chunks(7) {
            scorer.log_probs_with(chunk, &mut ws, &mut out);
            pieced.extend(out.iter().copied());
        }
        assert_eq!(whole.len(), pieced.len());
        for (a, b) in whole.iter().zip(pieced.iter()) {
            assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits));
        }
    }

    #[test]
    fn scorer_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowScorer>();
    }
}
