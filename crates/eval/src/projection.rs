//! 2-D projection of latent points (Figure 2).
//!
//! The paper visualizes latent neighbourhoods with t-SNE. This module
//! provides a [`pca`] projection (deterministic, used for quick looks and as
//! the t-SNE initialization) and a small exact [`tsne`] implementation
//! (pairwise affinities with per-point perplexity calibration, gradient
//! descent with momentum and early exaggeration), sufficient for the few
//! hundred points the figure plots.

use passflow_nn::rng as nnrng;
use passflow_nn::Tensor;

/// Projects the rows of `data` onto their top two principal components.
///
/// Returns an `n × 2` tensor. Components are computed by power iteration
/// with deflation, which is plenty for visualization purposes.
///
/// # Panics
///
/// Panics if `data` has fewer than 2 columns or no rows.
pub fn pca(data: &Tensor) -> Tensor {
    assert!(data.rows() > 0, "pca requires at least one point");
    assert!(data.cols() >= 2, "pca requires at least two dimensions");
    let n = data.rows();
    let d = data.cols();

    // Center the data.
    let mean = data.mean_cols();
    let centered = {
        let mut out = data.clone();
        for i in 0..n {
            for j in 0..d {
                out.set(i, j, data.get(i, j) - mean.get(0, j));
            }
        }
        out
    };

    // Covariance matrix (d × d).
    let cov = centered
        .transpose()
        .matmul(&centered)
        .scale(1.0 / (n.max(2) - 1) as f32);

    let mut rng = nnrng::seeded(0xFACADE);
    let mut components: Vec<Tensor> = Vec::new();
    let mut deflated = cov;
    for _ in 0..2 {
        // Power iteration.
        let mut v = Tensor::randn(d, 1, &mut rng);
        for _ in 0..100 {
            let next = deflated.matmul(&v);
            let norm = next.norm();
            if norm < 1e-12 {
                break;
            }
            v = next.scale(1.0 / norm);
        }
        // Deflate: cov <- cov − λ v vᵀ.
        let lambda = v.transpose().matmul(&deflated).matmul(&v).get(0, 0);
        let outer = v.matmul(&v.transpose()).scale(lambda);
        deflated = deflated.sub(&outer);
        components.push(v);
    }

    let mut out = Tensor::zeros(n, 2);
    for i in 0..n {
        for (c, comp) in components.iter().enumerate() {
            let mut dot = 0.0f32;
            for j in 0..d {
                dot += centered.get(i, j) * comp.get(j, 0);
            }
            out.set(i, c, dot);
        }
    }
    out
}

/// Configuration for the exact t-SNE implementation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TsneConfig {
    /// Target perplexity (effective number of neighbours per point).
    pub perplexity: f32,
    /// Number of gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// RNG seed for the initial embedding jitter.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 20.0,
            iterations: 300,
            learning_rate: 50.0,
            seed: 7,
        }
    }
}

/// Computes a 2-D t-SNE embedding of the rows of `data`.
///
/// This is the exact O(n²) algorithm of van der Maaten & Hinton, intended
/// for the few hundred points plotted in Figure 2.
///
/// # Panics
///
/// Panics if `data` has fewer than 3 rows.
pub fn tsne(data: &Tensor, config: &TsneConfig) -> Tensor {
    let n = data.rows();
    assert!(n >= 3, "t-SNE needs at least 3 points");
    let perplexity = config.perplexity.min((n as f32 - 1.0) / 3.0).max(2.0);

    // Pairwise squared distances in the high-dimensional space.
    let mut sq_dist = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f32 = data
                .row_slice(i)
                .iter()
                .zip(data.row_slice(j).iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            sq_dist[i * n + j] = d;
            sq_dist[j * n + i] = d;
        }
    }

    // Per-point precision calibrated to the target perplexity.
    let target_entropy = perplexity.ln();
    let mut p = vec![0.0f32; n * n];
    for i in 0..n {
        let mut beta = 1.0f32;
        let mut beta_min = f32::NEG_INFINITY;
        let mut beta_max = f32::INFINITY;
        for _ in 0..50 {
            let mut sum = 0.0f32;
            let mut weighted = 0.0f32;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = (-beta * sq_dist[i * n + j]).exp();
                sum += w;
                weighted += w * sq_dist[i * n + j];
            }
            let sum = sum.max(1e-12);
            let entropy = beta * weighted / sum + sum.ln();
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-4 {
                break;
            }
            if diff > 0.0 {
                beta_min = beta;
                beta = if beta_max.is_finite() {
                    (beta + beta_max) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_max = beta;
                beta = if beta_min.is_finite() {
                    (beta + beta_min) / 2.0
                } else {
                    beta / 2.0
                };
            }
        }
        let mut sum = 0.0f32;
        for j in 0..n {
            if i != j {
                let w = (-beta * sq_dist[i * n + j]).exp();
                p[i * n + j] = w;
                sum += w;
            }
        }
        let sum = sum.max(1e-12);
        for j in 0..n {
            p[i * n + j] /= sum;
        }
    }
    // Symmetrize.
    let mut p_sym = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            p_sym[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f32)).max(1e-12);
        }
    }

    // Gradient descent on the 2-D embedding.
    let mut rng = nnrng::seeded(config.seed);
    let init = pca(data);
    let init_scale = init.abs().max().max(1e-6);
    let mut y: Vec<[f32; 2]> = (0..n)
        .map(|i| {
            [
                init.get(i, 0) / init_scale * 1e-2 + 1e-4 * nnrng::standard_normal(&mut rng),
                init.get(i, 1) / init_scale * 1e-2 + 1e-4 * nnrng::standard_normal(&mut rng),
            ]
        })
        .collect();
    let mut velocity = vec![[0.0f32; 2]; n];

    for iteration in 0..config.iterations {
        // Early exaggeration for the first quarter of the iterations.
        let exaggeration = if iteration < config.iterations / 4 {
            4.0
        } else {
            1.0
        };

        // Low-dimensional affinities (Student-t kernel).
        let mut q = vec![0.0f32; n * n];
        let mut q_sum = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[i][0] - y[j][0];
                let dy = y[i][1] - y[j][1];
                let w = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = w;
                q[j * n + i] = w;
                q_sum += 2.0 * w;
            }
        }
        let q_sum = q_sum.max(1e-12);

        let momentum = if iteration < 50 { 0.5 } else { 0.8 };
        // Trust region: cap each point's per-iteration displacement so large
        // learning rates cannot make the embedding diverge on small inputs.
        let max_step = 1.0f32;
        for i in 0..n {
            let mut grad = [0.0f32; 2];
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let q_ij = (w / q_sum).max(1e-12);
                let coeff = 4.0 * (exaggeration * p_sym[i * n + j] - q_ij) * w;
                grad[0] += coeff * (y[i][0] - y[j][0]);
                grad[1] += coeff * (y[i][1] - y[j][1]);
            }
            for k in 0..2 {
                velocity[i][k] = momentum * velocity[i][k] - config.learning_rate * grad[k];
            }
            let step_norm =
                (velocity[i][0] * velocity[i][0] + velocity[i][1] * velocity[i][1]).sqrt();
            if step_norm > max_step {
                velocity[i][0] *= max_step / step_norm;
                velocity[i][1] *= max_step / step_norm;
            }
            for k in 0..2 {
                y[i][k] += velocity[i][k];
            }
        }
    }

    let rows: Vec<Vec<f32>> = y.iter().map(|p| vec![p[0], p[1]]).collect();
    Tensor::from_rows(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs in 10 dimensions.
    fn two_blobs(per_cluster: usize) -> (Tensor, usize) {
        let mut rng = nnrng::seeded(3);
        let mut rows = Vec::new();
        for _ in 0..per_cluster {
            let row: Vec<f32> = (0..10)
                .map(|_| 5.0 + 0.2 * nnrng::standard_normal(&mut rng))
                .collect();
            rows.push(row);
        }
        for _ in 0..per_cluster {
            let row: Vec<f32> = (0..10)
                .map(|_| -5.0 + 0.2 * nnrng::standard_normal(&mut rng))
                .collect();
            rows.push(row);
        }
        (Tensor::from_rows(&rows), per_cluster)
    }

    fn cluster_separation(embedding: &Tensor, per_cluster: usize) -> f32 {
        let mean = |range: std::ops::Range<usize>| -> [f32; 2] {
            let mut m = [0.0f32; 2];
            for i in range.clone() {
                m[0] += embedding.get(i, 0);
                m[1] += embedding.get(i, 1);
            }
            [m[0] / range.len() as f32, m[1] / range.len() as f32]
        };
        let spread = |range: std::ops::Range<usize>, center: [f32; 2]| -> f32 {
            range
                .clone()
                .map(|i| {
                    let dx = embedding.get(i, 0) - center[0];
                    let dy = embedding.get(i, 1) - center[1];
                    (dx * dx + dy * dy).sqrt()
                })
                .sum::<f32>()
                / range.len() as f32
        };
        let a = mean(0..per_cluster);
        let b = mean(per_cluster..2 * per_cluster);
        let between = ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();
        let within = spread(0..per_cluster, a) + spread(per_cluster..2 * per_cluster, b);
        between / within.max(1e-6)
    }

    #[test]
    fn pca_separates_well_separated_clusters() {
        let (data, per_cluster) = two_blobs(20);
        let projected = pca(&data);
        assert_eq!(projected.shape(), (40, 2));
        assert!(projected.is_finite());
        assert!(
            cluster_separation(&projected, per_cluster) > 3.0,
            "separation {}",
            cluster_separation(&projected, per_cluster)
        );
    }

    #[test]
    fn pca_is_deterministic() {
        let (data, _) = two_blobs(10);
        let a = pca(&data);
        let b = pca(&data);
        assert!(a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn tsne_separates_well_separated_clusters() {
        let (data, per_cluster) = two_blobs(15);
        let embedding = tsne(
            &data,
            &TsneConfig {
                perplexity: 5.0,
                iterations: 150,
                learning_rate: 30.0,
                seed: 1,
            },
        );
        assert_eq!(embedding.shape(), (30, 2));
        assert!(embedding.is_finite());
        assert!(
            cluster_separation(&embedding, per_cluster) > 2.0,
            "separation {}",
            cluster_separation(&embedding, per_cluster)
        );
    }

    #[test]
    fn tsne_handles_small_inputs() {
        let data = Tensor::from_rows(&[
            vec![0.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0],
            vec![2.0, 2.0, 2.0],
        ]);
        let embedding = tsne(&data, &TsneConfig::default());
        assert_eq!(embedding.shape(), (3, 2));
        assert!(embedding.is_finite());
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn tsne_rejects_tiny_inputs() {
        let data = Tensor::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let _ = tsne(&data, &TsneConfig::default());
    }

    #[test]
    #[should_panic(expected = "at least two dimensions")]
    fn pca_rejects_one_dimensional_data() {
        let data = Tensor::from_rows(&[vec![0.0], vec![1.0]]);
        let _ = pca(&data);
    }
}
