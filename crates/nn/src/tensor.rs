//! Dense, row-major 2-D `f32` tensors.
//!
//! [`Tensor`] is the only numeric container in the substrate. Normalizing
//! flows over fixed-length password encodings operate exclusively on
//! `batch × feature` matrices, so a simple 2-D type keeps the code honest and
//! fast without pulling in a full n-dimensional array library.
//!
//! All binary operations panic on shape mismatch; shape errors are programmer
//! errors, mirroring the conventions of mainstream numerics libraries.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::{NnError, Result};

/// A dense, row-major matrix of `f32` values.
///
/// The tensor is conceptually `rows × cols`; a row vector is a `1 × n`
/// tensor and a scalar is `1 × 1`.
///
/// # Example
///
/// ```rust
/// use passflow_nn::Tensor;
///
/// let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c, a);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Tensor {
    /// The empty `0 × 0` tensor (the cold state of scratch buffers).
    fn default() -> Self {
        Tensor::zeros(0, 0)
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// Creates a tensor where every element is `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidShape`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NnError::InvalidShape {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a tensor from a slice of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length or if `rows` is
    /// empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a `1 × n` row vector from a slice.
    pub fn row(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a `1 × 1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            rows: 1,
            cols: 1,
            data: vec![value],
        }
    }

    /// Creates a tensor with elements drawn from the standard normal
    /// distribution using the Box-Muller transform.
    pub fn randn<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let mut out = Self::zeros(0, 0);
        Self::randn_into(rows, cols, rng, &mut out);
        out
    }

    /// Fills `out` (resized to `rows × cols`) with standard-normal samples.
    ///
    /// Consumes the RNG identically to [`Tensor::randn`], so a reused buffer
    /// produces bit-identical samples to a freshly allocated one.
    pub fn randn_into<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R, out: &mut Tensor) {
        out.resize(rows, cols);
        let data = out.as_mut_slice();
        let total = rows * cols;
        let mut i = 0;
        while i < total {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * crate::math::fast_ln(u1)).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            let (sin, cos) = crate::math::fast_sin_cos(theta);
            data[i] = r * cos;
            i += 1;
            if i < total {
                data[i] = r * sin;
                i += 1;
            }
        }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        lo: f32,
        hi: f32,
        rng: &mut R,
    ) -> Self {
        let dist = Uniform::new(lo, hi);
        let data = (0..rows * cols).map(|_| dist.sample(rng)).collect();
        Self { rows, cols, data }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes the tensor to `rows × cols`, reusing the existing allocation
    /// when its capacity suffices (the workhorse of the inference scratch
    /// buffers). Newly exposed elements are zero; existing element values are
    /// unspecified — callers are expected to overwrite the buffer.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies `src` into `self`, resizing as needed (no allocation once the
    /// capacity has grown to fit).
    pub fn copy_from(&mut self, src: &Tensor) {
        self.resize(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of a single row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_slice(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies the given row into a new `1 × cols` tensor.
    pub fn row_tensor(&self, row: usize) -> Tensor {
        Tensor::row(self.row_slice(row))
    }

    /// Returns a new tensor containing the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.as_mut_slice()[dst * self.cols..(dst + 1) * self.cols]
                .copy_from_slice(self.row_slice(src));
        }
        out
    }

    /// Stacks multiple `1 × n` (or `m × n`) tensors vertically.
    ///
    /// # Panics
    ///
    /// Panics if the tensors do not all share the same column count or if the
    /// slice is empty.
    pub fn vstack(tensors: &[Tensor]) -> Tensor {
        assert!(!tensors.is_empty(), "vstack requires at least one tensor");
        let cols = tensors[0].cols;
        let rows: usize = tensors.iter().map(|t| t.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for t in tensors {
            assert_eq!(t.cols, cols, "vstack requires equal column counts");
            data.extend_from_slice(&t.data);
        }
        Tensor { rows, cols, data }
    }

    /// Returns `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix multiplication `self × other`.
    ///
    /// Delegates to the register-blocked i-k-j GEMM in [`crate::kernels`],
    /// which accumulates each output element over the shared dimension in
    /// ascending order from `0.0` — the same operation order as a naive
    /// i-k-j triple loop, so results are IEEE-identical to the scalar
    /// reference while the independent row/column loops are tiled for SIMD.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(0, 0);
        crate::kernels::matmul_into(self, other, &mut out);
        out
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Elementwise binary operations
    // ------------------------------------------------------------------

    fn zip_with(&self, other: &Tensor, op: &'static str, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op} shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    /// Elementwise division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, "div", |a, b| a / b)
    }

    /// Adds a `1 × cols` row vector to every row of the tensor.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a `1 × cols` tensor.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width must match tensor width");
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[i * self.cols + j] += bias.data[j];
            }
        }
        out
    }

    /// Multiplies every row elementwise by a `1 × cols` row vector.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not a `1 × cols` tensor.
    pub fn mul_row_broadcast(&self, scale: &Tensor) -> Tensor {
        assert_eq!(scale.rows, 1, "scale must be a row vector");
        assert_eq!(scale.cols, self.cols, "scale width must match tensor width");
        let mut out = self.clone();
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[i * self.cols + j] *= scale.data[j];
            }
        }
        out
    }

    /// Accumulates `other` into `self` in place (`self += other`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    // ------------------------------------------------------------------
    // Elementwise unary operations
    // ------------------------------------------------------------------

    /// Applies an arbitrary function to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|v| v * factor)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|v| v + value)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|v| -v)
    }

    /// Elementwise exponential (vectorizable [`crate::math::fast_exp`]).
    pub fn exp(&self) -> Tensor {
        self.map(crate::math::fast_exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise hyperbolic tangent (vectorizable
    /// [`crate::math::fast_tanh`]).
    pub fn tanh(&self) -> Tensor {
        self.map(crate::math::fast_tanh)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Elementwise logistic sigmoid (vectorizable
    /// [`crate::math::fast_sigmoid`]).
    pub fn sigmoid(&self) -> Tensor {
        self.map(crate::math::fast_sigmoid)
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        self.map(|v| v * v)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        // Kahan summation keeps reductions stable for large batches.
        let mut sum = 0.0f32;
        let mut c = 0.0f32;
        for &v in &self.data {
            let y = v - c;
            let t = sum + y;
            c = (t - sum) - y;
            sum = t;
        }
        sum
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(!self.is_empty(), "mean of an empty tensor");
        self.sum() / self.len() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max of an empty tensor");
        // Explicit compare instead of `fold(…, f32::max)`: the minnum/maxnum
        // reduction pattern miscompiles under `-C target-cpu=native` on
        // AVX-512 hosts with current rustc (observed returning a non-extremal
        // element); a plain comparison loop vectorizes correctly.
        let mut best = f32::NEG_INFINITY;
        for &v in &self.data {
            if v > best {
                best = v;
            }
        }
        best
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn min(&self) -> f32 {
        assert!(!self.is_empty(), "min of an empty tensor");
        let mut best = f32::INFINITY;
        for &v in &self.data {
            if v < best {
                best = v;
            }
        }
        best
    }

    /// Sums each row, producing an `rows × 1` column tensor.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, 1);
        for i in 0..self.rows {
            out.data[i] = self.row_slice(i).iter().sum();
        }
        out
    }

    /// Sums each column, producing a `1 × cols` row tensor.
    pub fn sum_cols(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j] += self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Mean of each column, producing a `1 × cols` row tensor.
    pub fn mean_cols(&self) -> Tensor {
        assert!(self.rows > 0, "mean_cols of an empty tensor");
        self.sum_cols().scale(1.0 / self.rows as f32)
    }

    /// Frobenius norm (square root of the sum of squares).
    pub fn norm(&self) -> f32 {
        self.square().sum().sqrt()
    }

    /// Squared Euclidean distance to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn squared_distance(&self, other: &Tensor) -> f32 {
        self.sub(other).square().sum()
    }

    /// Returns `true` when every element differs from `other` by at most
    /// `tolerance`.
    pub fn approx_eq(&self, other: &Tensor, tolerance: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tolerance)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})[", self.rows, self.cols)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            let row: Vec<String> = self
                .row_slice(i)
                .iter()
                .map(|v| format!("{v:.4}"))
                .collect();
            writeln!(f, "[{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(2, 3).sum(), 0.0);
        assert_eq!(Tensor::ones(2, 3).sum(), 6.0);
        assert_eq!(Tensor::full(2, 2, 2.5).sum(), 10.0);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let mut r = rng();
        let a = Tensor::randn(4, 4, &mut r);
        let i = Tensor::eye(4);
        assert!(a.matmul(&i).approx_eq(&a, 1e-6));
        assert!(i.matmul(&a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            NnError::InvalidShape {
                rows: 2,
                cols: 2,
                len: 3
            }
        );
    }

    #[test]
    fn matmul_matches_manual_example() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row_slice(0), &[19.0, 22.0]);
        assert_eq!(c.row_slice(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_associates_with_transpose() {
        let mut r = rng();
        let a = Tensor::randn(3, 5, &mut r);
        let b = Tensor::randn(5, 2, &mut r);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert!(left.approx_eq(&right, 1e-5));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_panics_on_mismatch() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let mut r = rng();
        let a = Tensor::randn(3, 7, &mut r);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::row(&[1.0, 2.0, 3.0]);
        let b = Tensor::row(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn broadcast_add_and_mul() {
        let x = Tensor::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let bias = Tensor::row(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&bias);
        assert_eq!(y.row_slice(0), &[11.0, 21.0]);
        assert_eq!(y.row_slice(1), &[12.0, 22.0]);
        let z = x.mul_row_broadcast(&bias);
        assert_eq!(z.row_slice(1), &[20.0, 40.0]);
    }

    #[test]
    fn unary_ops_match_std() {
        let x = Tensor::row(&[-1.0, 0.0, 2.0]);
        assert_eq!(x.relu().as_slice(), &[0.0, 0.0, 2.0]);
        assert!((x.tanh().get(0, 2) - 2.0f32.tanh()).abs() < 1e-6);
        assert!((x.exp().get(0, 0) - (-1.0f32).exp()).abs() < 1e-6);
        assert!((x.sigmoid().get(0, 1) - 0.5).abs() < 1e-6);
        assert_eq!(x.square().as_slice(), &[1.0, 0.0, 4.0]);
        assert_eq!(x.abs().as_slice(), &[1.0, 0.0, 2.0]);
        assert_eq!(x.neg().as_slice(), &[1.0, 0.0, -2.0]);
        assert_eq!(x.clamp(-0.5, 1.0).as_slice(), &[-0.5, 0.0, 1.0]);
    }

    #[test]
    fn reductions() {
        let x = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(x.sum(), 10.0);
        assert_eq!(x.mean(), 2.5);
        assert_eq!(x.max(), 4.0);
        assert_eq!(x.min(), 1.0);
        assert_eq!(x.sum_rows().as_slice(), &[3.0, 7.0]);
        assert_eq!(x.sum_cols().as_slice(), &[4.0, 6.0]);
        assert_eq!(x.mean_cols().as_slice(), &[2.0, 3.0]);
        assert!((x.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn randn_has_reasonable_moments() {
        let mut r = rng();
        let x = Tensor::randn(100, 100, &mut r);
        assert!(x.mean().abs() < 0.05, "mean was {}", x.mean());
        let var = x.square().mean() - x.mean() * x.mean();
        assert!((var - 1.0).abs() < 0.1, "variance was {var}");
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let mut r = rng();
        let x = Tensor::rand_uniform(50, 50, -0.25, 0.25, &mut r);
        assert!(x.max() < 0.25);
        assert!(x.min() >= -0.25);
    }

    #[test]
    fn select_rows_and_vstack() {
        let x = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let sel = x.select_rows(&[2, 0]);
        assert_eq!(sel.row_slice(0), &[5.0, 6.0]);
        assert_eq!(sel.row_slice(1), &[1.0, 2.0]);
        let stacked = Tensor::vstack(&[x.row_tensor(0), x.row_tensor(2)]);
        assert_eq!(stacked.shape(), (2, 2));
        assert_eq!(stacked.row_slice(1), &[5.0, 6.0]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut x = Tensor::ones(2, 2);
        x.add_assign(&Tensor::full(2, 2, 2.0));
        assert_eq!(x.as_slice(), &[3.0; 4]);
    }

    #[test]
    fn squared_distance_and_approx_eq() {
        let a = Tensor::row(&[0.0, 0.0]);
        let b = Tensor::row(&[3.0, 4.0]);
        assert_eq!(a.squared_distance(&b), 25.0);
        assert!(!a.approx_eq(&b, 1.0));
        assert!(a.approx_eq(&b, 5.0));
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut x = Tensor::ones(1, 3);
        assert!(x.is_finite());
        x.set(0, 1, f32::NAN);
        assert!(!x.is_finite());
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let x = Tensor::zeros(1, 2);
        assert!(!format!("{x:?}").is_empty());
        assert!(!format!("{x}").is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let mut r = rng();
        let x = Tensor::randn(3, 4, &mut r);
        let json = serde_json_like(&x);
        assert!(json.contains("rows"));
    }

    /// Minimal stand-in for a serde round trip without pulling serde_json:
    /// exercise the Serialize impl through the bincode-free `serde` test
    /// machinery by serializing into a debug string of fields.
    fn serde_json_like(t: &Tensor) -> String {
        format!("rows={},cols={},len={}", t.rows(), t.cols(), t.len())
    }
}
