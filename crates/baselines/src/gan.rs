//! A Wasserstein-GAN password generator (the PassGAN stand-in).
//!
//! PassGAN (Hitaj et al., reference [22]) and the improved GAN of Pasquini
//! et al. [33] train a generator network adversarially against a critic so
//! that generated samples become indistinguishable from real passwords.
//! This implementation keeps the same structure on the reproduction's
//! substrate: a residual-MLP generator maps Gaussian noise to the continuous
//! password feature space used throughout the repository, and a critic
//! scores feature vectors. Training follows the WGAN recipe (critic trained
//! to separate real from fake under a weight-clipping Lipschitz constraint,
//! generator trained to maximize the critic's score on fakes). Like Pasquini
//! et al., real samples are smoothed with small additive noise.
//!
//! GANs provide no density estimate and no invertible latent map — the
//! limitations the paper contrasts PassFlow against — so this type only
//! exposes sampling.

use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use passflow_nn::rng as nnrng;
use passflow_nn::{
    Activation, ActivationKind, Adam, Linear, Module, Optimizer, Sequential, Tape, Tensor,
};
use passflow_passwords::PasswordEncoder;

use passflow_core::{EpochDriver, Guesser, LoopControl, Schedule, StepCtx, TrainLoop};

/// Hyper-parameters of the WGAN baseline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PassGanConfig {
    /// Dimensionality of the generator's noise input.
    pub noise_dim: usize,
    /// Hidden width of generator and critic.
    pub hidden_size: usize,
    /// Number of training iterations (generator updates).
    pub iterations: usize,
    /// Critic updates per generator update (5 in the WGAN paper).
    pub critic_steps: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate for both networks.
    pub learning_rate: f32,
    /// Weight-clipping bound enforcing the critic's Lipschitz constraint.
    pub clip_value: f32,
    /// RNG seed for initialization, noise and batching.
    pub seed: u64,
}

impl PassGanConfig {
    /// A reduced configuration for CPU-scale harness runs.
    pub fn evaluation() -> Self {
        PassGanConfig {
            noise_dim: 32,
            hidden_size: 64,
            iterations: 300,
            critic_steps: 3,
            batch_size: 128,
            learning_rate: 1e-3,
            clip_value: 0.05,
            seed: 0,
        }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny() -> Self {
        PassGanConfig {
            noise_dim: 16,
            hidden_size: 32,
            iterations: 60,
            critic_steps: 2,
            batch_size: 64,
            learning_rate: 2e-3,
            clip_value: 0.05,
            seed: 0,
        }
    }

    /// Sets the number of generator iterations (builder style).
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the RNG seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for PassGanConfig {
    fn default() -> Self {
        Self::evaluation()
    }
}

/// A trained WGAN password generator.
pub struct PassGan {
    config: PassGanConfig,
    encoder: PasswordEncoder,
    generator: Sequential,
    /// Mean Wasserstein estimate per logging window, recorded during
    /// training (useful for tests and diagnostics).
    critic_history: Vec<f32>,
}

impl std::fmt::Debug for PassGan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PassGan(noise_dim={}, hidden={}, trained_iterations={})",
            self.config.noise_dim, self.config.hidden_size, self.config.iterations
        )
    }
}

fn build_generator<R: Rng + ?Sized>(
    noise_dim: usize,
    hidden: usize,
    out_dim: usize,
    rng: &mut R,
) -> Sequential {
    Sequential::new()
        .push(Linear::new_relu(noise_dim, hidden, rng))
        .push(Activation::new(ActivationKind::Relu))
        .push(Linear::new_relu(hidden, hidden, rng))
        .push(Activation::new(ActivationKind::Relu))
        .push(Linear::new(hidden, out_dim, rng))
        // Passwords are encoded into [0, 1); a sigmoid keeps generator
        // outputs in the representable range.
        .push(Activation::new(ActivationKind::Sigmoid))
}

fn build_critic<R: Rng + ?Sized>(in_dim: usize, hidden: usize, rng: &mut R) -> Sequential {
    Sequential::new()
        .push(Linear::new_relu(in_dim, hidden, rng))
        .push(Activation::new(ActivationKind::Relu))
        .push(Linear::new_relu(hidden, hidden, rng))
        .push(Activation::new(ActivationKind::Relu))
        .push(Linear::new(hidden, 1, rng))
}

/// The WGAN's [`EpochDriver`]: one "epoch" of the shared [`TrainLoop`] is
/// one generator iteration (`critic_steps` critic updates followed by a
/// generator update), mirroring the WGAN recipe's outer loop.
struct GanDriver<'a> {
    config: &'a PassGanConfig,
    data: &'a Tensor,
    generator: &'a Sequential,
    critic: &'a Sequential,
    gen_opt: Adam,
    critic_opt: Adam,
    rng: rand::rngs::StdRng,
    real_noise: f32,
    window_sum: f32,
    window_count: usize,
    critic_history: Vec<f32>,
}

impl EpochDriver for GanDriver<'_> {
    type Error = std::convert::Infallible;

    fn on_batch(&mut self, ctx: &StepCtx) -> Result<f32, Self::Error> {
        let config = self.config;
        self.critic_opt.set_learning_rate(ctx.lr);
        self.gen_opt.set_learning_rate(ctx.lr);

        // ---- critic updates ---------------------------------------------
        let mut iteration_wasserstein = 0.0f32;
        for _ in 0..config.critic_steps {
            let real = sample_rows(self.data, config.batch_size, &mut self.rng);
            let real = real.add(&Tensor::rand_uniform(
                real.rows(),
                real.cols(),
                -self.real_noise,
                self.real_noise,
                &mut self.rng,
            ));
            let noise = Tensor::randn(config.batch_size, config.noise_dim, &mut self.rng);

            let tape = Tape::new();
            let fake = self.generator.forward(&tape, &tape.constant(noise)).value();

            // Critic loss: E[D(fake)] − E[D(real)]  (minimized).
            let tape = Tape::new();
            let d_real = self.critic.forward(&tape, &tape.constant(real)).mean();
            let d_fake = self.critic.forward(&tape, &tape.constant(fake)).mean();
            let critic_loss = d_fake.sub(&d_real);
            let wasserstein = -critic_loss.value().get(0, 0);
            self.window_sum += wasserstein;
            self.window_count += 1;
            iteration_wasserstein += wasserstein;
            critic_loss.backward();
            self.critic_opt.step(&self.critic.parameters());

            // Weight clipping (the WGAN Lipschitz constraint).
            for p in self.critic.parameters() {
                p.set_value(p.value().clamp(-config.clip_value, config.clip_value));
            }
        }

        // ---- generator update -------------------------------------------
        let noise = Tensor::randn(config.batch_size, config.noise_dim, &mut self.rng);
        let tape = Tape::new();
        let fake = self.generator.forward(&tape, &tape.constant(noise));
        // Generator loss: −E[D(fake)]  (minimized).
        let gen_loss = self.critic.forward(&tape, &fake).mean().neg();
        gen_loss.backward();
        // Only update the generator's parameters; clear the critic's
        // gradients accumulated through this pass.
        self.gen_opt.step(&self.generator.parameters());
        for p in self.critic.parameters() {
            p.zero_grad();
        }

        Ok(iteration_wasserstein / config.critic_steps.max(1) as f32)
    }

    fn on_epoch_end(&mut self, epoch: usize, _mean_loss: f32) -> Result<LoopControl, Self::Error> {
        if (epoch + 1).is_multiple_of(20) && self.window_count > 0 {
            self.critic_history
                .push(self.window_sum / self.window_count as f32);
            self.window_sum = 0.0;
            self.window_count = 0;
        }
        Ok(LoopControl::Continue)
    }
}

impl PassGan {
    /// Trains a WGAN on a password corpus.
    ///
    /// # Panics
    ///
    /// Panics if no training password can be encoded.
    pub fn train(passwords: &[String], encoder: PasswordEncoder, config: PassGanConfig) -> Self {
        let (features, _) = encoder.encode_batch(passwords);
        assert!(
            !features.is_empty(),
            "no training password could be encoded"
        );
        let data = Tensor::from_rows(&features);
        let dim = encoder.max_len();
        let mut rng = nnrng::seeded(config.seed);

        let generator = build_generator(config.noise_dim, config.hidden_size, dim, &mut rng);
        let critic = build_critic(dim, config.hidden_size, &mut rng);

        let mut driver = GanDriver {
            config: &config,
            data: &data,
            generator: &generator,
            critic: &critic,
            gen_opt: Adam::with_betas(config.learning_rate, 0.5, 0.9),
            critic_opt: Adam::with_betas(config.learning_rate, 0.5, 0.9),
            rng,
            // Stochastic smoothing of the real samples, as in Pasquini et al.
            real_noise: encoder.quantization_step() * 0.5,
            window_sum: 0.0,
            window_count: 0,
            critic_history: Vec::new(),
        };
        TrainLoop::new(
            config.iterations,
            1,
            config.learning_rate,
            Schedule::Constant,
        )
        .run(0, &mut driver)
        .expect("GAN training is infallible");
        let critic_history = driver.critic_history;

        PassGan {
            config,
            encoder,
            generator,
            critic_history,
        }
    }

    /// The training configuration.
    pub fn config(&self) -> &PassGanConfig {
        &self.config
    }

    /// Wasserstein-estimate trajectory recorded during training.
    pub fn critic_history(&self) -> &[f32] {
        &self.critic_history
    }

    /// Generates `n` passwords by sampling generator noise and decoding the
    /// output feature vectors.
    pub fn sample_passwords<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<String> {
        let noise = Tensor::randn(n, self.config.noise_dim, rng);
        let features = self.generator.forward_tensor(&noise);
        (0..features.rows())
            .map(|i| self.encoder.decode(features.row_slice(i)))
            .collect()
    }
}

impl Guesser for PassGan {
    fn name(&self) -> &str {
        "PassGAN (WGAN)"
    }

    fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
        self.sample_passwords(n, rng)
    }
}

/// Samples `n` rows from `data` uniformly with replacement.
fn sample_rows<R: Rng + ?Sized>(data: &Tensor, n: usize, rng: &mut R) -> Tensor {
    let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..data.rows())).collect();
    data.select_rows(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};

    fn corpus(n: usize) -> Vec<String> {
        SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(n))
            .generate(61)
            .into_passwords()
    }

    fn trained() -> PassGan {
        PassGan::train(
            &corpus(1_500),
            PasswordEncoder::default(),
            PassGanConfig::tiny(),
        )
    }

    #[test]
    fn training_completes_and_records_history() {
        let gan = trained();
        assert!(!gan.critic_history().is_empty());
        assert!(gan.critic_history().iter().all(|v| v.is_finite()));
        assert_eq!(gan.config().noise_dim, 16);
        assert!(format!("{gan:?}").contains("PassGan"));
    }

    #[test]
    fn samples_are_valid_passwords() {
        let gan = trained();
        let mut rng = nnrng::seeded(1);
        let guesses = gan.sample_passwords(100, &mut rng);
        assert_eq!(guesses.len(), 100);
        for g in &guesses {
            assert!(g.chars().count() <= 10);
        }
        // The generator should produce some diversity, not a single mode.
        let unique: std::collections::HashSet<&String> = guesses.iter().collect();
        assert!(unique.len() > 5, "only {} unique samples", unique.len());
    }

    #[test]
    fn generated_characters_come_from_the_human_distribution() {
        // After even a short training run, samples should be dominated by
        // lowercase letters and digits like the corpus, not by rare symbols.
        let gan = trained();
        let mut rng = nnrng::seeded(2);
        let guesses = gan.sample_passwords(300, &mut rng);
        let total_chars: usize = guesses.iter().map(|g| g.chars().count()).sum();
        let alnum_chars: usize = guesses
            .iter()
            .flat_map(|g| g.chars())
            .filter(|c| c.is_ascii_alphanumeric())
            .count();
        assert!(total_chars > 0);
        let frac = alnum_chars as f64 / total_chars as f64;
        assert!(frac > 0.7, "alphanumeric fraction was {frac}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed_and_trait_works() {
        let gan = trained();
        let a = gan.generate_batch(20, &mut nnrng::seeded(3));
        let b = gan.generate_batch(20, &mut nnrng::seeded(3));
        assert_eq!(a, b);
        assert_eq!(gan.name(), "PassGAN (WGAN)");
    }

    #[test]
    #[should_panic(expected = "no training password could be encoded")]
    fn unencodable_corpus_rejected() {
        let _ = PassGan::train(
            &["definitely_way_too_long_for_the_encoder".to_string()],
            PasswordEncoder::default(),
            PassGanConfig::tiny(),
        );
    }
}
