/root/repo/target/release/deps/passflow_baselines-6d920be1185845d2.d: crates/baselines/src/lib.rs crates/baselines/src/cwae.rs crates/baselines/src/gan.rs crates/baselines/src/guesser.rs crates/baselines/src/markov.rs crates/baselines/src/pcfg.rs

/root/repo/target/release/deps/libpassflow_baselines-6d920be1185845d2.rlib: crates/baselines/src/lib.rs crates/baselines/src/cwae.rs crates/baselines/src/gan.rs crates/baselines/src/guesser.rs crates/baselines/src/markov.rs crates/baselines/src/pcfg.rs

/root/repo/target/release/deps/libpassflow_baselines-6d920be1185845d2.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cwae.rs crates/baselines/src/gan.rs crates/baselines/src/guesser.rs crates/baselines/src/markov.rs crates/baselines/src/pcfg.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cwae.rs:
crates/baselines/src/gan.rs:
crates/baselines/src/guesser.rs:
crates/baselines/src/markov.rs:
crates/baselines/src/pcfg.rs:
