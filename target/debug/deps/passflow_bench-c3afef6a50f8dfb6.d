/root/repo/target/debug/deps/passflow_bench-c3afef6a50f8dfb6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpassflow_bench-c3afef6a50f8dfb6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
