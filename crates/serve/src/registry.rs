//! Named served models behind atomically hot-swappable handles.
//!
//! A [`ServedModel`] is an immutable scoring unit: a versioned backend
//! (either a detached [`FlowScorer`] snapshot or any boxed
//! [`ProbabilityModel`]) plus an optional [`SampleTable`] for guess-number
//! estimates. The [`ModelRegistry`] maps names to `RwLock<Arc<ServedModel>>`
//! handles: a request resolves its model to an `Arc` **once**, at dispatch
//! time, and every byte of its response is produced by that one immutable
//! model — so swapping in a freshly trained checkpoint under load never
//! drops a request and never produces a torn (half-old, half-new) response.
//! The concurrency suite in `tests/serve.rs` hammers a swap mid-load to
//! assert exactly that.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use passflow_core::{
    FlowScorer, FlowWorkspace, PassFlow, ProbabilityModel, QuantizedScorer, SampleTable,
    StrengthEstimate,
};

/// The scoring implementation behind a served model.
enum Backend {
    /// A detached flow snapshot scored through the fused batch kernels.
    Flow(FlowScorer),
    /// The opt-in int8 quantized tier of a flow snapshot (~4× smaller,
    /// approximate scores; see `probe_quantization`).
    Quantized(QuantizedScorer),
    /// Any probability model, scored through its own (possibly batched)
    /// `password_log_probs` implementation.
    Dyn(Arc<dyn ProbabilityModel>),
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Flow(_) => f.write_str("Backend::Flow"),
            Backend::Quantized(_) => f.write_str("Backend::Quantized"),
            Backend::Dyn(_) => f.write_str("Backend::Dyn"),
        }
    }
}

/// An immutable, versioned model as served to requests.
///
/// Once constructed, a `ServedModel` never changes: new weights mean a new
/// `ServedModel` with a higher version, swapped into the registry handle.
#[derive(Debug)]
pub struct ServedModel {
    name: String,
    version: u64,
    backend: Backend,
    table: Option<SampleTable>,
}

impl ServedModel {
    /// Builds a served model from a flow by exporting a detached weight
    /// snapshot ([`FlowScorer`]); the live flow can keep training.
    pub fn from_flow(
        name: impl Into<String>,
        flow: &PassFlow,
        version: u64,
        table: Option<SampleTable>,
    ) -> Self {
        ServedModel {
            name: name.into(),
            version,
            backend: Backend::Flow(FlowScorer::new(flow)),
            table,
        }
    }

    /// Builds a served model scoring through the **int8 quantized tier** of
    /// the flow's snapshot — scores are approximate; callers opt in after
    /// checking the model's measured error bound
    /// ([`passflow_core::probe_quantization`]).
    pub fn from_flow_quantized(
        name: impl Into<String>,
        flow: &PassFlow,
        version: u64,
        table: Option<SampleTable>,
    ) -> Self {
        ServedModel {
            name: name.into(),
            version,
            backend: Backend::Quantized(QuantizedScorer::new(flow)),
            table,
        }
    }

    /// Whether this model scores through the approximate int8 tier
    /// (surfaced in `GET /v1/models` so clients can tell the tiers apart).
    pub fn quantized(&self) -> bool {
        matches!(self.backend, Backend::Quantized(_))
    }

    /// Builds a served model from any [`ProbabilityModel`] (a Markov or
    /// PCFG baseline, say). Mutating the model after handing it to the
    /// registry is the caller's responsibility to avoid.
    pub fn from_model(
        name: impl Into<String>,
        model: Arc<dyn ProbabilityModel>,
        version: u64,
        table: Option<SampleTable>,
    ) -> Self {
        ServedModel {
            name: name.into(),
            version,
            backend: Backend::Dyn(model),
            table,
        }
    }

    /// The registry name of this model.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotonic version, echoed in every response so clients (and the
    /// hot-swap tests) can attribute each score to exact weights.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The sample table backing guess-number estimates, if one was built.
    pub fn table(&self) -> Option<&SampleTable> {
        self.table.as_ref()
    }

    /// Scores a batch of passwords through a caller-managed workspace (the
    /// batcher thread keeps one alive across ticks; non-flow backends
    /// ignore it). One entry per input, in input order; bit-identical to
    /// scoring each password alone.
    pub fn log_probs_with(
        &self,
        passwords: &[String],
        ws: &mut FlowWorkspace,
        out: &mut Vec<Option<f64>>,
    ) {
        match &self.backend {
            Backend::Flow(scorer) => scorer.log_probs_with(passwords, ws, out),
            Backend::Quantized(scorer) => scorer.log_probs_with(passwords, ws, out),
            Backend::Dyn(model) => {
                out.clear();
                out.extend(model.password_log_probs(passwords));
            }
        }
    }

    /// Guess-number estimate for an already computed log-probability;
    /// `None` when the model has no sample table.
    pub fn estimate(&self, log_prob: f64) -> Option<StrengthEstimate> {
        self.table.as_ref().map(|t| t.estimate(log_prob))
    }
}

/// A name → hot-swappable model map shared by all serving threads.
///
/// The outer lock guards the *name set* (rarely written); each model sits
/// behind its own `RwLock<Arc<ServedModel>>` handle, so swapping one
/// model's weights contends only with requests resolving that model, and a
/// resolved `Arc` is immune to later swaps.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<String, Arc<RwLock<Arc<ServedModel>>>>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `model` under its name, replacing any previous entry.
    pub fn insert(&self, model: ServedModel) {
        let name = model.name().to_string();
        let handle = Arc::new(RwLock::new(Arc::new(model)));
        self.models.write().insert(name, handle);
    }

    /// Resolves `name` to the current model, or `None` if unregistered.
    ///
    /// The returned `Arc` is a consistent snapshot: a concurrent
    /// [`swap`](Self::swap) affects only requests resolved after it.
    pub fn get(&self, name: &str) -> Option<Arc<ServedModel>> {
        let models = self.models.read();
        models.get(name).map(|handle| Arc::clone(&handle.read()))
    }

    /// Atomically replaces the model registered under `model.name()`.
    ///
    /// Returns the displaced model (callers usually let it drop once its
    /// in-flight requests finish), or `Err` with the new model if nothing
    /// is registered under that name (use [`insert`](Self::insert) first —
    /// a swap should never silently create an endpoint).
    #[allow(clippy::result_large_err)]
    pub fn swap(&self, model: ServedModel) -> Result<Arc<ServedModel>, ServedModel> {
        let models = self.models.read();
        match models.get(model.name()) {
            Some(handle) => {
                let mut slot = handle.write();
                Ok(std::mem::replace(&mut *slot, Arc::new(model)))
            }
            None => Err(model),
        }
    }

    /// Number of registered models (for `/healthz`).
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    /// Whether no models are registered (a server with nothing to serve).
    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }

    /// Registered model names, sorted (for `/healthz`).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.models.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Sorted `(name, current version, quantized)` triples (for
    /// `GET /v1/models`).
    ///
    /// Each triple is read through the model's own handle, so it is a
    /// consistent snapshot of that model even while swaps are in flight.
    pub fn entries(&self) -> Vec<(String, u64, bool)> {
        let models = self.models.read();
        let mut entries: Vec<(String, u64, bool)> = models
            .iter()
            .map(|(name, handle)| {
                let model = handle.read();
                (name.clone(), model.version(), model.quantized())
            })
            .collect();
        entries.sort();
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use passflow_core::FlowConfig;
    use passflow_nn::rng as nnrng;

    fn tiny_flow(seed: u64) -> PassFlow {
        let mut rng = nnrng::seeded(seed);
        PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
    }

    #[test]
    fn resolved_models_survive_swaps() {
        let registry = ModelRegistry::new();
        let flow_a = tiny_flow(1);
        let flow_b = tiny_flow(2);
        registry.insert(ServedModel::from_flow("default", &flow_a, 1, None));

        let resolved = registry.get("default").unwrap();
        assert_eq!(resolved.version(), 1);

        let old = registry
            .swap(ServedModel::from_flow("default", &flow_b, 2, None))
            .unwrap();
        assert_eq!(old.version(), 1);
        assert_eq!(registry.get("default").unwrap().version(), 2);

        // The Arc resolved before the swap still scores with version-1
        // weights — a request in flight during a swap is never torn.
        let mut ws = FlowWorkspace::new();
        let mut out = Vec::new();
        resolved.log_probs_with(&["jimmy91".to_string()], &mut ws, &mut out);
        let expected = flow_a.password_log_prob("jimmy91").unwrap();
        assert_eq!(out[0].unwrap().to_bits(), expected.to_bits());
    }

    #[test]
    fn swap_requires_an_existing_entry() {
        let registry = ModelRegistry::new();
        let flow = tiny_flow(3);
        let rejected = registry.swap(ServedModel::from_flow("missing", &flow, 1, None));
        assert!(rejected.is_err());
        assert!(registry.get("missing").is_none());
        assert!(registry.names().is_empty());
    }

    #[test]
    fn flow_and_dyn_backends_score_identically() {
        let flow = tiny_flow(4);
        let served_flow = ServedModel::from_flow("f", &flow, 1, None);
        let served_dyn = ServedModel::from_model("d", Arc::new(flow.clone()), 1, None);
        let passwords: Vec<String> = vec!["abc".into(), "123456".into(), "toolongtoencode!".into()];
        let mut ws = FlowWorkspace::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        served_flow.log_probs_with(&passwords, &mut ws, &mut a);
        served_dyn.log_probs_with(&passwords, &mut ws, &mut b);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.map(f64::to_bits), y.map(f64::to_bits));
        }
    }
}
