//! Latent-space sweep: first direct integration coverage for the paper's
//! latent-space machinery — `interpolate.rs` (Algorithm 2), `mask.rs`
//! (Section III-A.1) and `conditional.rs` (the Section VII template
//! completion).
//!
//! The themes: interpolation paths recover their endpoints and stay on the
//! straight latent line; coupling masks leave masked positions bit-exactly
//! fixed while free positions move, and round-trip through
//! forward ∘ inverse; conditional samples honor their template; and every
//! stochastic path is deterministic under a fixed seed.

use passflow::core::{conditional_guess, ConditionalConfig, PasswordTemplate};
use passflow::nn::rng as nnrng;
use passflow::nn::Tensor;
use passflow::{interpolate, interpolate_passwords, FlowConfig, MaskStrategy, PassFlow};

fn tiny_flow(seed: u64) -> PassFlow {
    let mut rng = nnrng::seeded(seed);
    PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
}

// ---------------------------------------------------------------------------
// Interpolation (Algorithm 2)
// ---------------------------------------------------------------------------

#[test]
fn interpolation_recovers_its_endpoints() {
    let flow = tiny_flow(11);
    for (start, target, steps) in [
        ("jimmy91", "123456", 8),
        ("sunshine", "qwerty12", 3),
        ("a", "zzzzzzzzzz", 12),
    ] {
        let path = interpolate(&flow, start, target, steps).unwrap();
        assert_eq!(path.len(), steps + 1, "{start}→{target}");
        assert_eq!(path.first().unwrap().password, start);
        assert_eq!(path.last().unwrap().password, target);
        // Endpoint latents are exactly the flow's own latents.
        assert_eq!(
            path.first().unwrap().latent,
            flow.latent_of(start).unwrap(),
            "start latent must be f(start)"
        );
        // Every intermediate decodes to an encodable password.
        for point in &path {
            assert!(
                flow.encoder().can_encode(&point.password),
                "step {} decodes to unencodable {:?}",
                point.step,
                point.password
            );
        }
    }
}

#[test]
fn interpolation_path_is_the_straight_latent_line() {
    let flow = tiny_flow(12);
    let steps = 10;
    let path = interpolate(&flow, "monkey", "dragon", steps).unwrap();
    let z0 = &path[0].latent;
    let zn = &path[steps].latent;
    for point in &path {
        let alpha = point.step as f32 / steps as f32;
        for j in 0..z0.len() {
            let expected = z0[j] + (zn[j] - z0[j]) * alpha;
            assert!(
                (point.latent[j] - expected).abs() < 1e-3,
                "step {} dim {j}: {} vs {expected}",
                point.step,
                point.latent[j]
            );
        }
    }
}

#[test]
fn interpolation_is_deterministic_and_validates_input() {
    let flow = tiny_flow(13);
    // No RNG anywhere: two runs are identical, including latents.
    let a = interpolate(&flow, "hello1", "world2", 6).unwrap();
    let b = interpolate(&flow, "hello1", "world2", 6).unwrap();
    assert_eq!(a, b);
    // The convenience wrapper agrees with the full path.
    let only_passwords = interpolate_passwords(&flow, "hello1", "world2", 6).unwrap();
    let from_path: Vec<String> = a.into_iter().map(|p| p.password).collect();
    assert_eq!(only_passwords, from_path);
    // Bad input errors instead of panicking.
    assert!(interpolate(&flow, "waytoolongforthedim", "ok", 3).is_err());
    assert!(interpolate(&flow, "ok", "ok2", 0).is_err());
}

// ---------------------------------------------------------------------------
// Masking (Section III-A.1)
// ---------------------------------------------------------------------------

#[test]
fn coupling_masks_fix_masked_positions_and_move_free_ones() {
    let mut rng = nnrng::seeded(21);
    for strategy in [
        MaskStrategy::CharRun(1),
        MaskStrategy::CharRun(2),
        MaskStrategy::Horizontal,
    ] {
        let dim = 10;
        let mask = strategy.mask_for_layer(0, dim);
        let layer = passflow::core::CouplingLayer::new(dim, 16, 1, &mask, &mut rng);
        let x = Tensor::randn(5, dim, &mut rng);
        let (z, _log_det) = layer.forward(&x);
        for i in 0..x.rows() {
            for (j, &m) in mask.iter().enumerate() {
                if m == 1.0 {
                    // Masked (conditioning) positions pass through exactly.
                    assert_eq!(
                        z.get(i, j).to_bits(),
                        x.get(i, j).to_bits(),
                        "{strategy}: masked position ({i},{j}) moved"
                    );
                }
            }
        }
        // Free positions move for a generic (random-weight) layer.
        let moved = (0..x.rows()).any(|i| {
            (0..dim).any(|j| mask[j] == 0.0 && z.get(i, j).to_bits() != x.get(i, j).to_bits())
        });
        assert!(moved, "{strategy}: no free position was transformed");

        // Round trip: inverse ∘ forward recovers the input.
        let back = layer.inverse(&z);
        for (a, b) in back.as_slice().iter().zip(x.as_slice().iter()) {
            assert!((a - b).abs() < 1e-4, "{strategy}: round trip drifted");
        }
    }
}

#[test]
fn alternating_masks_transform_every_position_across_the_flow() {
    // Through a full flow (alternating masks), *no* position survives
    // unchanged — complementary layers cover all dimensions.
    let flow = tiny_flow(22);
    let mut rng = nnrng::seeded(23);
    let x = Tensor::randn(4, flow.dim(), &mut rng);
    let (z, _) = flow.forward(&x);
    for i in 0..x.rows() {
        for j in 0..flow.dim() {
            assert_ne!(
                z.get(i, j).to_bits(),
                x.get(i, j).to_bits(),
                "position ({i},{j}) untouched by the whole flow"
            );
        }
    }
}

#[test]
fn mask_strategies_produce_valid_flows() {
    // A flow built with each strategy inverts correctly on passwords.
    for strategy in [
        MaskStrategy::CharRun(1),
        MaskStrategy::CharRun(2),
        MaskStrategy::Horizontal,
    ] {
        let mut rng = nnrng::seeded(24);
        let config = FlowConfig::tiny().with_masking(strategy);
        let flow = PassFlow::new(config, &mut rng).unwrap();
        let x = flow
            .encode_batch(&["jimmy91".to_string(), "dragon".to_string()])
            .unwrap();
        let (z, _) = flow.forward(&x);
        let back = flow.inverse(&z);
        assert_eq!(
            flow.decode_batch(&back),
            vec!["jimmy91".to_string(), "dragon".to_string()],
            "{strategy}: flow round trip lost the passwords"
        );
    }
}

// ---------------------------------------------------------------------------
// Conditional guessing (Section VII)
// ---------------------------------------------------------------------------

#[test]
fn conditional_samples_honor_their_condition() {
    let flow = tiny_flow(31);
    let config = ConditionalConfig {
        num_seeds: 8,
        samples_per_round: 128,
        rounds: 3,
        sigma: 0.3,
    };
    for template_text in ["ji***1", "*asswor*", "ab**"] {
        let template = PasswordTemplate::parse(template_text).unwrap();
        let mut rng = nnrng::seeded(32);
        let guesses = conditional_guess(&flow, &template, &config, 25, &mut rng).unwrap();
        for guess in &guesses {
            assert!(
                template.matches(&guess.password),
                "{template_text}: {:?} violates the template",
                guess.password
            );
            assert_eq!(guess.password.chars().count(), template.len());
            assert!(guess.log_prob.is_finite());
        }
        // Ranked by decreasing likelihood, no duplicates.
        for pair in guesses.windows(2) {
            assert!(pair[0].log_prob >= pair[1].log_prob);
            assert_ne!(pair[0].password, pair[1].password);
        }
    }
}

#[test]
fn conditional_search_is_deterministic_under_a_fixed_seed() {
    let flow = tiny_flow(33);
    let template = PasswordTemplate::parse("m**key").unwrap();
    let config = ConditionalConfig::default();
    let a = conditional_guess(&flow, &template, &config, 15, &mut nnrng::seeded(34)).unwrap();
    let b = conditional_guess(&flow, &template, &config, 15, &mut nnrng::seeded(34)).unwrap();
    assert_eq!(a, b, "same seed must reproduce the same completions");
    let c = conditional_guess(&flow, &template, &config, 15, &mut nnrng::seeded(35)).unwrap();
    // A different seed explores differently (not required to differ, but a
    // fully seed-independent search would make the determinism test vacuous;
    // assert on the searched sets only when both are non-empty).
    if !a.is_empty() && !c.is_empty() {
        let pw = |gs: &[passflow::core::ConditionalGuess]| {
            gs.iter().map(|g| g.password.clone()).collect::<Vec<_>>()
        };
        // Identical prefixes are fine; byte-identical full results from
        // different seeds would be suspicious but are not impossible for
        // tiny alphabet slices — so this stays a soft signal, not a hard
        // assert.
        let _ = (pw(&a), pw(&c));
    }
}

#[test]
fn conditional_rejects_inconsistent_templates() {
    let flow = tiny_flow(36);
    let mut rng = nnrng::seeded(37);
    // Longer than the flow's max length.
    let too_long = PasswordTemplate::parse("abcdefghijk*").unwrap();
    assert!(
        conditional_guess(&flow, &too_long, &ConditionalConfig::default(), 5, &mut rng).is_err()
    );
    // Characters outside the alphabet.
    let foreign = PasswordTemplate::parse("päss*").unwrap();
    assert!(
        conditional_guess(&flow, &foreign, &ConditionalConfig::default(), 5, &mut rng).is_err()
    );
    // Degenerate parses.
    assert!(PasswordTemplate::parse("").is_err());
    assert!(PasswordTemplate::parse("nowildcard").is_err());
}

// ---------------------------------------------------------------------------
// Cross-cutting determinism
// ---------------------------------------------------------------------------

#[test]
fn latent_pipeline_is_deterministic_end_to_end() {
    // Same seeds → byte-identical flows → byte-identical latent artifacts.
    let flow_a = tiny_flow(41);
    let flow_b = tiny_flow(41);
    let path_a = interpolate_passwords(&flow_a, "jimmy91", "123456", 7).unwrap();
    let path_b = interpolate_passwords(&flow_b, "jimmy91", "123456", 7).unwrap();
    assert_eq!(path_a, path_b);

    let near_a = flow_a
        .sample_near("jimmy91", 0.1, 16, &mut nnrng::seeded(42))
        .unwrap();
    let near_b = flow_b
        .sample_near("jimmy91", 0.1, 16, &mut nnrng::seeded(42))
        .unwrap();
    assert_eq!(near_a, near_b);
}
