/root/repo/target/debug/deps/passflow_bench-f16e1c7385e873be.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpassflow_bench-f16e1c7385e873be.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpassflow_bench-f16e1c7385e873be.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
