//! # passflow-nn
//!
//! A minimal deep-learning substrate built specifically for the PassFlow
//! reproduction. It provides:
//!
//! * [`Tensor`] — a dense, row-major 2-D `f32` tensor with the linear-algebra
//!   and elementwise operations a normalizing flow needs,
//! * [`Tape`] / [`Var`] — a reverse-mode automatic-differentiation tape,
//! * [`Parameter`] — trainable, shared parameters with accumulated gradients,
//! * layers ([`Linear`], [`ResidualBlock`], [`ResNet`], [`Sequential`]),
//! * optimizers ([`Sgd`], [`Adam`]),
//! * initializers ([`init`]) and RNG helpers ([`rng`]).
//!
//! The paper's coupling networks are small residual MLPs operating on
//! `batch × feature` matrices, so a 2-D tensor type is all that is required.
//! Gradients are exact (reverse-mode) and are verified against finite
//! differences in the test suite.
//!
//! ## Example
//!
//! ```rust
//! use passflow_nn::{Tape, Tensor, Linear, Module, Adam, Optimizer};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let layer = Linear::new(4, 2, &mut rng);
//! let mut opt = Adam::new(1e-2);
//!
//! // One training step on a tiny regression problem.
//! let x = Tensor::randn(8, 4, &mut rng);
//! let target = Tensor::zeros(8, 2);
//!
//! let tape = Tape::new();
//! let input = tape.constant(x);
//! let out = layer.forward(&tape, &input);
//! let diff = out.sub(&tape.constant(target));
//! let loss = diff.square().mean();
//! loss.backward();
//! opt.step(&layer.parameters());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod autograd;
mod error;
pub mod init;
pub mod kernels;
mod layers;
pub mod math;
mod optim;
pub mod pool;
mod quant;
pub mod rng;
mod snapshot;
mod tensor;

pub use autograd::{GradBatch, Parameter, Tape, Var};
pub use error::{NnError, Result};
pub use layers::{Activation, ActivationKind, Linear, Module, ResNet, ResidualBlock, Sequential};
pub use optim::{Adam, AdamState, Optimizer, Sgd};
pub use pool::{clamp_lane_threads, clamp_threads, host_threads, resolve_threads, ThreadPool};
pub use quant::{QuantizedBlockSnapshot, QuantizedLinearSnapshot, QuantizedResNetSnapshot};
pub use snapshot::{BlockSnapshot, LinearSnapshot, NetWorkspace, ResNetSnapshot, WeightSnapshot};
pub use tensor::Tensor;
