/root/repo/target/debug/deps/flow_ops-4556cc708d9d21d7.d: crates/bench/benches/flow_ops.rs Cargo.toml

/root/repo/target/debug/deps/libflow_ops-4556cc708d9d21d7.rmeta: crates/bench/benches/flow_ops.rs Cargo.toml

crates/bench/benches/flow_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
