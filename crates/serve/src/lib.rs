//! # passflow-serve
//!
//! Online serving for the PassFlow reproduction: a std-only HTTP/1.1
//! service that turns the batch-oriented inference fast path into a
//! request/response API suitable for a credential-screening or
//! strength-meter endpoint.
//!
//! The design has a few load-bearing pieces (DESIGN.md, "Serving
//! architecture" and "Sharded serving"):
//!
//! * the **sharded adaptive micro-batching queue** ([`Batcher`]) — N
//!   independent lanes (`--lanes`), each coalescing concurrent
//!   single-password requests into one fused `FlowSnapshot::log_prob_into`
//!   batch per tick (flush on max-batch or deadline, with a
//!   saturation-driven adaptive wait). Submissions round-robin across
//!   lanes; a full lane's overflow is *stolen* by idle siblings before
//!   anything sheds 503. All lanes share one GEMM thread pool under a
//!   `lanes × threads ≤ host` clamp, and every score stays bit-identical
//!   to serial scoring at any lane count;
//! * the **connection multiplexer** (`conn`, private) — a poller parks
//!   idle keep-alive sockets in non-blocking mode and a bounded handler
//!   pool serves requests, so a thousand idle connections cost ~0 threads;
//! * the **hot-swappable model registry** ([`ModelRegistry`]) — named,
//!   versioned, immutable [`ServedModel`]s behind `RwLock<Arc<...>>`
//!   handles, so freshly trained checkpoints swap in under load with zero
//!   dropped requests and no torn responses;
//! * a **deliberately small HTTP layer** ([`http`]) — `std::net` + threads,
//!   every size limit enforced while reading, adversarial input answered
//!   with precise 4xx statuses (`tests/serve.rs` is the conformance suite);
//! * the **trace-replay loadgen** ([`trace`]) — versioned `PFTRACE v1`
//!   request traces (inter-arrival gaps, heavy-tailed batch sizes,
//!   endpoint mix) that the bench loadgen records, synthesizes from a
//!   seed, and replays deterministically against a live server;
//! * an explicit **failure model** (DESIGN.md, "Failure model &
//!   degradation") — per-request deadlines (server default, shortenable
//!   via `X-Passflow-Deadline-Ms`; expired jobs answer 504), a
//!   [`CircuitBreaker`] on the digest store under which `/v1/screen`
//!   degrades to scores-only (`"breached": null, "degraded": true`) while
//!   `/v1/range` answers an honest 503, wall-clock read budgets against
//!   slow-loris peers, and socket write timeouts. `tests/chaos.rs` drives
//!   all of it under seeded fault injection
//!   ([`passflow_store::FaultPlan`]).
//!
//! ## Endpoints
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `POST /v1/score` | password → log-prob + guess-number estimate (CI) |
//! | `POST /v1/logprob` | batch log-probs through any `ProbabilityModel` |
//! | `POST /v1/screen` | strength + breach membership from the digest store |
//! | `GET /v1/range/{prefix5}` | k-anonymity breach range (HIBP-style) |
//! | `GET /v1/models` | registered models with current versions |
//! | `GET /healthz` | per-component health (registry, batcher, store + breaker) |
//! | `GET /metrics` | request counts, batch-size histogram, p50/p99 latency |
//! | `POST /admin/shutdown` | graceful stop (opt-in, for CI smoke tests) |
//!
//! The breach endpoints answer 503 until a [`passflow_store::DigestStore`]
//! is attached via [`ServerConfig::digest`] (the binary's `--digest` flag).
//!
//! The request/response wire schema is specified in DESIGN.md ("Artifact
//! schemas").
//!
//! ## Quickstart
//!
//! ```rust
//! use std::sync::Arc;
//! use passflow_core::{FlowConfig, PassFlow};
//! use passflow_serve::{serve, ModelRegistry, ServedModel, ServerConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let flow = PassFlow::new(FlowConfig::tiny(), &mut rng)?;
//! let registry = Arc::new(ModelRegistry::new());
//! registry.insert(ServedModel::from_flow("default", &flow, 1, None));
//!
//! let server = serve(ServerConfig::default(), registry)?;
//! let response = passflow_serve::client::request(
//!     server.addr(),
//!     "POST",
//!     "/v1/score",
//!     Some(r#"{"passwords":["jimmy91"]}"#),
//! )?;
//! assert_eq!(response.status, 200);
//! server.shutdown();
//! server.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batcher;
pub mod breaker;
pub mod client;
pub(crate) mod conn;
pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod server;
pub mod trace;

pub use batcher::{Batcher, BatcherConfig, BatcherHandle, EnqueueError, ScoreJob, ScoreOutcome};
pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use json::Json;
pub use metrics::Metrics;
pub use registry::{ModelRegistry, ServedModel};
pub use server::{serve, ServerConfig, ServerHandle, MAX_REQUEST_PASSWORDS};
pub use trace::{Trace, TraceRecord, TraceSynthProfile};
