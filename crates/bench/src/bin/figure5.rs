//! Regenerates Figure 5: Dynamic Sampling with vs without the penalization
//! function φ.

use passflow_bench::{emit, prepare, scale_from_env};
use passflow_eval::figures;

fn main() -> passflow_core::Result<()> {
    let workbench = prepare(scale_from_env())?;
    let table = figures::figure5(&workbench);
    emit(&table, "figure5");
    Ok(())
}
