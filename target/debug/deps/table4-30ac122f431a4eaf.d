/root/repo/target/debug/deps/table4-30ac122f431a4eaf.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-30ac122f431a4eaf: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
