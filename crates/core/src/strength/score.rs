//! Parallel sharded wordlist scoring and the attack-engine bridge.

use std::collections::HashSet;

use crate::engine::{Attack, Guesser};
use crate::error::Result;

use super::{run_chunks, ProbabilityModel, SampleTable, StrengthEstimate};

/// Passwords scored per work chunk. Fixed (independent of the shard count)
/// so the chunk partition — and therefore every result — is shard-invariant.
const SCORE_CHUNK: usize = 512;

/// One scored wordlist entry.
#[derive(Clone, Debug, PartialEq)]
pub struct PasswordStrength {
    /// The password that was scored.
    pub password: String,
    /// Natural-log probability under the model, or `None` if the model
    /// cannot score this password.
    pub log_prob: Option<f64>,
    /// Guess-number estimate from the sample table (present iff
    /// `log_prob` is).
    pub estimate: Option<StrengthEstimate>,
}

/// Scores every password in `wordlist` against `model` and `table` on up to
/// `shards` worker threads, returning one [`PasswordStrength`] per input
/// password, in input order.
///
/// Mirroring the attack engine's guarantee, `shards` is a throughput knob
/// only: the wordlist is cut into fixed-size chunks, workers pull chunks
/// from a shared counter, and outputs are re-assembled in chunk order — so
/// `shards = 1` and `shards = 8` return identical results.
///
/// # Panics
///
/// Panics if `table` is empty.
pub fn score_wordlist(
    model: &dyn ProbabilityModel,
    table: &SampleTable,
    wordlist: &[String],
    shards: usize,
) -> Vec<PasswordStrength> {
    assert!(!table.is_empty(), "cannot score against an empty table");
    let chunks: Vec<&[String]> = wordlist.chunks(SCORE_CHUNK).collect();
    let produce = |i: usize| -> Vec<PasswordStrength> {
        let chunk = chunks[i];
        let scores = model.password_log_probs(chunk);
        chunk
            .iter()
            .zip(scores)
            .map(|(password, log_prob)| PasswordStrength {
                password: password.clone(),
                log_prob,
                estimate: log_prob.map(|lp| table.estimate(lp)),
            })
            .collect()
    };
    run_chunks(chunks.len(), shards, &produce)
        .into_iter()
        .flatten()
        .collect()
}

/// Measures the **true** unique-guess rank of `target` under `guesser`
/// through the [`Attack`] engine: run a static sampling attack with a
/// single-guess batch size and a checkpoint after every guess, and report
/// the number of *unique* guesses generated when `target` first matched
/// (the target itself included).
///
/// This is the ground truth the sampling-rank estimator
/// ([`SampleTable::sampling_rank`]) predicts; `None` if the attack budget
/// ran out before the target fell.
///
/// # Errors
///
/// Propagates engine errors (none for static strategies on plain guessers).
pub fn attack_unique_rank(
    guesser: &dyn Guesser,
    target: &str,
    budget: u64,
    seed: u64,
) -> Result<Option<u64>> {
    let targets: HashSet<String> = std::iter::once(target.to_string()).collect();
    let mut rank: Option<u64> = None;
    Attack::new(&targets)
        .budget(budget)
        .batch_size(1)
        .checkpoints((1..=budget).collect())
        .seed(seed)
        .observer(|report| {
            if rank.is_none() && report.matched > 0 {
                rank = Some(report.unique);
            }
        })
        .run(guesser)?;
    Ok(rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use crate::flow::PassFlow;
    use passflow_nn::rng as nnrng;

    fn fixture() -> (PassFlow, SampleTable, Vec<String>) {
        let mut rng = nnrng::seeded(41);
        let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
        let table = SampleTable::build(&flow, 2_000, 1);
        let wordlist = flow.sample_passwords(300, &mut rng);
        (flow, table, wordlist)
    }

    #[test]
    fn scoring_is_shard_invariant_and_ordered() {
        let (flow, table, wordlist) = fixture();
        let sequential = score_wordlist(&flow, &table, &wordlist, 1);
        assert_eq!(sequential.len(), wordlist.len());
        for (entry, pw) in sequential.iter().zip(wordlist.iter()) {
            assert_eq!(&entry.password, pw);
            assert_eq!(entry.log_prob.is_some(), entry.estimate.is_some());
        }
        for shards in [2, 4, 8] {
            let sharded = score_wordlist(&flow, &table, &wordlist, shards);
            assert_eq!(sharded, sequential, "shards={shards} diverged");
        }
    }

    #[test]
    fn flow_samples_always_score() {
        let (flow, table, wordlist) = fixture();
        let scored = score_wordlist(&flow, &table, &wordlist, 2);
        // Every password the flow itself generated is encodable, so every
        // entry carries a log-probability and an estimate.
        assert!(scored.iter().all(|e| e.estimate.is_some()));
    }

    #[test]
    fn attack_unique_rank_finds_likely_targets() {
        let (flow, _, _) = fixture();
        let mut rng = nnrng::seeded(42);
        // A password the flow just generated is likely to re-appear fast.
        let target = flow.sample_passwords(1, &mut rng).remove(0);
        let rank = attack_unique_rank(&flow, &target, 3_000, 9).unwrap();
        if let Some(rank) = rank {
            assert!((1..=3_000).contains(&rank));
        }
        // A target outside the alphabet can never match.
        let never = attack_unique_rank(&flow, "\u{1F512}password", 200, 9).unwrap();
        assert_eq!(never, None);
    }
}
