/root/repo/target/release/deps/passflow_nn-6a9765ecb388f8cb.d: crates/nn/src/lib.rs crates/nn/src/autograd.rs crates/nn/src/error.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/rng.rs crates/nn/src/tensor.rs

/root/repo/target/release/deps/libpassflow_nn-6a9765ecb388f8cb.rlib: crates/nn/src/lib.rs crates/nn/src/autograd.rs crates/nn/src/error.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/rng.rs crates/nn/src/tensor.rs

/root/repo/target/release/deps/libpassflow_nn-6a9765ecb388f8cb.rmeta: crates/nn/src/lib.rs crates/nn/src/autograd.rs crates/nn/src/error.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/rng.rs crates/nn/src/tensor.rs

crates/nn/src/lib.rs:
crates/nn/src/autograd.rs:
crates/nn/src/error.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/rng.rs:
crates/nn/src/tensor.rs:
