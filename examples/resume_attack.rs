//! Kill → resume smoke test for `PFATTACK v1` attack checkpoints (run by
//! CI, in two modes).
//!
//! With no arguments it is an in-process smoke: a reference attack runs
//! uninterrupted, a second attack is halted mid-run at a checkpoint, a
//! third resumes the checkpoint — and the resumed outcome and its
//! `PFGUESS v1` guess archive must be byte-identical to the reference.
//!
//! With `--worker` it becomes one leg of a cross-process kill test:
//!
//! ```text
//! resume_attack --worker --summary PATH --archive PATH
//!               [--checkpoint PATH] [--checkpoint-every N] [--throttle-ms M]
//! ```
//!
//! The worker runs one fixed attack campaign, checkpointing every `N`
//! guesses, and writes a deterministic summary (atomically) plus the guess
//! archive on completion. If the checkpoint file already exists the worker
//! resumes from it — so CI can SIGKILL a throttled worker mid-run, rerun
//! the same command line, and `diff`/`cmp` the outputs against an
//! uninterrupted reference run.

use std::collections::HashSet;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use passflow::nn::rng as nnrng;
use passflow::{Attack, AttackOutcome, Guesser};
use rand::RngCore;

/// A deterministic guesser cycling through a fixed wordlist, with an
/// optional per-batch sleep so CI can reliably kill a run mid-flight.
struct Cycler {
    words: Vec<String>,
    throttle: Duration,
}

impl Cycler {
    fn new(throttle: Duration) -> Cycler {
        Cycler {
            words: (0..64).map(|i| format!("pw{i:03}")).collect(),
            throttle,
        }
    }
}

impl Guesser for Cycler {
    fn name(&self) -> &str {
        "cycler"
    }

    fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
        if !self.throttle.is_zero() {
            std::thread::sleep(self.throttle);
        }
        (0..n)
            .map(|_| self.words[nnrng::uniform_index(rng, self.words.len())].clone())
            .collect()
    }
}

fn targets() -> HashSet<String> {
    (0..16).map(|i| format!("pw{:03}", i * 4)).collect()
}

/// The one fixed campaign both worker invocations and the reference run
/// share; resume validates every knob, so this must be identical each time.
fn campaign(targets: &HashSet<String>) -> Attack<'_> {
    Attack::new(targets)
        .budget(200_000)
        .batch_size(64)
        .checkpoints(vec![10_000, 50_000, 100_000])
        .seed(7)
}

/// A complete, deterministic text rendition of an [`AttackOutcome`] —
/// `diff`-able across the reference and killed→resumed runs.
fn summarize(outcome: &AttackOutcome) -> String {
    let mut s = String::new();
    for report in &outcome.checkpoints {
        let _ = writeln!(
            s,
            "report guesses={} matched={} percent={:.6}",
            report.guesses, report.matched, report.matched_percent
        );
    }
    let mut matched = outcome.matched_passwords.clone();
    matched.sort_unstable();
    let _ = writeln!(s, "matched {}", matched.join(","));
    s
}

/// Writes `contents` atomically: tmp sibling + rename, so a kill while the
/// summary is mid-write can never leave a torn file for `diff` to read.
fn write_atomic(path: &PathBuf, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    args.remove(i);
    Some(args.remove(i))
}

fn worker(mut args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let summary = PathBuf::from(take_value(&mut args, "--summary").ok_or("need --summary")?);
    let archive = PathBuf::from(take_value(&mut args, "--archive").ok_or("need --archive")?);
    let checkpoint = take_value(&mut args, "--checkpoint").map(PathBuf::from);
    let every: u64 = take_value(&mut args, "--checkpoint-every").map_or(Ok(0), |v| v.parse())?;
    let throttle: u64 = take_value(&mut args, "--throttle-ms").map_or(Ok(0), |v| v.parse())?;
    if !args.is_empty() {
        return Err(format!("unknown arguments: {args:?}").into());
    }

    let targets = targets();
    let guesser = Cycler::new(Duration::from_millis(throttle));
    let mut attack = campaign(&targets).archive_to(&archive);
    if let Some(cp) = checkpoint {
        if cp.exists() {
            eprintln!("worker: resuming from {}", cp.display());
            attack = attack.resume(&cp);
        }
        attack = attack.checkpoint_to(&cp).checkpoint_every(every);
    }
    let outcome = attack.run(&guesser)?;
    write_atomic(&summary, &summarize(&outcome))?;
    eprintln!(
        "worker: done, {} guesses, {} matched",
        outcome.final_report().guesses,
        outcome.matched_passwords.len()
    );
    Ok(())
}

fn smoke() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("passflow_resume_attack_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let targets = targets();
    let guesser = Cycler::new(Duration::ZERO);

    // Uninterrupted reference run, archiving its deduplicated guesses.
    let reference_archive = dir.join("reference.pfg");
    let reference = campaign(&targets)
        .archive_to(&reference_archive)
        .run(&guesser)?;

    // "Killed" run: halted at the first wave boundary past 70k guesses…
    let cp = dir.join("halted.pfa");
    let partial = campaign(&targets)
        .checkpoint_to(&cp)
        .halt_after(70_000)
        .run(&guesser)?;
    assert!(
        partial.final_report().guesses < reference.final_report().guesses,
        "the halted run must be a genuine partial run"
    );

    // …then resumed to completion from the checkpoint alone.
    let resumed_archive = dir.join("resumed.pfg");
    let resumed = campaign(&targets)
        .resume(&cp)
        .archive_to(&resumed_archive)
        .run(&guesser)?;
    assert_eq!(
        resumed, reference,
        "resumed outcome diverged from the uninterrupted run"
    );
    assert_eq!(
        std::fs::read(&resumed_archive)?,
        std::fs::read(&reference_archive)?,
        "resumed guess archive is not byte-identical"
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "attack resume smoke OK: {} guesses, {} matched, {} reports, \
         outcome and PFGUESS archive byte-identical across kill/resume",
        reference.final_report().guesses,
        reference.matched_passwords.len(),
        reference.checkpoints.len()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--worker") {
        args.remove(i);
        worker(args)
    } else if args.is_empty() {
        smoke()
    } else {
        Err(format!("unknown arguments: {args:?} (try --worker)").into())
    }
}
