//! The epoch/batch loop shared by every trainable model in the workspace.
//!
//! [`TrainLoop`] owns the mechanical part of training — iterating epochs and
//! batches, deriving the per-step learning rate from a [`Schedule`], and
//! aggregating per-epoch losses — while an [`EpochDriver`] supplies the
//! model-specific work. The flow's [`Trainer`](super::Trainer), the WGAN
//! baseline and the CWAE baseline all run through this one loop, so a
//! schedule or stopping rule implemented here is immediately available to
//! all of them.

use super::schedule::Schedule;

/// Whether the loop continues after an epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopControl {
    /// Proceed to the next epoch.
    Continue,
    /// End training now (early stopping, budget exhaustion, …).
    Stop,
}

/// Per-batch context handed to [`EpochDriver::on_batch`].
#[derive(Clone, Copy, Debug)]
pub struct StepCtx {
    /// 0-based epoch index.
    pub epoch: usize,
    /// 0-based batch index within the epoch.
    pub batch: usize,
    /// Global 0-based batch ordinal (`epoch × batches_per_epoch + batch`).
    pub step: u64,
    /// Scheduled learning rate for the optimizer step this batch feeds.
    pub lr: f32,
}

/// Model-specific callbacks plugged into a [`TrainLoop`].
pub trait EpochDriver {
    /// Error type surfaced out of the loop (use `Infallible` when the
    /// driver cannot fail).
    type Error;

    /// Called once before each epoch's first batch (shuffling, etc.).
    fn on_epoch_start(&mut self, _epoch: usize) -> Result<(), Self::Error> {
        Ok(())
    }

    /// Processes one batch and returns its (mean) loss for reporting.
    fn on_batch(&mut self, ctx: &StepCtx) -> Result<f32, Self::Error>;

    /// Called after each epoch with the mean of the epoch's batch losses;
    /// decides whether training continues.
    fn on_epoch_end(&mut self, _epoch: usize, _mean_loss: f32) -> Result<LoopControl, Self::Error> {
        Ok(LoopControl::Continue)
    }
}

/// The deterministic epoch/batch iteration plan.
#[derive(Clone, Copy, Debug)]
pub struct TrainLoop {
    epochs: usize,
    batches_per_epoch: usize,
    base_lr: f32,
    schedule: Schedule,
    /// Batches per optimizer step (gradient accumulation); the schedule is
    /// evaluated per optimizer step, not per batch.
    accum_steps: usize,
}

impl TrainLoop {
    /// Creates a loop plan. `accum_steps` is the number of batches folded
    /// into one optimizer step (1 = step every batch).
    pub fn new(epochs: usize, batches_per_epoch: usize, base_lr: f32, schedule: Schedule) -> Self {
        TrainLoop {
            epochs,
            batches_per_epoch,
            base_lr,
            schedule,
            accum_steps: 1,
        }
    }

    /// Sets the gradient-accumulation factor (builder style).
    #[must_use]
    pub fn with_accum_steps(mut self, accum_steps: usize) -> Self {
        self.accum_steps = accum_steps.max(1);
        self
    }

    /// Number of batches in one epoch.
    pub fn batches_per_epoch(&self) -> usize {
        self.batches_per_epoch
    }

    /// The learning rate scheduled for the given global batch ordinal.
    ///
    /// The optimizer-step ordinal is estimated as `step / accum_steps`,
    /// which is exact when `accum_steps` divides the batches per epoch. A
    /// driver that flushes partial accumulation groups (the flow trainer
    /// does, at epoch boundaries) should evaluate the schedule against its
    /// own optimizer-step counter instead of `StepCtx::lr`.
    pub fn lr_at(&self, step: u64) -> f32 {
        self.base_lr * self.schedule.factor(step / self.accum_steps as u64)
    }

    /// Runs epochs `start_epoch..epochs` through `driver`.
    ///
    /// Returns the mean batch loss of every epoch actually run. Resuming a
    /// checkpointed run is just `run(next_epoch, driver)` with restored
    /// driver state: the step ordinals (and therefore the schedule) replay
    /// identically because they are derived from the epoch index alone.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by a driver callback.
    pub fn run<D: EpochDriver>(
        &self,
        start_epoch: usize,
        driver: &mut D,
    ) -> Result<Vec<f32>, D::Error> {
        let mut epoch_means = Vec::new();
        for epoch in start_epoch..self.epochs {
            driver.on_epoch_start(epoch)?;
            let mut loss_sum = 0.0f64;
            for batch in 0..self.batches_per_epoch {
                let step = (epoch * self.batches_per_epoch + batch) as u64;
                let ctx = StepCtx {
                    epoch,
                    batch,
                    step,
                    lr: self.lr_at(step),
                };
                loss_sum += f64::from(driver.on_batch(&ctx)?);
            }
            let mean = (loss_sum / self.batches_per_epoch.max(1) as f64) as f32;
            epoch_means.push(mean);
            if driver.on_epoch_end(epoch, mean)? == LoopControl::Stop {
                break;
            }
        }
        Ok(epoch_means)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    struct Recorder {
        batches: Vec<(usize, usize, u64)>,
        lrs: Vec<f32>,
        stop_after: Option<usize>,
    }

    impl EpochDriver for Recorder {
        type Error = Infallible;

        fn on_batch(&mut self, ctx: &StepCtx) -> Result<f32, Infallible> {
            self.batches.push((ctx.epoch, ctx.batch, ctx.step));
            self.lrs.push(ctx.lr);
            Ok(ctx.step as f32)
        }

        fn on_epoch_end(&mut self, epoch: usize, _mean: f32) -> Result<LoopControl, Infallible> {
            Ok(match self.stop_after {
                Some(e) if epoch >= e => LoopControl::Stop,
                _ => LoopControl::Continue,
            })
        }
    }

    #[test]
    fn iterates_epochs_and_batches_in_order() {
        let mut rec = Recorder {
            batches: Vec::new(),
            lrs: Vec::new(),
            stop_after: None,
        };
        let means = TrainLoop::new(2, 3, 1.0, Schedule::Constant)
            .run(0, &mut rec)
            .unwrap();
        assert_eq!(
            rec.batches,
            vec![
                (0, 0, 0),
                (0, 1, 1),
                (0, 2, 2),
                (1, 0, 3),
                (1, 1, 4),
                (1, 2, 5)
            ]
        );
        // Epoch means of the returned batch losses (0,1,2) and (3,4,5).
        assert_eq!(means, vec![1.0, 4.0]);
    }

    #[test]
    fn stop_control_ends_training() {
        let mut rec = Recorder {
            batches: Vec::new(),
            lrs: Vec::new(),
            stop_after: Some(0),
        };
        let means = TrainLoop::new(10, 2, 1.0, Schedule::Constant)
            .run(0, &mut rec)
            .unwrap();
        assert_eq!(means.len(), 1);
        assert_eq!(rec.batches.len(), 2);
    }

    #[test]
    fn resume_replays_the_same_step_ordinals() {
        let run = |start: usize| {
            let mut rec = Recorder {
                batches: Vec::new(),
                lrs: Vec::new(),
                stop_after: None,
            };
            TrainLoop::new(
                4,
                2,
                0.1,
                Schedule::Step {
                    every: 3,
                    gamma: 0.5,
                },
            )
            .run(start, &mut rec)
            .unwrap();
            rec
        };
        let full = run(0);
        let tail = run(2);
        assert_eq!(&full.batches[4..], &tail.batches[..]);
        for (a, b) in full.lrs[4..].iter().zip(tail.lrs.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn accumulation_holds_lr_constant_within_a_step_group() {
        let lp = TrainLoop::new(
            1,
            8,
            1.0,
            Schedule::Step {
                every: 1,
                gamma: 0.5,
            },
        )
        .with_accum_steps(4);
        // Batches 0..4 feed optimizer step 0, batches 4..8 feed step 1.
        assert_eq!(lp.lr_at(0), lp.lr_at(3));
        assert_eq!(lp.lr_at(4), 0.5);
        assert_eq!(lp.batches_per_epoch(), 8);
    }
}
