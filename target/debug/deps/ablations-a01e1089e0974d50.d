/root/repo/target/debug/deps/ablations-a01e1089e0974d50.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-a01e1089e0974d50: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
