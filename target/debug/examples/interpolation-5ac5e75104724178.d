/root/repo/target/debug/examples/interpolation-5ac5e75104724178.d: examples/interpolation.rs Cargo.toml

/root/repo/target/debug/examples/libinterpolation-5ac5e75104724178.rmeta: examples/interpolation.rs Cargo.toml

examples/interpolation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
