//! Password ↔ feature-vector encoding.
//!
//! Section IV-D of the paper: *"Before feeding the data for training we
//! convert the passwords in feature vectors that contain their numerical
//! representation and then we normalize by the size of the alphabet."*
//!
//! A password of at most `max_len` characters becomes a `max_len`-dimensional
//! vector; position `i` holds `index(char_i) / num_symbols`, and positions
//! past the end of the password hold the padding value `0`. Decoding rounds
//! each component back to the nearest symbol index, which is also how
//! continuous samples produced by the flow are mapped back to strings.

use serde::{Deserialize, Serialize};

use crate::alphabet::Alphabet;

/// Maximum password length used throughout the paper's evaluation.
pub const PAPER_MAX_LEN: usize = 10;

/// Encodes passwords into fixed-length normalized feature vectors and decodes
/// continuous vectors back into passwords.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PasswordEncoder {
    alphabet: Alphabet,
    max_len: usize,
}

impl Default for PasswordEncoder {
    /// The paper's setting: default alphabet, maximum length 10.
    fn default() -> Self {
        PasswordEncoder::new(Alphabet::default(), PAPER_MAX_LEN)
    }
}

impl PasswordEncoder {
    /// Creates an encoder over the given alphabet and maximum length.
    ///
    /// # Panics
    ///
    /// Panics if `max_len` is zero or the alphabet is empty.
    pub fn new(alphabet: Alphabet, max_len: usize) -> Self {
        assert!(max_len > 0, "max_len must be positive");
        assert!(!alphabet.is_empty(), "alphabet must not be empty");
        PasswordEncoder { alphabet, max_len }
    }

    /// The alphabet used by this encoder.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Dimensionality of the feature vectors (= maximum password length).
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Normalization constant: number of symbols including padding.
    pub fn num_symbols(&self) -> usize {
        self.alphabet.num_symbols()
    }

    /// Returns `true` if the password can be encoded (length and character
    /// coverage).
    pub fn can_encode(&self, password: &str) -> bool {
        password.chars().count() <= self.max_len && self.alphabet.covers(password)
    }

    /// Encodes a password into a normalized feature vector of length
    /// [`max_len`](Self::max_len).
    ///
    /// Returns `None` if the password is too long or contains characters
    /// outside the alphabet.
    pub fn encode(&self, password: &str) -> Option<Vec<f32>> {
        if password.chars().count() > self.max_len {
            return None;
        }
        let norm = self.num_symbols() as f32;
        let mut features = vec![0.0f32; self.max_len];
        for (i, c) in password.chars().enumerate() {
            let idx = self.alphabet.index_of(c)?;
            features[i] = idx as f32 / norm;
        }
        Some(features)
    }

    /// Encodes a batch of passwords, skipping any that cannot be encoded.
    /// Returns the encoded feature vectors and the indices (into the input)
    /// of the passwords that were kept.
    pub fn encode_batch(&self, passwords: &[String]) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut features = Vec::with_capacity(passwords.len());
        let mut kept = Vec::with_capacity(passwords.len());
        for (i, p) in passwords.iter().enumerate() {
            if let Some(f) = self.encode(p) {
                features.push(f);
                kept.push(i);
            }
        }
        (features, kept)
    }

    /// Decodes a continuous feature vector back into a password.
    ///
    /// Each component is scaled by the number of symbols and rounded to the
    /// nearest index; indices ≤ 0 decode to the padding symbol which
    /// terminates the password. Values are clamped into the valid range, so
    /// any real-valued vector (e.g. a flow sample) decodes to *some* string.
    ///
    /// # Panics
    ///
    /// Panics if `features.len() != max_len`.
    pub fn decode(&self, features: &[f32]) -> String {
        assert_eq!(
            features.len(),
            self.max_len,
            "feature vector length must equal max_len"
        );
        let norm = self.num_symbols() as f32;
        let max_index = self.alphabet.len() as i64;
        let mut out = String::with_capacity(self.max_len);
        for &v in features {
            let idx = (v * norm).round() as i64;
            let idx = idx.clamp(0, max_index) as usize;
            match self.alphabet.char_at(idx) {
                Some(c) => out.push(c),
                // Padding terminates the password: everything after the first
                // padding symbol is ignored, mirroring fixed-length training
                // where strings are right-padded.
                None => break,
            }
        }
        out
    }

    /// Decodes a batch of feature vectors.
    pub fn decode_batch(&self, features: &[Vec<f32>]) -> Vec<String> {
        features.iter().map(|f| self.decode(f)).collect()
    }

    /// The normalized value that represents a given character.
    ///
    /// Returns `None` if the character is outside the alphabet.
    pub fn value_of(&self, c: char) -> Option<f32> {
        self.alphabet
            .index_of(c)
            .map(|i| i as f32 / self.num_symbols() as f32)
    }

    /// Half the gap between two adjacent symbol values; perturbations smaller
    /// than this are guaranteed not to change the decoded character. Used to
    /// calibrate dequantization noise and data-space Gaussian smoothing.
    pub fn quantization_step(&self) -> f32 {
        0.5 / self.num_symbols() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let enc = PasswordEncoder::default();
        for pw in ["jimmy91", "123456", "iloveyou", "P@ss!", "a", "qwertyuiop"] {
            let features = enc.encode(pw).unwrap();
            assert_eq!(features.len(), 10);
            assert_eq!(enc.decode(&features), pw);
        }
    }

    #[test]
    fn encode_rejects_too_long_and_unknown_chars() {
        let enc = PasswordEncoder::default();
        assert!(enc.encode("elevenchars").is_none());
        assert!(enc.encode("contraseña").is_none());
        assert!(!enc.can_encode("elevenchars"));
        assert!(enc.can_encode("short"));
    }

    #[test]
    fn padding_fills_the_tail_with_zero() {
        let enc = PasswordEncoder::default();
        let features = enc.encode("abc").unwrap();
        assert!(features[..3].iter().all(|&v| v > 0.0));
        assert!(features[3..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn values_are_normalized_into_unit_interval() {
        let enc = PasswordEncoder::default();
        let features = enc.encode("zZ9?").unwrap();
        assert!(features.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn decode_is_robust_to_noise_below_quantization_step() {
        let enc = PasswordEncoder::default();
        let step = enc.quantization_step();
        let features = enc.encode("jimmy91").unwrap();
        let noisy: Vec<f32> = features
            .iter()
            .map(|&v| if v > 0.0 { v + 0.9 * step } else { v })
            .collect();
        assert_eq!(enc.decode(&noisy), "jimmy91");
    }

    #[test]
    fn decode_clamps_out_of_range_values() {
        let enc = PasswordEncoder::default();
        let mut features = vec![0.0f32; 10];
        features[0] = 5.0; // way above 1.0 — clamps to the last alphabet char
        features[1] = -3.0; // below zero — clamps to padding, terminating
        let decoded = enc.decode(&features);
        assert_eq!(decoded.chars().count(), 1);
    }

    #[test]
    fn decode_stops_at_first_padding() {
        let enc = PasswordEncoder::default();
        let a = enc.value_of('a').unwrap();
        let features = vec![a, 0.0, a, a, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(enc.decode(&features), "a");
    }

    #[test]
    fn encode_batch_skips_invalid_entries() {
        let enc = PasswordEncoder::default();
        let input = vec![
            "good1".to_string(),
            "waytoolongpassword".to_string(),
            "also_good".to_string(),
        ];
        let (features, kept) = enc.encode_batch(&input);
        assert_eq!(features.len(), 2);
        assert_eq!(kept, vec![0, 2]);
        let decoded = enc.decode_batch(&features);
        assert_eq!(decoded, vec!["good1".to_string(), "also_good".to_string()]);
    }

    #[test]
    fn custom_alphabet_and_length() {
        let alphabet = Alphabet::from_chars("abc123".chars());
        let enc = PasswordEncoder::new(alphabet, 4);
        assert_eq!(enc.max_len(), 4);
        assert_eq!(enc.num_symbols(), 7);
        let f = enc.encode("a1c").unwrap();
        assert_eq!(enc.decode(&f), "a1c");
        assert!(enc.encode("abcd1").is_none());
    }

    #[test]
    #[should_panic(expected = "max_len must be positive")]
    fn zero_max_len_rejected() {
        let _ = PasswordEncoder::new(Alphabet::default(), 0);
    }

    #[test]
    #[should_panic(expected = "feature vector length")]
    fn decode_rejects_wrong_length() {
        let enc = PasswordEncoder::default();
        let _ = enc.decode(&[0.0; 3]);
    }

    #[test]
    fn quantization_step_is_half_symbol_gap() {
        let enc = PasswordEncoder::default();
        let gap = 1.0 / enc.num_symbols() as f32;
        assert!((enc.quantization_step() - gap / 2.0).abs() < 1e-9);
    }
}
