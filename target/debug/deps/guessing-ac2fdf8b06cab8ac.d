/root/repo/target/debug/deps/guessing-ac2fdf8b06cab8ac.d: crates/bench/benches/guessing.rs Cargo.toml

/root/repo/target/debug/deps/libguessing-ac2fdf8b06cab8ac.rmeta: crates/bench/benches/guessing.rs Cargo.toml

crates/bench/benches/guessing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
