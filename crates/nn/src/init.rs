//! Weight initializers.
//!
//! The coupling networks in PassFlow are small residual MLPs; initialization
//! matters because a flow's scale network sits inside an `exp`, so weights
//! that are too large immediately blow up the log-determinant. The defaults
//! here match the common practice for RealNVP-style models: Xavier/He for the
//! hidden layers and near-zero for the final projection of the scale network.

use rand::Rng;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Appropriate for layers followed by `tanh` or `sigmoid` activations.
pub fn xavier_uniform<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(fan_in, fan_out, -a, a, rng)
}

/// He/Kaiming normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// Appropriate for layers followed by ReLU activations.
pub fn he_normal<R: Rng + ?Sized>(fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(fan_in, fan_out, rng).scale(std)
}

/// Normal initialization with the given standard deviation.
pub fn normal<R: Rng + ?Sized>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Tensor {
    Tensor::randn(rows, cols, rng).scale(std)
}

/// Near-zero initialization used for the output projection of scale networks
/// so a freshly constructed flow starts close to the identity map.
pub fn near_zero<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
    normal(rows, cols, 1e-3, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(9)
    }

    #[test]
    fn xavier_respects_bound() {
        let mut r = rng();
        let w = xavier_uniform(64, 64, &mut r);
        let bound = (6.0f32 / 128.0).sqrt();
        assert!(w.max() <= bound);
        assert!(w.min() >= -bound);
        assert_eq!(w.shape(), (64, 64));
    }

    #[test]
    fn he_normal_has_expected_scale() {
        let mut r = rng();
        let w = he_normal(100, 200, &mut r);
        let std = (w.square().mean() - w.mean() * w.mean()).sqrt();
        let expected = (2.0f32 / 100.0).sqrt();
        assert!(
            (std - expected).abs() < expected * 0.2,
            "std={std}, expected≈{expected}"
        );
    }

    #[test]
    fn near_zero_is_tiny() {
        let mut r = rng();
        let w = near_zero(10, 10, &mut r);
        assert!(w.abs().max() < 0.01);
    }

    #[test]
    fn normal_scales_std() {
        let mut r = rng();
        let w = normal(80, 80, 0.5, &mut r);
        let std = (w.square().mean() - w.mean() * w.mean()).sqrt();
        assert!((std - 0.5).abs() < 0.1, "std={std}");
    }
}
