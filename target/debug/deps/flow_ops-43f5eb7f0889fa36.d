/root/repo/target/debug/deps/flow_ops-43f5eb7f0889fa36.d: crates/bench/benches/flow_ops.rs

/root/repo/target/debug/deps/flow_ops-43f5eb7f0889fa36: crates/bench/benches/flow_ops.rs

crates/bench/benches/flow_ops.rs:
