//! Regenerates Table II: % of matched passwords per method and guess budget.

use passflow_bench::{emit, prepare, scale_from_env};
use passflow_eval::tables;

fn main() -> passflow_core::Result<()> {
    let workbench = prepare(scale_from_env())?;
    let table = tables::table2(&workbench)?;
    emit(&table, "table2");
    Ok(())
}
