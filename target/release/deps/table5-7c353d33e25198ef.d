/root/repo/target/release/deps/table5-7c353d33e25198ef.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-7c353d33e25198ef: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
