/root/repo/target/debug/deps/passflow_baselines-71bebae5fbcd5f89.d: crates/baselines/src/lib.rs crates/baselines/src/cwae.rs crates/baselines/src/gan.rs crates/baselines/src/guesser.rs crates/baselines/src/markov.rs crates/baselines/src/pcfg.rs

/root/repo/target/debug/deps/passflow_baselines-71bebae5fbcd5f89: crates/baselines/src/lib.rs crates/baselines/src/cwae.rs crates/baselines/src/gan.rs crates/baselines/src/guesser.rs crates/baselines/src/markov.rs crates/baselines/src/pcfg.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cwae.rs:
crates/baselines/src/gan.rs:
crates/baselines/src/guesser.rs:
crates/baselines/src/markov.rs:
crates/baselines/src/pcfg.rs:
