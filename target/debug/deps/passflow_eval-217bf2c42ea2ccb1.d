/root/repo/target/debug/deps/passflow_eval-217bf2c42ea2ccb1.d: crates/eval/src/lib.rs crates/eval/src/attack.rs crates/eval/src/figures.rs crates/eval/src/projection.rs crates/eval/src/report.rs crates/eval/src/scale.rs crates/eval/src/tables.rs

/root/repo/target/debug/deps/passflow_eval-217bf2c42ea2ccb1: crates/eval/src/lib.rs crates/eval/src/attack.rs crates/eval/src/figures.rs crates/eval/src/projection.rs crates/eval/src/report.rs crates/eval/src/scale.rs crates/eval/src/tables.rs

crates/eval/src/lib.rs:
crates/eval/src/attack.rs:
crates/eval/src/figures.rs:
crates/eval/src/projection.rs:
crates/eval/src/report.rs:
crates/eval/src/scale.rs:
crates/eval/src/tables.rs:
