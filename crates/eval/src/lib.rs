//! # passflow-eval
//!
//! The experiment harness of the PassFlow reproduction: drivers that
//! regenerate every table and figure of the paper's evaluation section on
//! the synthetic corpus, at a configurable [`EvalScale`].
//!
//! * [`Workbench`] prepares the shared state (corpus, split, trained flow),
//! * [`tables`] regenerates Tables I–VI,
//! * [`figures`] regenerates the data series behind Figures 2–5,
//! * [`projection`] provides the PCA / t-SNE used by Figure 2,
//! * [`attack::evaluate_guesser`] runs the guessing protocol for baselines,
//! * [`strength`] reports guess-number distributions and model agreement
//!   from the core strength-meter subsystem,
//! * [`report::Table`] renders results as aligned text or CSV.
//!
//! ## Example
//!
//! ```rust,no_run
//! use passflow_eval::{tables, EvalScale, Workbench};
//!
//! let workbench = Workbench::prepare(EvalScale::default_scale())?;
//! let table2 = tables::table2(&workbench)?;
//! println!("{table2}");
//! # Ok::<(), passflow_core::FlowError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attack;
pub mod figures;
pub mod projection;
pub mod report;
mod scale;
pub mod strength;
pub mod tables;

pub use report::Table;
pub use scale::{EvalScale, Workbench};
