/root/repo/target/release/deps/passflow_bench-c45872b426d6c926.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpassflow_bench-c45872b426d6c926.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpassflow_bench-c45872b426d6c926.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
