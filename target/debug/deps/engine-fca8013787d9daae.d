/root/repo/target/debug/deps/engine-fca8013787d9daae.d: tests/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-fca8013787d9daae.rmeta: tests/engine.rs Cargo.toml

tests/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
