/root/repo/target/debug/deps/all_experiments-469d8329c09ed7ac.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-469d8329c09ed7ac: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
