//! `PFATTACK v1` — the attack checkpoint artifact.
//!
//! A checkpoint captures everything a killed attack needs to continue as if
//! it had never stopped: the full knob configuration (validated knob-by-knob
//! on resume), digests of the target set and the guesser's weights, the
//! chunk-level progress cursor (per-chunk RNG streams are keyed by the chunk
//! index, so `chunks_done` *is* the RNG position), the dedup multiset as a
//! sorted [`GuessStreamWriter`] stream, the matched-latent mixture state of
//! Dynamic Sampling, and the report/match accounting accumulated so far.
//!
//! The contract (asserted by `tests/resume_attack.rs`): an attack killed at
//! any checkpoint and resumed produces the byte-identical
//! [`AttackOutcome`](super::AttackOutcome) — and the byte-identical
//! `PFGUESS v1` archive — as an uninterrupted run.
//!
//! ## Byte layout
//!
//! Little-endian throughout.
//!
//! ```text
//! [0..8)   magic  "PFATTACK"
//! [8..12)  version (1)
//! [12..16) reserved (0)
//! [16..N)  payload (sections below)
//! [N..N+8) FNV-1a checksum of the payload
//! ```
//!
//! Payload sections, in order: config knobs (budget, batch size, seed,
//! sync cadence, non-matched cap — u64 each), the strategy (tag byte plus
//! dynamic/smoothing parameters, f32s as raw bits), normalized checkpoint
//! budgets, target-set count + order-independent digest, guesser name +
//! optional weight digest, the progress cursor (`chunks_done`,
//! `guesses_made`, `next_checkpoint`), emitted reports, matched passwords in
//! match order, non-matched samples, matched latents (dim, rows as f32
//! bits, usage counts), and the dedup multiset (record count, byte length,
//! then a counts-bearing `PFGUESS` stream plus its running checksum).

use std::fs;
use std::io::Write;
use std::path::Path;

use passflow_store::{GuessStreamReader, GuessStreamWriter};

use crate::error::{FlowError, Result};
use crate::sample::{DynamicParams, GaussianSmoothing, GuessingStrategy, Penalization};

use super::attack::CheckpointReport;

const MAGIC: &[u8; 8] = b"PFATTACK";
const VERSION: u32 = 1;

/// FNV-1a offset basis (shared with the store crate's artifact checksums).
pub(crate) const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a running FNV-1a hash.
pub(crate) fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Order-independent digest of a target set: per-target FNV-1a hashes folded
/// with wrapping addition, so iteration order never matters.
pub(crate) fn target_set_digest<'a>(targets: impl Iterator<Item = &'a String>) -> u64 {
    targets.fold(0u64, |acc, t| {
        acc.wrapping_add(fnv1a(FNV_SEED, t.as_bytes()))
    })
}

/// Helper for I/O and format failures.
fn persist_err(msg: impl Into<String>) -> FlowError {
    FlowError::AttackPersistence(msg.into())
}

/// Everything a `PFATTACK v1` file persists, in memory.
pub(crate) struct CheckpointState {
    // --- configuration (validated knob-by-knob on resume) ---
    pub budget: u64,
    pub batch_size: u64,
    pub seed: u64,
    pub sync_every: u64,
    pub nonmatched_cap: u64,
    pub strategy: GuessingStrategy,
    /// Normalized checkpoint budgets (ascending, final budget last).
    pub checkpoints: Vec<u64>,
    pub target_count: u64,
    pub target_digest: u64,
    pub guesser_name: String,
    pub guesser_digest: Option<u64>,
    // --- progress cursor ---
    pub chunks_done: u64,
    pub guesses_made: u64,
    pub next_checkpoint: u64,
    pub reports: Vec<CheckpointReport>,
    // --- accounting ---
    pub matched_passwords: Vec<String>,
    pub nonmatched_samples: Vec<String>,
    /// Latent dimensionality of the matched points (0 when not tracked).
    pub latent_dim: u32,
    pub matched_points: Vec<Vec<f32>>,
    pub matched_usage: Vec<u32>,
    /// The dedup multiset: `(guess bytes, emission count)`, sorted by bytes.
    pub generated: Vec<(Vec<u8>, u64)>,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32_bits(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str16(&mut self, s: &str) {
        let len = u16::try_from(s.len()).expect("string fits in u16");
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn str32(&mut self, s: &str) {
        let len = u32::try_from(s.len()).expect("string fits in u32");
        self.u32(len);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| persist_err("checkpoint payload is truncated"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32_bits(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn f64_bits(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn str16(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        string_from(self.take(len)?)
    }
    fn str32(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        string_from(self.take(len)?)
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn string_from(bytes: &[u8]) -> Result<String> {
    String::from_utf8(bytes.to_vec()).map_err(|_| persist_err("checkpoint contains invalid UTF-8"))
}

fn encode_strategy(enc: &mut Enc, strategy: &GuessingStrategy) {
    let dynamic = |enc: &mut Enc, p: &DynamicParams| {
        enc.u64(p.alpha as u64);
        enc.f32_bits(p.sigma);
        match p.penalization {
            Penalization::Step { gamma } => {
                enc.u8(0);
                enc.u32(gamma);
            }
            Penalization::None => {
                enc.u8(1);
                enc.u32(0);
            }
        }
    };
    match strategy {
        GuessingStrategy::Static => enc.u8(0),
        GuessingStrategy::Dynamic(p) => {
            enc.u8(1);
            dynamic(enc, p);
        }
        GuessingStrategy::DynamicWithSmoothing { params, smoothing } => {
            enc.u8(2);
            dynamic(enc, params);
            enc.f32_bits(smoothing.sigma);
            enc.u64(smoothing.max_attempts as u64);
        }
    }
}

fn decode_strategy(dec: &mut Dec<'_>) -> Result<GuessingStrategy> {
    let dynamic = |dec: &mut Dec<'_>| -> Result<DynamicParams> {
        let alpha = dec.u64()? as usize;
        let sigma = dec.f32_bits()?;
        let penalization = match dec.u8()? {
            0 => Penalization::Step { gamma: dec.u32()? },
            1 => {
                let _ = dec.u32()?;
                Penalization::None
            }
            tag => return Err(persist_err(format!("unknown penalization tag {tag}"))),
        };
        // `<=` alone would wave NaN bits through; demand a real positive.
        if sigma.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(persist_err("dynamic sigma is not positive"));
        }
        Ok(DynamicParams {
            alpha,
            sigma,
            penalization,
        })
    };
    match dec.u8()? {
        0 => Ok(GuessingStrategy::Static),
        1 => Ok(GuessingStrategy::Dynamic(dynamic(dec)?)),
        2 => {
            let params = dynamic(dec)?;
            let sigma = dec.f32_bits()?;
            let max_attempts = dec.u64()? as usize;
            if sigma.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || max_attempts == 0 {
                return Err(persist_err("smoothing parameters are invalid"));
            }
            Ok(GuessingStrategy::DynamicWithSmoothing {
                params,
                smoothing: GaussianSmoothing {
                    sigma,
                    max_attempts,
                },
            })
        }
        tag => Err(persist_err(format!("unknown strategy tag {tag}"))),
    }
}

// ---------------------------------------------------------------------------
// Save / load
// ---------------------------------------------------------------------------

/// Writes `state` to `path` atomically (a `.tmp` sibling is renamed into
/// place, so readers never observe a half-written checkpoint).
pub(crate) fn save(state: &CheckpointState, path: &Path) -> Result<()> {
    let mut enc = Enc { buf: Vec::new() };

    // Section 1: config knobs.
    enc.u64(state.budget);
    enc.u64(state.batch_size);
    enc.u64(state.seed);
    enc.u64(state.sync_every);
    enc.u64(state.nonmatched_cap);
    encode_strategy(&mut enc, &state.strategy);
    enc.u32(u32::try_from(state.checkpoints.len()).expect("checkpoint list fits in u32"));
    for &cp in &state.checkpoints {
        enc.u64(cp);
    }
    enc.u64(state.target_count);
    enc.u64(state.target_digest);
    enc.str16(&state.guesser_name);
    match state.guesser_digest {
        Some(digest) => {
            enc.u8(1);
            enc.u64(digest);
        }
        None => {
            enc.u8(0);
            enc.u64(0);
        }
    }

    // Section 2: progress cursor + reports.
    enc.u64(state.chunks_done);
    enc.u64(state.guesses_made);
    enc.u64(state.next_checkpoint);
    enc.u32(u32::try_from(state.reports.len()).expect("report list fits in u32"));
    for report in &state.reports {
        enc.u64(report.guesses);
        enc.u64(report.unique);
        enc.u64(report.matched);
        enc.f64_bits(report.matched_percent);
    }

    // Section 3: match accounting.
    enc.u64(state.matched_passwords.len() as u64);
    for p in &state.matched_passwords {
        enc.str32(p);
    }
    enc.u64(state.nonmatched_samples.len() as u64);
    for p in &state.nonmatched_samples {
        enc.str32(p);
    }

    // Section 4: matched latents (the Dynamic Sampling mixture state).
    enc.u32(state.latent_dim);
    enc.u64(state.matched_points.len() as u64);
    for point in &state.matched_points {
        debug_assert_eq!(point.len(), state.latent_dim as usize);
        for &v in point {
            enc.f32_bits(v);
        }
    }
    for &usage in &state.matched_usage {
        enc.u32(usage);
    }

    // Section 5: the dedup multiset as a sorted PFGUESS stream.
    debug_assert!(state.generated.windows(2).all(|w| w[0].0 < w[1].0));
    let mut stream = Vec::new();
    let mut writer = GuessStreamWriter::new(&mut stream, true);
    for (guess, count) in &state.generated {
        writer
            .push(guess, *count)
            .map_err(|e| persist_err(format!("encoding dedup set: {e}")))?;
    }
    let stream_checksum = writer.checksum();
    drop(writer);
    enc.u64(state.generated.len() as u64);
    enc.u64(stream.len() as u64);
    enc.buf.extend_from_slice(&stream);
    enc.u64(stream_checksum);

    // Preamble + payload + trailing checksum, written atomically.
    let payload = enc.buf;
    let mut file_bytes = Vec::with_capacity(payload.len() + 24);
    file_bytes.extend_from_slice(MAGIC);
    file_bytes.extend_from_slice(&VERSION.to_le_bytes());
    file_bytes.extend_from_slice(&0u32.to_le_bytes());
    file_bytes.extend_from_slice(&payload);
    file_bytes.extend_from_slice(&fnv1a(FNV_SEED, &payload).to_le_bytes());

    let mut tmp_os = path.to_path_buf().into_os_string();
    tmp_os.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_os);
    let write = |p: &Path| -> std::io::Result<()> {
        let mut f = fs::File::create(p)?;
        f.write_all(&file_bytes)?;
        f.sync_all()
    };
    write(&tmp).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        persist_err(format!("writing checkpoint {tmp:?}: {e}"))
    })?;
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        persist_err(format!("renaming checkpoint into {path:?}: {e}"))
    })
}

/// Reads and fully validates a `PFATTACK v1` file (magic, version, payload
/// checksum, section layout, dedup-stream checksum).
pub(crate) fn load(path: &Path) -> Result<CheckpointState> {
    let bytes =
        fs::read(path).map_err(|e| persist_err(format!("reading checkpoint {path:?}: {e}")))?;
    if bytes.len() < 24 {
        return Err(persist_err("checkpoint is shorter than its preamble"));
    }
    if &bytes[0..8] != MAGIC {
        return Err(persist_err("bad magic: not a PFATTACK file"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(persist_err(format!(
            "unsupported PFATTACK version {version} (supported: {VERSION})"
        )));
    }
    let payload = &bytes[16..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    let computed = fnv1a(FNV_SEED, payload);
    if stored != computed {
        return Err(persist_err(format!(
            "payload checksum mismatch: stored {stored:016x}, computed {computed:016x}"
        )));
    }

    let mut dec = Dec {
        buf: payload,
        pos: 0,
    };

    let budget = dec.u64()?;
    let batch_size = dec.u64()?;
    let seed = dec.u64()?;
    let sync_every = dec.u64()?;
    let nonmatched_cap = dec.u64()?;
    let strategy = decode_strategy(&mut dec)?;
    let n_checkpoints = dec.u32()? as usize;
    let mut checkpoints = Vec::with_capacity(n_checkpoints.min(1 << 16));
    for _ in 0..n_checkpoints {
        checkpoints.push(dec.u64()?);
    }
    let target_count = dec.u64()?;
    let target_digest = dec.u64()?;
    let guesser_name = dec.str16()?;
    let guesser_digest = match dec.u8()? {
        0 => {
            let _ = dec.u64()?;
            None
        }
        1 => Some(dec.u64()?),
        tag => return Err(persist_err(format!("unknown guesser-digest flag {tag}"))),
    };

    let chunks_done = dec.u64()?;
    let guesses_made = dec.u64()?;
    let next_checkpoint = dec.u64()?;
    let n_reports = dec.u32()? as usize;
    let mut reports = Vec::with_capacity(n_reports.min(1 << 16));
    for _ in 0..n_reports {
        reports.push(CheckpointReport {
            guesses: dec.u64()?,
            unique: dec.u64()?,
            matched: dec.u64()?,
            matched_percent: dec.f64_bits()?,
        });
    }

    let n_matched = dec.u64()? as usize;
    let mut matched_passwords = Vec::with_capacity(n_matched.min(1 << 16));
    for _ in 0..n_matched {
        matched_passwords.push(dec.str32()?);
    }
    let n_nonmatched = dec.u64()? as usize;
    let mut nonmatched_samples = Vec::with_capacity(n_nonmatched.min(1 << 16));
    for _ in 0..n_nonmatched {
        nonmatched_samples.push(dec.str32()?);
    }

    let latent_dim = dec.u32()?;
    let n_points = dec.u64()? as usize;
    let mut matched_points = Vec::with_capacity(n_points.min(1 << 16));
    for _ in 0..n_points {
        let mut point = Vec::with_capacity(latent_dim as usize);
        for _ in 0..latent_dim {
            point.push(dec.f32_bits()?);
        }
        matched_points.push(point);
    }
    let mut matched_usage = Vec::with_capacity(n_points.min(1 << 16));
    for _ in 0..n_points {
        matched_usage.push(dec.u32()?);
    }

    let record_count = dec.u64()?;
    let stream_len = dec.u64()? as usize;
    let stream = dec.take(stream_len)?;
    let stored_stream_checksum = dec.u64()?;
    if !dec.done() {
        return Err(persist_err("trailing bytes after the dedup section"));
    }
    let mut reader = GuessStreamReader::new(stream, true);
    let mut generated = Vec::with_capacity((record_count as usize).min(1 << 20));
    while let Some((guess, count)) = reader
        .next_guess()
        .map_err(|e| persist_err(format!("decoding dedup set: {e}")))?
    {
        generated.push((guess, count));
    }
    if reader.records() != record_count {
        return Err(persist_err(format!(
            "dedup set has {} records, header claims {record_count}",
            reader.records()
        )));
    }
    if reader.checksum() != stored_stream_checksum {
        return Err(persist_err("dedup-stream checksum mismatch"));
    }

    Ok(CheckpointState {
        budget,
        batch_size,
        seed,
        sync_every,
        nonmatched_cap,
        strategy,
        checkpoints,
        target_count,
        target_digest,
        guesser_name,
        guesser_digest,
        chunks_done,
        guesses_made,
        next_checkpoint,
        reports,
        matched_passwords,
        nonmatched_samples,
        latent_dim,
        matched_points,
        matched_usage,
        generated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> CheckpointState {
        CheckpointState {
            budget: 10_000,
            batch_size: 128,
            seed: 7,
            sync_every: 4,
            nonmatched_cap: 40,
            strategy: GuessingStrategy::DynamicWithSmoothing {
                params: DynamicParams::new(5, 0.12, 2),
                smoothing: GaussianSmoothing::default(),
            },
            checkpoints: vec![1_000, 5_000, 10_000],
            target_count: 3,
            target_digest: 0xdead_beef,
            guesser_name: "PassFlow".to_string(),
            guesser_digest: Some(42),
            chunks_done: 8,
            guesses_made: 1_024,
            next_checkpoint: 1,
            reports: vec![CheckpointReport {
                guesses: 1_000,
                unique: 900,
                matched: 2,
                matched_percent: 66.666,
            }],
            matched_passwords: vec!["hunter2".into(), "123456".into()],
            nonmatched_samples: vec!["zzz".into()],
            latent_dim: 2,
            matched_points: vec![vec![0.5, -0.5], vec![1.0, 2.0]],
            matched_usage: vec![3, 0],
            generated: vec![
                (b"123456".to_vec(), 1),
                (b"hunter2".to_vec(), 4),
                (b"zzz".to_vec(), 2),
            ],
        }
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("pfattack-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn round_trips_every_section() {
        let state = sample_state();
        let path = scratch("roundtrip.pfa");
        save(&state, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.budget, state.budget);
        assert_eq!(loaded.batch_size, state.batch_size);
        assert_eq!(loaded.seed, state.seed);
        assert_eq!(loaded.sync_every, state.sync_every);
        assert_eq!(loaded.nonmatched_cap, state.nonmatched_cap);
        assert_eq!(loaded.strategy, state.strategy);
        assert_eq!(loaded.checkpoints, state.checkpoints);
        assert_eq!(loaded.target_count, state.target_count);
        assert_eq!(loaded.target_digest, state.target_digest);
        assert_eq!(loaded.guesser_name, state.guesser_name);
        assert_eq!(loaded.guesser_digest, state.guesser_digest);
        assert_eq!(loaded.chunks_done, state.chunks_done);
        assert_eq!(loaded.guesses_made, state.guesses_made);
        assert_eq!(loaded.next_checkpoint, state.next_checkpoint);
        assert_eq!(loaded.reports, state.reports);
        assert_eq!(loaded.matched_passwords, state.matched_passwords);
        assert_eq!(loaded.nonmatched_samples, state.nonmatched_samples);
        assert_eq!(loaded.latent_dim, state.latent_dim);
        assert_eq!(loaded.matched_points, state.matched_points);
        assert_eq!(loaded.matched_usage, state.matched_usage);
        assert_eq!(loaded.generated, state.generated);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_is_a_typed_persistence_error() {
        let state = sample_state();
        let path = scratch("corrupt.pfa");
        save(&state, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();

        // Flip a payload byte: checksum must catch it.
        bytes[30] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load(&path),
            Err(FlowError::AttackPersistence(msg)) if msg.contains("checksum")
        ));

        // Truncate mid-payload.
        bytes[30] ^= 0xff;
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(FlowError::AttackPersistence(_))));

        // Wrong magic.
        std::fs::write(&path, b"NOTATALLPFATTACKDATA....").unwrap();
        assert!(matches!(
            load(&path),
            Err(FlowError::AttackPersistence(msg)) if msg.contains("magic")
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn target_digest_is_order_independent() {
        let a = ["alpha".to_string(), "beta".to_string()];
        let b = ["beta".to_string(), "alpha".to_string()];
        assert_eq!(target_set_digest(a.iter()), target_set_digest(b.iter()));
        let c = ["alpha".to_string()];
        assert_ne!(target_set_digest(a.iter()), target_set_digest(c.iter()));
    }
}
