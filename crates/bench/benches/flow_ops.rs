//! Micro-benchmarks of the flow's core operations: encoding, the forward and
//! inverse passes, exact log-probability computation and static sampling.
//! These are the primitives every experiment in the paper is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use passflow_core::{FlowConfig, FlowWorkspace, PassFlow};
use passflow_nn::rng as nnrng;
use passflow_nn::Tensor;
use passflow_passwords::{CorpusConfig, SyntheticCorpusGenerator};

fn make_flow(config: FlowConfig) -> PassFlow {
    let mut rng = nnrng::seeded(11);
    PassFlow::new(config, &mut rng).expect("valid config")
}

fn password_batch(n: usize) -> Vec<String> {
    SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(n))
        .generate(13)
        .into_passwords()
}

fn bench_encode(c: &mut Criterion) {
    let flow = make_flow(FlowConfig::tiny());
    let passwords = password_batch(1024);
    let mut group = c.benchmark_group("encode");
    group.throughput(Throughput::Elements(passwords.len() as u64));
    group.bench_function("encode_batch_1024", |b| {
        b.iter(|| flow.encode_batch(&passwords).unwrap())
    });
    group.finish();
}

fn bench_forward_inverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_pass");
    for (label, config) in [
        ("tiny_4x16", FlowConfig::tiny()),
        (
            "eval_6x48",
            FlowConfig::evaluation()
                .with_coupling_layers(6)
                .with_hidden_size(48),
        ),
    ] {
        let flow = make_flow(config);
        let passwords = password_batch(256);
        let x = flow.encode_batch(&passwords).unwrap();
        let mut rng = nnrng::seeded(3);
        let z = flow.sample_latent(256, &mut rng);

        group.throughput(Throughput::Elements(256));
        group.bench_with_input(BenchmarkId::new("forward_256", label), &x, |b, x| {
            b.iter(|| flow.forward(x))
        });
        group.bench_with_input(BenchmarkId::new("inverse_256", label), &z, |b, z| {
            b.iter(|| flow.inverse(z))
        });
        // Steady-state fast path: snapshot exported once, workspace and
        // output buffers reused — zero allocation per iteration.
        group.bench_with_input(BenchmarkId::new("inverse_into_256", label), &z, |b, z| {
            let snapshot = flow.snapshot();
            let mut ws = FlowWorkspace::new();
            let mut out = Tensor::default();
            b.iter(|| {
                snapshot.inverse_into(z, &mut ws, &mut out);
                out.get(0, 0)
            })
        });
        group.bench_with_input(BenchmarkId::new("log_prob_256", label), &x, |b, x| {
            b.iter(|| flow.log_prob(x))
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let flow = make_flow(FlowConfig::tiny());
    let mut group = c.benchmark_group("sampling");
    group.throughput(Throughput::Elements(512));
    group.bench_function("static_sample_512", |b| {
        let mut rng = nnrng::seeded(5);
        b.iter(|| flow.sample_passwords(512, &mut rng))
    });
    group.bench_function("sample_near_pivot_512", |b| {
        let mut rng = nnrng::seeded(6);
        b.iter(|| flow.sample_near("jimmy91", 0.12, 512, &mut rng).unwrap())
    });
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let flow = make_flow(FlowConfig::tiny());
    let passwords = password_batch(256);
    let batch = flow.encode_batch(&passwords).unwrap();
    let mut group = c.benchmark_group("training");
    group.sample_size(20);
    group.bench_function("nll_loss_backward_256", |b| {
        b.iter(|| {
            let tape = passflow_nn::Tape::new();
            let loss = flow.nll_loss(&tape, &batch);
            loss.backward();
            for p in flow.parameters() {
                p.zero_grad();
            }
            loss.value()
        })
    });
    group.finish();
}

fn bench_tensor_matmul(c: &mut Criterion) {
    let mut rng = nnrng::seeded(9);
    let a = Tensor::randn(256, 64, &mut rng);
    let b_mat = Tensor::randn(64, 64, &mut rng);
    let mut group = c.benchmark_group("tensor");
    group.throughput(Throughput::Elements((256 * 64 * 64) as u64));
    group.bench_function("matmul_256x64x64", |bench| bench.iter(|| a.matmul(&b_mat)));
    group.finish();

    // Square size sweep over the register-blocked GEMM (the coupling
    // networks sit at the low end; the sweep tracks how the kernel scales
    // toward cache-resident and cache-spilling shapes).
    let mut group = c.benchmark_group("matmul_sweep");
    for size in [64usize, 128, 256, 512] {
        let a = Tensor::randn(size, size, &mut rng);
        let b_mat = Tensor::randn(size, size, &mut rng);
        group.throughput(Throughput::Elements((size * size * size) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            let mut out = Tensor::default();
            bench.iter(|| {
                passflow_nn::kernels::matmul_into(&a, &b_mat, &mut out);
                out.get(0, 0)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_forward_inverse,
    bench_sampling,
    bench_training_step,
    bench_tensor_matmul
);
criterion_main!(benches);
