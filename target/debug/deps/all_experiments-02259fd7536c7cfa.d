/root/repo/target/debug/deps/all_experiments-02259fd7536c7cfa.d: crates/bench/src/bin/all_experiments.rs

/root/repo/target/debug/deps/all_experiments-02259fd7536c7cfa: crates/bench/src/bin/all_experiments.rs

crates/bench/src/bin/all_experiments.rs:
