/root/repo/target/debug/deps/table3-b9ef32694489aa67.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-b9ef32694489aa67: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
