/root/repo/target/release/deps/figure4-508b36f2e9a1b850.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-508b36f2e9a1b850: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
