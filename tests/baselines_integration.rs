//! Integration tests for the baseline guessers, exercised through the same
//! evaluation protocol as the paper's Tables II and III.

use std::sync::OnceLock;

use passflow::baselines::{Cwae, CwaeConfig, MarkovModel, PassGan, PassGanConfig, PcfgModel};
use passflow::nn::rng as nnrng;
use passflow::passwords::CorpusSplit;
use passflow::Attack;
use passflow::{CorpusConfig, PasswordEncoder, SyntheticCorpusGenerator};

fn split() -> &'static CorpusSplit {
    static SPLIT: OnceLock<CorpusSplit> = OnceLock::new();
    SPLIT.get_or_init(|| {
        SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(10_000))
            .generate(303)
            .paper_split(0.8, 3_000, 303)
    })
}

#[test]
fn markov_and_pcfg_beat_random_guessing() {
    let split = split();
    let targets = split.test_set();
    let budgets = [4_000u64];

    let markov = MarkovModel::train(&split.train, 3, 10);
    let pcfg = PcfgModel::train(&split.train, 10);
    let evaluate = |guesser: &dyn passflow::Guesser| {
        Attack::new(&targets)
            .budget(budgets[0])
            .batch_size(512)
            .seed(1)
            .run(guesser)
            .unwrap()
    };
    let markov_outcome = evaluate(&markov);
    let pcfg_outcome = evaluate(&pcfg);
    let markov_report = markov_outcome.final_report();
    let pcfg_report = pcfg_outcome.final_report();

    // A structure-aware guesser must land some matches on a corpus this
    // skewed; uniform-random strings essentially never would.
    assert!(markov_report.matched > 0, "Markov matched nothing");
    assert!(pcfg_report.matched > 0, "PCFG matched nothing");
    assert!(markov_report.unique <= markov_report.guesses);
    assert!(pcfg_report.unique <= pcfg_report.guesses);
}

#[test]
fn neural_baselines_train_and_produce_reportable_results() {
    let split = split();
    let targets = split.test_set();
    let budgets = [1_000u64, 3_000];
    let encoder = PasswordEncoder::default();

    let gan = PassGan::train(
        &split.train,
        encoder.clone(),
        PassGanConfig::tiny().with_iterations(40),
    );
    let cwae = Cwae::train(&split.train, encoder, CwaeConfig::tiny().with_epochs(3));

    let evaluate = |guesser: &dyn passflow::Guesser| {
        Attack::new(&targets)
            .budget(3_000)
            .batch_size(512)
            .checkpoints(budgets.to_vec())
            .seed(2)
            .run(guesser)
            .unwrap()
            .checkpoints
    };
    for reports in [evaluate(&gan), evaluate(&cwae)] {
        assert_eq!(reports.len(), 2);
        assert!(reports[1].unique >= reports[0].unique);
        assert!(reports[1].matched >= reports[0].matched);
        assert!(reports[1].unique <= 3_000);
    }
}

#[test]
fn pcfg_outperforms_markov_of_order_one_on_structured_corpora() {
    // Order-1 Markov loses all positional structure, while the PCFG keeps
    // whole terminals; on a word+digits corpus the PCFG should match at
    // least as many test passwords.
    let split = split();
    let targets = split.test_set();
    let budgets = [5_000u64];
    let markov1 = MarkovModel::train(&split.train, 1, 10);
    let pcfg = PcfgModel::train(&split.train, 10);
    let evaluate = |guesser: &dyn passflow::Guesser| {
        Attack::new(&targets)
            .budget(budgets[0])
            .batch_size(512)
            .seed(3)
            .run(guesser)
            .unwrap()
            .final_report()
            .matched
    };
    let markov_matched = evaluate(&markov1);
    let pcfg_matched = evaluate(&pcfg);
    assert!(
        pcfg_matched >= markov_matched,
        "PCFG {pcfg_matched} vs order-1 Markov {markov_matched}"
    );
}

#[test]
#[allow(deprecated)]
fn baseline_generation_is_reproducible_through_the_legacy_trait() {
    let split = split();
    let markov = MarkovModel::train(&split.train, 2, 10);
    // The deprecated trait is provided automatically for every Guesser.
    use passflow::baselines::PasswordGuesser;
    use passflow::Guesser;
    let a = markov.generate(100, &mut nnrng::seeded(4));
    let b = markov.generate(100, &mut nnrng::seeded(4));
    assert_eq!(a, b);
    assert_eq!(a, markov.generate_batch(100, &mut nnrng::seeded(4)));
}
