//! A hash-sharded counted string set used for guess deduplication.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher};

/// Number of internal shards. A power of two so the shard index is a mask.
const NUM_SHARDS: usize = 16;

/// A multiset of generated guesses, split into `NUM_SHARDS` (16) independent
/// hash maps keyed by the guess's hash. Each distinct guess carries the
/// number of times the attack emitted it, which is what `PFGUESS v1` guess
/// archives persist.
///
/// The guessing attack inserts hundreds of millions of strings into this set
/// at paper scale; sharding keeps rehash pauses short (each shard rehashes
/// independently at 1/16 of the size) and gives shard-local membership
/// queries an embarrassingly parallel layout for the engine's worker
/// threads, which only ever read the set while generation is in flight.
///
/// Shard selection is deterministic (a fixed-seed SipHash of the string), so
/// unique counts never depend on thread scheduling.
#[derive(Clone, Debug, Default)]
pub struct ShardedSet {
    shards: Vec<HashMap<String, u64>>,
    hasher: BuildHasherDefault<DefaultHasher>,
}

impl ShardedSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ShardedSet {
            shards: (0..NUM_SHARDS).map(|_| HashMap::new()).collect(),
            hasher: BuildHasherDefault::default(),
        }
    }

    fn shard_of(&self, value: &str) -> usize {
        (self.hasher.hash_one(value) as usize) & (NUM_SHARDS - 1)
    }

    /// Inserts `value`, returning `true` if it was not present before. A
    /// repeated insert bumps the emission count instead of growing the set.
    pub fn insert(&mut self, value: String) -> bool {
        let shard = self.shard_of(&value);
        match self.shards[shard].entry(value) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                *e.get_mut() = e.get().saturating_add(1);
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(1);
                true
            }
        }
    }

    /// Restores a guess with an explicit emission count (checkpoint resume).
    /// Counts for an already-present guess accumulate.
    pub fn insert_with_count(&mut self, value: String, count: u64) {
        let shard = self.shard_of(&value);
        let slot = self.shards[shard].entry(value).or_insert(0);
        *slot = slot.saturating_add(count.max(1));
    }

    /// Bumps the count of an already-present guess without allocating,
    /// returning `true` when the guess was present (the fast dedup path).
    pub fn increment(&mut self, value: &str) -> bool {
        let shard = self.shard_of(value);
        match self.shards[shard].get_mut(value) {
            Some(count) => {
                *count = count.saturating_add(1);
                true
            }
            None => false,
        }
    }

    /// Returns `true` if `value` is in the set.
    pub fn contains(&self, value: &str) -> bool {
        self.shards[self.shard_of(value)].contains_key(value)
    }

    /// How many times `value` has been emitted, or 0 when absent.
    pub fn count_of(&self, value: &str) -> u64 {
        self.shards[self.shard_of(value)]
            .get(value)
            .copied()
            .unwrap_or(0)
    }

    /// Total number of distinct values across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// Returns `true` if the set holds no values.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HashMap::is_empty)
    }

    /// Iterates over all values, shard by shard (no particular order).
    pub fn iter(&self) -> impl Iterator<Item = &String> {
        self.shards.iter().flat_map(HashMap::keys)
    }

    /// Iterates over `(value, emission count)` pairs (no particular order).
    pub fn iter_counted(&self) -> impl Iterator<Item = (&String, u64)> {
        self.shards
            .iter()
            .flat_map(HashMap::iter)
            .map(|(k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len_round_trip() {
        let mut set = ShardedSet::new();
        assert!(set.is_empty());
        assert!(set.insert("123456".to_string()));
        assert!(!set.insert("123456".to_string()));
        assert!(set.insert("hunter2".to_string()));
        assert!(set.contains("123456"));
        assert!(!set.contains("letmein"));
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn counts_track_repeated_emissions() {
        let mut set = ShardedSet::new();
        assert_eq!(set.count_of("123456"), 0);
        assert!(
            !set.increment("123456"),
            "bumping an absent guess is a no-op"
        );
        set.insert("123456".to_string());
        set.insert("123456".to_string());
        assert!(set.increment("123456"));
        assert_eq!(set.count_of("123456"), 3);
        set.insert_with_count("hunter2".to_string(), 5);
        set.insert_with_count("hunter2".to_string(), 2);
        assert_eq!(set.count_of("hunter2"), 7);
        let mut counted: Vec<(String, u64)> =
            set.iter_counted().map(|(k, v)| (k.clone(), v)).collect();
        counted.sort();
        assert_eq!(
            counted,
            vec![("123456".to_string(), 3), ("hunter2".to_string(), 7)]
        );
    }

    #[test]
    fn values_spread_across_shards() {
        let mut set = ShardedSet::new();
        for i in 0..10_000 {
            set.insert(format!("password{i}"));
        }
        assert_eq!(set.len(), 10_000);
        let occupied = set.shards.iter().filter(|s| !s.is_empty()).count();
        assert_eq!(occupied, NUM_SHARDS, "hashing should reach every shard");
        // No shard hogs the distribution (a loose balance bound).
        let max = set.shards.iter().map(HashMap::len).max().unwrap();
        assert!(max < 2 * 10_000 / NUM_SHARDS, "worst shard holds {max}");
    }

    #[test]
    fn iter_yields_every_value_once() {
        let mut set = ShardedSet::new();
        for i in 0..100 {
            set.insert(i.to_string());
        }
        let mut values: Vec<u32> = set.iter().map(|v| v.parse().unwrap()).collect();
        values.sort_unstable();
        assert_eq!(values, (0..100).collect::<Vec<_>>());
    }
}
