/root/repo/target/debug/deps/baselines_integration-67d59b019cbee2b5.d: tests/baselines_integration.rs

/root/repo/target/debug/deps/baselines_integration-67d59b019cbee2b5: tests/baselines_integration.rs

tests/baselines_integration.rs:
