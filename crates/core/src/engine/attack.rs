//! The [`Attack`] builder and the [`AttackEngine`] executing it.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

use passflow_nn::rng as nnrng;
use passflow_nn::Tensor;
use rand::RngCore;

use passflow_store::{GuessArchiveWriter, GuessConfig};

use crate::error::{FlowError, Result};
use crate::prior::{GaussianMixturePrior, StandardGaussianPrior};
use crate::sample::{GaussianSmoothing, GuessingStrategy, MatchedLatents};

use super::checkpoint::{self, CheckpointState};
use super::guesser::{
    GuessSession, Guesser, LatentGuesser, LatentSession, StatelessLatentSession, StatelessSession,
};
use super::sharded::ShardedSet;

/// The streaming checkpoint callback an [`Attack`] can register.
type Observer<'a> = Box<dyn FnMut(&CheckpointReport) + 'a>;

/// Guessing statistics at a given budget.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointReport {
    /// Number of guesses generated so far.
    pub guesses: u64,
    /// Number of distinct guesses generated so far (Table III "Unique").
    pub unique: u64,
    /// Number of distinct test-set passwords matched so far
    /// (Table III "Matched").
    pub matched: u64,
    /// Matched passwords as a percentage of the test set (Table II).
    pub matched_percent: f64,
}

/// The outcome of a full guessing attack.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// Strategy label (e.g. "PassFlow-Dynamic+GS").
    pub strategy: String,
    /// Reports at each requested checkpoint (ascending budget). The last
    /// entry corresponds to the full budget.
    pub checkpoints: Vec<CheckpointReport>,
    /// The matched test-set passwords, in match order.
    pub matched_passwords: Vec<String>,
    /// A sample of generated guesses that did not match (Table IV).
    pub nonmatched_samples: Vec<String>,
}

impl AttackOutcome {
    /// The report at the full budget.
    ///
    /// # Panics
    ///
    /// Panics if the outcome contains no checkpoints (cannot happen for
    /// outcomes produced by the engine with a positive budget).
    pub fn final_report(&self) -> &CheckpointReport {
        self.checkpoints.last().expect("at least one checkpoint")
    }

    /// The report at the given budget, if that budget was a checkpoint.
    ///
    /// Budgets beyond the final report resolve to the final entry: requested
    /// checkpoints past the attack budget are clamped to the budget when the
    /// attack is planned (see [`Attack::checkpoints`]), so the final report
    /// *is* the answer for any `guesses >= budget`.
    pub fn at_budget(&self, guesses: u64) -> Option<&CheckpointReport> {
        self.checkpoints
            .iter()
            .find(|c| c.guesses == guesses)
            .or_else(|| {
                self.checkpoints
                    .last()
                    .filter(|last| guesses > last.guesses)
            })
    }
}

/// Builder for a guessing attack against a set of target passwords.
///
/// One `Attack` drives *every* guessing experiment in the reproduction: the
/// flow under any of the paper's three strategies (through
/// [`LatentGuesser`]) and the baselines (through plain [`Guesser`]).
///
/// ```rust,no_run
/// # use std::collections::HashSet;
/// # use passflow_core::{Attack, GuessingStrategy, PassFlow, FlowConfig};
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// # let guesser = PassFlow::new(FlowConfig::tiny(), &mut rng)?;
/// # let targets: HashSet<String> = HashSet::new();
/// let outcome = Attack::new(&targets)
///     .budget(10_000_000)
///     .checkpoints(vec![10_000, 100_000, 1_000_000])
///     .strategy(GuessingStrategy::paper_default(10_000_000))
///     .observer(|report| println!("{report:?}"))
///     .shards(8)
///     .run(&guesser)?;
/// # Ok::<(), passflow_core::FlowError>(())
/// ```
pub struct Attack<'a> {
    targets: &'a HashSet<String>,
    budget: u64,
    batch_size: usize,
    strategy: GuessingStrategy,
    checkpoints: Vec<u64>,
    seed: u64,
    shards: usize,
    sync_every: usize,
    nonmatched_sample_size: usize,
    observer: Option<Observer<'a>>,
    checkpoint_every: u64,
    checkpoint_path: Option<PathBuf>,
    resume_from: Option<PathBuf>,
    halt_after: Option<u64>,
    archive_path: Option<PathBuf>,
}

impl<'a> Attack<'a> {
    /// Starts building an attack against `targets` (the cleaned, unique
    /// test set Ω; match percentages are relative to `targets.len()`).
    ///
    /// Defaults: a 10 000-guess budget, batches of 1 024, static sampling,
    /// no intermediate checkpoints, seed 0, one shard, per-batch dynamic
    /// feedback, and up to 40 retained non-matched samples.
    pub fn new(targets: &'a HashSet<String>) -> Self {
        Attack {
            targets,
            budget: 10_000,
            batch_size: 1_024,
            strategy: GuessingStrategy::Static,
            checkpoints: Vec::new(),
            seed: 0,
            shards: 1,
            sync_every: 1,
            nonmatched_sample_size: 40,
            observer: None,
            checkpoint_every: 0,
            checkpoint_path: None,
            resume_from: None,
            halt_after: None,
            archive_path: None,
        }
    }

    /// Sets the total number of guesses to generate.
    #[must_use]
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Sets how many guesses are generated per batch (one work chunk).
    #[must_use]
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Sets the generation strategy (static / dynamic / dynamic + GS).
    #[must_use]
    pub fn strategy(mut self, strategy: GuessingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the intermediate budgets at which a [`CheckpointReport`] is
    /// emitted. They are sorted and deduplicated; checkpoints beyond the
    /// budget are clamped to the final-budget report (so asking for a
    /// report "at 10⁹" of a 10⁶-guess attack answers with the final
    /// state instead of silently vanishing), and the final budget is
    /// always reported whether listed here or not.
    #[must_use]
    pub fn checkpoints(mut self, checkpoints: Vec<u64>) -> Self {
        self.checkpoints = checkpoints;
        self
    }

    /// Sets the RNG seed. Results are a pure function of the seed and the
    /// attack parameters — never of the shard count.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how many worker threads generate guesses in parallel.
    ///
    /// Sharding is a *throughput* knob: every chunk of work draws from its
    /// own deterministic RNG stream keyed by the chunk index, so
    /// `shards(1)` and `shards(8)` produce byte-identical reports for the
    /// same seed.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        // Repo-wide thread discipline: clamp to the host (results are
        // shard-count invariant, so this only affects throughput).
        self.shards = passflow_nn::clamp_threads(shards);
        self
    }

    /// Sets how many chunks are generated between dynamic-feedback
    /// synchronizations (default 1, the per-batch cadence of Algorithm 1).
    ///
    /// Dynamic Sampling conditions the prior on the matches found so far,
    /// which serializes generation; raising `sync_every` lets up to that
    /// many chunks run in parallel against a snapshot of the matched set,
    /// trading feedback freshness for throughput. The value changes the
    /// trajectory (like changing the batch size does) but, for a fixed
    /// value, results remain shard-count-invariant. Static strategies
    /// ignore this and parallelize freely.
    #[must_use]
    pub fn sync_every(mut self, chunks: usize) -> Self {
        self.sync_every = chunks.max(1);
        self
    }

    /// Sets how many non-matched guesses to keep for qualitative analysis
    /// (Table IV).
    #[must_use]
    pub fn nonmatched_samples(mut self, n: usize) -> Self {
        self.nonmatched_sample_size = n;
        self
    }

    /// Registers a callback invoked with every [`CheckpointReport`] as soon
    /// as it is produced, so long attacks stream progress instead of
    /// materializing everything at the end.
    ///
    /// On a resumed attack the observer only sees reports produced by the
    /// resuming process; reports emitted before the checkpoint was written
    /// are restored into the outcome but not replayed through the callback.
    #[must_use]
    pub fn observer<F: FnMut(&CheckpointReport) + 'a>(mut self, observer: F) -> Self {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Enables periodic `PFATTACK v1` checkpointing: whenever roughly `n`
    /// more guesses have been generated (snapped to the next wave
    /// boundary), the engine persists its full state to the
    /// [`checkpoint_to`](Attack::checkpoint_to) path. `0` (the default)
    /// disables the cadence; a final checkpoint is still written on
    /// completion whenever a checkpoint path is set.
    #[must_use]
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// Sets the path checkpoints are written to (atomically, via a `.tmp`
    /// sibling — a killed writer never leaves a torn checkpoint behind).
    #[must_use]
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Resumes from a `PFATTACK v1` checkpoint written by an earlier run.
    ///
    /// Every configuration knob is validated against the checkpoint on
    /// load — budget, batch size, seed, strategy, sync cadence, checkpoint
    /// budgets, the target set (count + digest), the guesser name and (when
    /// available) its weight digest. Any divergence is a typed
    /// [`FlowError::CheckpointMismatch`], because resuming with different
    /// knobs would silently change the results. The shard count is *not*
    /// validated: results are shard-count invariant, so a 2-shard run may
    /// resume an 8-shard checkpoint.
    ///
    /// The contract: an attack killed at any checkpoint and resumed
    /// produces the byte-identical [`AttackOutcome`] (and `PFGUESS`
    /// archive) of an uninterrupted run.
    #[must_use]
    pub fn resume(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Halts the attack at the first wave boundary after `n` guesses have
    /// been generated, writes a checkpoint (when
    /// [`checkpoint_to`](Attack::checkpoint_to) is set) and returns the
    /// partial outcome. The kill→resume test hook: `halt_after` then
    /// [`resume`](Attack::resume) must reproduce an uninterrupted run
    /// exactly.
    #[must_use]
    pub fn halt_after(mut self, n: u64) -> Self {
        self.halt_after = Some(n);
        self
    }

    /// On completion, writes every distinct guess the attack generated —
    /// with its emission count — as a `PFGUESS v1` sorted guess archive at
    /// `path`. The archive is a pure function of the final guess multiset,
    /// so interrupted-and-resumed attacks and shard merges reproduce it
    /// byte-for-byte. Halted (partial) runs skip the archive.
    #[must_use]
    pub fn archive_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.archive_path = Some(path.into());
        self
    }

    /// Runs the attack against `guesser`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::LatentAccessRequired`] if the strategy needs
    /// dynamic sampling or smoothing but the guesser has no latent space
    /// ([`Guesser::as_latent`] returns `None`);
    /// [`FlowError::AttackPersistence`] if a checkpoint or archive could
    /// not be written, or a resumed checkpoint is corrupt; and
    /// [`FlowError::CheckpointMismatch`] if a resumed checkpoint was
    /// written under different attack knobs.
    pub fn run(self, guesser: &dyn Guesser) -> Result<AttackOutcome> {
        let engine = AttackEngine::plan(&self);
        engine.execute(self, guesser)
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// A unit of generation work: `len` guesses at stream `index`.
#[derive(Clone, Copy, Debug)]
struct Chunk {
    /// Global chunk index — the RNG stream key.
    index: u64,
    /// Number of guesses this chunk contributes.
    len: usize,
}

/// What one chunk produced, to be folded into the attack state in chunk
/// order.
struct ChunkOutput {
    guesses: Vec<String>,
    /// `(position-in-chunk, latent-row)` for guesses that hit the target
    /// set, recorded only when the strategy tracks matched latents.
    matched_latents: Vec<(usize, Vec<f32>)>,
}

/// The prior snapshot chunks sample from during one epoch.
enum PriorSnapshot {
    Standard(StandardGaussianPrior),
    Mixture(GaussianMixturePrior),
}

impl PriorSnapshot {
    /// Samples into a reused buffer; RNG consumption matches
    /// [`Prior::sample`] exactly, so buffer reuse never changes results.
    fn sample_into(&self, n: usize, rng: &mut dyn RngCore, out: &mut Tensor) {
        match self {
            PriorSnapshot::Standard(prior) => prior.sample_into(n, rng, out),
            PriorSnapshot::Mixture(prior) => prior.sample_into(n, rng, out),
        }
    }
}

/// Per-worker state kept alive across chunks and epochs: the guesser's
/// generation session (cached weight snapshot + scratch workspace) and the
/// latent/feature buffers the chunk loop writes into. After the first chunk
/// warms these up, steady-state generation allocates nothing but the guess
/// strings themselves.
struct WorkerCtx<'g> {
    plain: Option<Box<dyn GuessSession + 'g>>,
    latent: Option<Box<dyn LatentSession + 'g>>,
    z: Tensor,
    x: Tensor,
}

impl WorkerCtx<'_> {
    fn new() -> Self {
        WorkerCtx {
            plain: None,
            latent: None,
            z: Tensor::default(),
            x: Tensor::default(),
        }
    }
}

/// The resolved execution plan behind [`Attack::run`]: normalized
/// checkpoints and the budget's partition into deterministic work chunks.
///
/// Chunks are cut at every checkpoint boundary, so reports land on the exact
/// budgets the paper uses, and each chunk draws from an RNG stream derived
/// from `(seed, chunk index)` — the foundation of shard-count invariance.
pub struct AttackEngine {
    checkpoints: Vec<u64>,
    chunks: Vec<Chunk>,
    shards: usize,
    sync_every: usize,
}

impl AttackEngine {
    fn plan(attack: &Attack<'_>) -> AttackEngine {
        // Requested checkpoints past the budget are clamped to the budget
        // (deduplicating into the always-present final report) rather than
        // dropped, so `AttackOutcome::at_budget` can answer for them.
        let mut checkpoints: Vec<u64> = attack
            .checkpoints
            .iter()
            .copied()
            .filter(|&c| c > 0)
            .map(|c| c.min(attack.budget))
            .filter(|&c| c > 0)
            .collect();
        if attack.budget > 0 && !checkpoints.contains(&attack.budget) {
            checkpoints.push(attack.budget);
        }
        checkpoints.sort_unstable();
        checkpoints.dedup();

        // Partition [0, budget) into chunks of at most `batch_size`,
        // cutting at checkpoint boundaries.
        let mut chunks = Vec::new();
        let mut start = 0u64;
        let mut next_cp = 0usize;
        while start < attack.budget {
            while next_cp < checkpoints.len() && checkpoints[next_cp] <= start {
                next_cp += 1;
            }
            let limit = if next_cp < checkpoints.len() {
                checkpoints[next_cp]
            } else {
                attack.budget
            };
            let len = (attack.batch_size as u64).min(limit - start) as usize;
            chunks.push(Chunk {
                index: chunks.len() as u64,
                len,
            });
            start += len as u64;
        }

        AttackEngine {
            checkpoints,
            chunks,
            shards: attack.shards,
            sync_every: attack.sync_every,
        }
    }

    /// Number of work chunks the budget was partitioned into.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The normalized checkpoint budgets (ascending, final budget last).
    pub fn checkpoints(&self) -> &[u64] {
        &self.checkpoints
    }

    fn execute(self, mut attack: Attack<'_>, guesser: &dyn Guesser) -> Result<AttackOutcome> {
        let dynamic = attack.strategy.dynamic_params().copied();
        let smoothing = attack.strategy.smoothing().copied();
        let latent = if dynamic.is_some() || smoothing.is_some() {
            match guesser.as_latent() {
                Some(latent) => Some(latent),
                None => {
                    return Err(FlowError::LatentAccessRequired {
                        strategy: attack.strategy.label().to_string(),
                        guesser: guesser.name().to_string(),
                    })
                }
            }
        } else {
            None
        };
        let guesser_digest = guesser.state_digest();
        let latent_dim = latent.map_or(0u32, |lg| lg.latent_dim() as u32);

        let mut state = ReduceState {
            targets: attack.targets,
            generated: ShardedSet::new(),
            matched_in_order: Vec::new(),
            matched_latents: MatchedLatents::new(),
            nonmatched_samples: Vec::new(),
            nonmatched_cap: attack.nonmatched_sample_size,
            track_latents: dynamic.is_some(),
            guesses_made: 0,
            reports: Vec::with_capacity(self.checkpoints.len()),
            next_checkpoint: 0,
        };

        // The resume cursor: chunks [0, chunks_done) are already folded.
        // Each chunk draws from its own RNG stream keyed by the chunk
        // index, so `chunks_done` fully captures the RNG position.
        let mut chunks_done = 0usize;
        if let Some(path) = attack.resume_from.take() {
            chunks_done =
                self.restore(&mut state, &attack, guesser, guesser_digest, latent, &path)?;
        }

        // Without dynamic feedback every chunk is independent, but waves
        // are still bounded so checkpoints land at a useful cadence; fold
        // order equals chunk order either way, so the wave size never
        // changes results. With feedback, `sync_every` chunks share a
        // prior snapshot — the wave size *is* the algorithm's cadence, and
        // checkpoints only ever land on its boundaries.
        let epoch_len = if dynamic.is_some() {
            self.sync_every.max(1)
        } else {
            64.max(self.shards)
        };

        // Next multiple of the cadence strictly past `made` (never fires
        // when the cadence is disabled: 0 divides to None).
        let every = attack.checkpoint_every;
        let next_due_after = |made: u64| {
            made.checked_div(every)
                .map_or(u64::MAX, |q| (q + 1) * every)
        };
        let mut next_due = next_due_after(state.guesses_made);
        let total = self.chunks.len();
        let mut halted = false;

        // One context per worker, kept warm across epochs. Sessions are
        // started lazily inside whichever thread ends up owning the context.
        let mut worker_ctxs: Vec<WorkerCtx<'_>> =
            (0..self.shards.max(1)).map(|_| WorkerCtx::new()).collect();

        let mut dynamic_params = dynamic;
        while chunks_done < total {
            let wave_end = total.min(chunks_done + epoch_len);
            let epoch = &self.chunks[chunks_done..wave_end];
            // Build the epoch's prior snapshot from the matches so far.
            let prior = match (latent, dynamic_params.as_mut()) {
                (Some(lg), Some(params)) => match state.matched_latents.build_prior(params) {
                    Some(mixture) => Some(PriorSnapshot::Mixture(mixture)),
                    None => Some(PriorSnapshot::Standard(StandardGaussianPrior::new(
                        lg.latent_dim(),
                    ))),
                },
                (Some(lg), None) => Some(PriorSnapshot::Standard(StandardGaussianPrior::new(
                    lg.latent_dim(),
                ))),
                (None, _) => None,
            };

            let produce = pin_produce(|chunk: &Chunk, ctx| -> ChunkOutput {
                let mut rng = nnrng::derived(attack.seed, chunk.index);
                match (latent, prior.as_ref()) {
                    (Some(lg), Some(prior)) => {
                        let session = ctx.latent.get_or_insert_with(|| {
                            lg.start_latent_session()
                                .unwrap_or_else(|| Box::new(StatelessLatentSession(lg)))
                        });
                        generate_latent_chunk(
                            lg,
                            session.as_mut(),
                            &mut ctx.z,
                            &mut ctx.x,
                            chunk,
                            prior,
                            smoothing.as_ref(),
                            &state.generated,
                            attack.targets,
                            state.track_latents,
                            &mut rng,
                        )
                    }
                    _ => {
                        let session = ctx.plain.get_or_insert_with(|| {
                            guesser
                                .start_session()
                                .unwrap_or_else(|| Box::new(StatelessSession(guesser)))
                        });
                        ChunkOutput {
                            guesses: session.generate_batch(chunk.len, &mut rng),
                            matched_latents: Vec::new(),
                        }
                    }
                }
            });

            let workers = self.shards.min(epoch.len()).max(1);
            let outputs: Vec<ChunkOutput> = if workers == 1 {
                let ctx = &mut worker_ctxs[0];
                epoch.iter().map(|chunk| produce(chunk, ctx)).collect()
            } else {
                run_parallel(epoch, &mut worker_ctxs[..workers], &produce)
            };

            for output in outputs {
                state.fold_chunk(output, &self.checkpoints, attack.observer.as_deref_mut());
            }
            chunks_done = wave_end;

            halted =
                attack.halt_after.is_some_and(|h| state.guesses_made >= h) && chunks_done < total;
            if halted || state.guesses_made >= next_due {
                if let Some(path) = attack.checkpoint_path.as_deref() {
                    let snapshot = self.snapshot_state(
                        &attack,
                        &state,
                        guesser,
                        guesser_digest,
                        latent_dim,
                        chunks_done,
                    );
                    checkpoint::save(&snapshot, path)?;
                }
                next_due = next_due_after(state.guesses_made);
            }
            if halted {
                break;
            }
        }

        if !halted {
            // Completion: persist the final state (so resuming a finished
            // checkpoint reproduces the outcome) and the guess archive.
            if let Some(path) = attack.checkpoint_path.as_deref() {
                let snapshot = self.snapshot_state(
                    &attack,
                    &state,
                    guesser,
                    guesser_digest,
                    latent_dim,
                    chunks_done,
                );
                checkpoint::save(&snapshot, path)?;
            }
            if let Some(path) = attack.archive_path.as_deref() {
                write_guess_archive(&state.generated, path)?;
            }
        }

        // A zero budget still reports nothing — mirror the historical
        // behavior of an empty checkpoint list.
        Ok(AttackOutcome {
            strategy: attack.strategy.label_for(guesser.name()),
            checkpoints: state.reports,
            matched_passwords: state.matched_in_order,
            nonmatched_samples: state.nonmatched_samples,
        })
    }

    /// Captures everything `PFATTACK v1` persists at a wave boundary.
    fn snapshot_state(
        &self,
        attack: &Attack<'_>,
        state: &ReduceState<'_>,
        guesser: &dyn Guesser,
        guesser_digest: Option<u64>,
        latent_dim: u32,
        chunks_done: usize,
    ) -> CheckpointState {
        let mut generated: Vec<(Vec<u8>, u64)> = state
            .generated
            .iter_counted()
            .map(|(guess, count)| (guess.as_bytes().to_vec(), count))
            .collect();
        generated.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        CheckpointState {
            budget: attack.budget,
            batch_size: attack.batch_size as u64,
            seed: attack.seed,
            sync_every: attack.sync_every as u64,
            nonmatched_cap: attack.nonmatched_sample_size as u64,
            strategy: attack.strategy.clone(),
            checkpoints: self.checkpoints.clone(),
            target_count: attack.targets.len() as u64,
            target_digest: checkpoint::target_set_digest(attack.targets.iter()),
            guesser_name: guesser.name().to_string(),
            guesser_digest,
            chunks_done: chunks_done as u64,
            guesses_made: state.guesses_made,
            next_checkpoint: state.next_checkpoint as u64,
            reports: state.reports.clone(),
            matched_passwords: state.matched_in_order.clone(),
            nonmatched_samples: state.nonmatched_samples.clone(),
            latent_dim,
            matched_points: state.matched_latents.points().to_vec(),
            matched_usage: state.matched_latents.usage_counts().to_vec(),
            generated,
        }
    }

    /// Loads a checkpoint, validates it knob-by-knob against this plan, and
    /// restores the reduce state; returns the resume cursor (`chunks_done`).
    fn restore(
        &self,
        state: &mut ReduceState<'_>,
        attack: &Attack<'_>,
        guesser: &dyn Guesser,
        guesser_digest: Option<u64>,
        latent: Option<&dyn LatentGuesser>,
        path: &Path,
    ) -> Result<usize> {
        let cp = checkpoint::load(path)?;

        ensure_knob("budget", cp.budget, attack.budget)?;
        ensure_knob("batch_size", cp.batch_size, attack.batch_size as u64)?;
        ensure_knob("seed", cp.seed, attack.seed)?;
        ensure_knob("sync_every", cp.sync_every, attack.sync_every as u64)?;
        ensure_knob(
            "nonmatched_samples",
            cp.nonmatched_cap,
            attack.nonmatched_sample_size as u64,
        )?;
        if cp.strategy != attack.strategy {
            return Err(FlowError::CheckpointMismatch {
                field: "strategy".to_string(),
                checkpoint: format!("{:?}", cp.strategy),
                requested: format!("{:?}", attack.strategy),
            });
        }
        if cp.checkpoints != self.checkpoints {
            return Err(FlowError::CheckpointMismatch {
                field: "checkpoints".to_string(),
                checkpoint: format!("{:?}", cp.checkpoints),
                requested: format!("{:?}", self.checkpoints),
            });
        }
        ensure_knob("target count", cp.target_count, attack.targets.len() as u64)?;
        ensure_knob(
            "target digest",
            cp.target_digest,
            checkpoint::target_set_digest(attack.targets.iter()),
        )?;
        ensure_knob("guesser", cp.guesser_name.as_str(), guesser.name())?;
        if let (Some(stored), Some(current)) = (cp.guesser_digest, guesser_digest) {
            ensure_knob("guesser digest", stored, current)?;
        }
        if let Some(lg) = latent {
            ensure_knob(
                "latent dim",
                u64::from(cp.latent_dim),
                lg.latent_dim() as u64,
            )?;
        }

        // Internal-consistency checks: these can only fail on a corrupt (or
        // hand-edited) file, never on a knob mismatch.
        let corrupt = |msg: String| Err(FlowError::AttackPersistence(msg));
        let chunks_done = cp.chunks_done as usize;
        if chunks_done > self.chunks.len() {
            return corrupt(format!(
                "checkpoint claims {chunks_done} chunks done of {}",
                self.chunks.len()
            ));
        }
        let expected_guesses: u64 = self.chunks[..chunks_done]
            .iter()
            .map(|c| c.len as u64)
            .sum();
        if cp.guesses_made != expected_guesses {
            return corrupt(format!(
                "checkpoint guess count {} disagrees with its chunk cursor ({expected_guesses})",
                cp.guesses_made
            ));
        }
        if cp.reports.len() != cp.next_checkpoint as usize
            || cp.reports.len() > self.checkpoints.len()
        {
            return corrupt("checkpoint report list disagrees with its cursor".to_string());
        }
        if attack.strategy.dynamic_params().is_some()
            && !chunks_done.is_multiple_of(self.sync_every.max(1))
            && chunks_done != self.chunks.len()
        {
            return corrupt(format!(
                "checkpoint cursor {chunks_done} is not aligned to sync_every={}",
                self.sync_every
            ));
        }
        if cp
            .matched_points
            .iter()
            .any(|p| p.len() != cp.latent_dim as usize)
        {
            return corrupt("matched latent points disagree with the stored dim".to_string());
        }

        state.guesses_made = cp.guesses_made;
        state.next_checkpoint = cp.next_checkpoint as usize;
        state.reports = cp.reports;
        state.matched_in_order = cp.matched_passwords;
        state.nonmatched_samples = cp.nonmatched_samples;
        state.matched_latents = MatchedLatents::from_parts(cp.matched_points, cp.matched_usage);
        for (guess, count) in cp.generated {
            let guess = String::from_utf8(guess).map_err(|_| {
                FlowError::AttackPersistence("dedup set contains invalid UTF-8".to_string())
            })?;
            state.generated.insert_with_count(guess, count);
        }
        Ok(chunks_done)
    }
}

/// One knob compared between a checkpoint and a resuming attack.
fn ensure_knob<T: PartialEq + std::fmt::Display>(
    field: &str,
    checkpoint: T,
    requested: T,
) -> Result<()> {
    if checkpoint != requested {
        return Err(FlowError::CheckpointMismatch {
            field: field.to_string(),
            checkpoint: checkpoint.to_string(),
            requested: requested.to_string(),
        });
    }
    Ok(())
}

/// Writes the attack's dedup'd guess multiset as a `PFGUESS v1` archive —
/// a pure function of the multiset, so any interrupted/resumed/merged path
/// to the same final state produces byte-identical files.
fn write_guess_archive(generated: &ShardedSet, path: &Path) -> Result<()> {
    let archive_err =
        |e: passflow_store::StoreError| FlowError::AttackPersistence(format!("{path:?}: {e}"));
    let mut records: Vec<(&String, u64)> = generated.iter_counted().collect();
    records.sort_unstable_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
    let mut writer =
        GuessArchiveWriter::create(path, GuessConfig::default()).map_err(archive_err)?;
    for (guess, count) in records {
        writer.push(guess, count).map_err(archive_err)?;
    }
    writer.finish().map_err(archive_err)?;
    Ok(())
}

/// Pins the worker closure's signature so the session lifetime inside
/// [`WorkerCtx`] is inferred from the surrounding guesser borrow instead of
/// being over-generalized to a higher-ranked lifetime.
fn pin_produce<'g, F>(f: F) -> F
where
    F: Fn(&Chunk, &mut WorkerCtx<'g>) -> ChunkOutput + Sync,
{
    f
}

/// Dynamic load balancing across worker threads: workers pull the next
/// unclaimed chunk from a shared counter, so a slow chunk never stalls the
/// others (cf. the dynamic load-balancing literature referenced in
/// PAPERS.md). Outputs are re-assembled in chunk order, which is what makes
/// the schedule irrelevant to the results.
fn run_parallel<'g>(
    epoch: &[Chunk],
    ctxs: &mut [WorkerCtx<'g>],
    produce: &(dyn Fn(&Chunk, &mut WorkerCtx<'g>) -> ChunkOutput + Sync),
) -> Vec<ChunkOutput> {
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<ChunkOutput>> = (0..epoch.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ctxs
            .iter_mut()
            .map(|ctx| {
                let next = &next;
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= epoch.len() {
                            break;
                        }
                        produced.push((i, produce(&epoch[i], ctx)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, output) in handle.join().expect("attack worker panicked") {
                slots[i] = Some(output);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every chunk produced"))
        .collect()
}

/// Generates one chunk through the latent path: sample the epoch prior into
/// the worker's latent buffer, invert through the session's cached snapshot
/// into the feature buffer, decode, and (optionally) smooth collisions away
/// in data space.
#[allow(clippy::too_many_arguments)]
fn generate_latent_chunk(
    lg: &dyn LatentGuesser,
    session: &mut dyn LatentSession,
    z: &mut Tensor,
    x: &mut Tensor,
    chunk: &Chunk,
    prior: &PriorSnapshot,
    smoothing: Option<&GaussianSmoothing>,
    generated: &ShardedSet,
    targets: &HashSet<String>,
    track_latents: bool,
    rng: &mut dyn RngCore,
) -> ChunkOutput {
    prior.sample_into(chunk.len, rng, z);
    session.latents_to_features_into(z, x);

    // The chunk-local dedup view is only consulted by smoothing; skip the
    // per-guess clone + hash entirely for strategies without it.
    let mut local: Option<HashSet<String>> = smoothing.map(|_| HashSet::new());
    let mut guesses = Vec::with_capacity(chunk.len);
    let mut matched_latents = Vec::new();
    for i in 0..chunk.len {
        let features = x.row_slice(i);
        let mut guess = lg.decode_features(features);

        // Data-space Gaussian smoothing: if this guess collides with one
        // already generated (in the shared snapshot or earlier in this
        // chunk), incrementally perturb the data-space point until it
        // decodes to something new (Section III-C).
        if let (Some(smoothing), Some(local)) = (smoothing, local.as_mut()) {
            if generated.contains(&guess) || local.contains(&guess) {
                // The accepting attempt's decode is captured inside the
                // predicate, so a successful perturbation costs no second
                // decode.
                let mut accepted: Option<String> = None;
                let found = smoothing.perturb_until(features, rng, |candidate| {
                    let decoded = lg.decode_features(candidate);
                    let fresh = !generated.contains(&decoded) && !local.contains(&decoded);
                    if fresh {
                        accepted = Some(decoded);
                    }
                    fresh
                });
                if let (Some(_), Some(decoded)) = (found, accepted) {
                    guess = decoded;
                }
            }
            local.insert(guess.clone());
        }

        if track_latents && targets.contains(&guess) {
            matched_latents.push((i, z.row_slice(i).to_vec()));
        }
        guesses.push(guess);
    }
    ChunkOutput {
        guesses,
        matched_latents,
    }
}

/// The sequential fold over chunk outputs: global dedup, match accounting,
/// matched-latent recording and checkpoint emission — always in chunk
/// order, regardless of which thread generated what.
struct ReduceState<'a> {
    targets: &'a HashSet<String>,
    generated: ShardedSet,
    matched_in_order: Vec<String>,
    matched_latents: MatchedLatents,
    nonmatched_samples: Vec<String>,
    nonmatched_cap: usize,
    track_latents: bool,
    guesses_made: u64,
    reports: Vec<CheckpointReport>,
    next_checkpoint: usize,
}

impl ReduceState<'_> {
    fn fold_chunk(
        &mut self,
        output: ChunkOutput,
        checkpoints: &[u64],
        mut observer: Option<&mut (dyn FnMut(&CheckpointReport) + '_)>,
    ) {
        let mut latents = output.matched_latents.into_iter().peekable();
        for (i, guess) in output.guesses.into_iter().enumerate() {
            self.guesses_made += 1;
            let latent = match latents.peek() {
                Some((j, _)) if *j == i => latents.next().map(|(_, z)| z),
                _ => None,
            };
            // Every guess the attack has ever produced is in `generated`,
            // and every target in `generated` was counted as a match when it
            // first appeared — so one probe classifies repeats (bumping the
            // emission count the `PFGUESS` archive persists), and the string
            // itself is *moved* into whichever set keeps it: matched guesses
            // are cloned exactly once (dedup set + match list), unmatched
            // ones not at all (beyond the ≤cap samples).
            if self.generated.increment(&guess) {
                continue;
            }
            if self.targets.contains(&guess) {
                if self.track_latents {
                    if let Some(z) = latent {
                        self.matched_latents.insert(z);
                    }
                }
                self.generated.insert(guess.clone());
                self.matched_in_order.push(guess);
            } else {
                if self.nonmatched_samples.len() < self.nonmatched_cap {
                    self.nonmatched_samples.push(guess.clone());
                }
                self.generated.insert(guess);
            }
        }

        while self.next_checkpoint < checkpoints.len()
            && self.guesses_made >= checkpoints[self.next_checkpoint]
        {
            let matched = self.matched_in_order.len();
            let report = CheckpointReport {
                guesses: checkpoints[self.next_checkpoint],
                unique: self.generated.len() as u64,
                matched: matched as u64,
                matched_percent: if self.targets.is_empty() {
                    0.0
                } else {
                    100.0 * matched as f64 / self.targets.len() as f64
                },
            };
            if let Some(observer) = observer.as_deref_mut() {
                observer(&report);
            }
            self.reports.push(report);
            self.next_checkpoint += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowConfig;
    use crate::flow::PassFlow;
    use crate::sample::DynamicParams;

    /// A deterministic guesser cycling through a fixed list, consuming one
    /// RNG word per guess.
    struct Cycler(Vec<String>);

    impl Guesser for Cycler {
        fn name(&self) -> &str {
            "cycler"
        }
        fn generate_batch(&self, n: usize, rng: &mut dyn RngCore) -> Vec<String> {
            // Rejection-sampled draw: a plain `next_u32() % len` skews
            // toward low indices whenever `len` isn't a power of two. The
            // fixture's 64 entries keep the RNG stream identical to the old
            // modulo draw, so the seeded expectations below are unchanged.
            (0..n)
                .map(|_| self.0[nnrng::uniform_index(rng, self.0.len())].clone())
                .collect()
        }
    }

    fn cycler() -> Cycler {
        Cycler(
            (0..64)
                .map(|i| format!("pw{i:03}"))
                .collect::<Vec<String>>(),
        )
    }

    fn targets() -> HashSet<String> {
        (0..16).map(|i| format!("pw{:03}", i * 4)).collect()
    }

    /// An untrained flow plus targets drawn from its own samples, so
    /// dynamic strategies actually find matches and build mixtures.
    fn flow_fixture() -> (PassFlow, HashSet<String>) {
        let mut rng = nnrng::seeded(42);
        let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
        let targets: HashSet<String> = flow
            .sample_passwords(300, &mut rng)
            .into_iter()
            .filter(|p| !p.is_empty())
            .collect();
        (flow, targets)
    }

    #[test]
    fn reports_are_monotone_and_end_at_the_budget() {
        let targets = targets();
        let outcome = Attack::new(&targets)
            .budget(5_000)
            .batch_size(128)
            .checkpoints(vec![1_000, 2_500, 9_999_999, 0])
            .run(&cycler())
            .unwrap();
        assert_eq!(outcome.checkpoints.len(), 3);
        assert_eq!(outcome.checkpoints[0].guesses, 1_000);
        assert_eq!(outcome.checkpoints[1].guesses, 2_500);
        assert_eq!(outcome.final_report().guesses, 5_000);
        for pair in outcome.checkpoints.windows(2) {
            assert!(pair[1].unique >= pair[0].unique);
            assert!(pair[1].matched >= pair[0].matched);
        }
        for report in &outcome.checkpoints {
            assert!(report.unique <= report.guesses);
            assert!(report.matched as usize <= targets.len());
            assert!((0.0..=100.0).contains(&report.matched_percent));
        }
        assert_eq!(
            outcome.final_report().matched as usize,
            outcome.matched_passwords.len()
        );
    }

    #[test]
    fn at_budget_clamps_requests_beyond_the_final_report() {
        let targets = targets();
        let outcome = Attack::new(&targets)
            .budget(5_000)
            .batch_size(128)
            .checkpoints(vec![1_000, 9_999_999])
            .run(&cycler())
            .unwrap();
        assert_eq!(outcome.at_budget(1_000).unwrap().guesses, 1_000);
        // The over-budget request was clamped into the final report…
        assert_eq!(outcome.at_budget(5_000).unwrap().guesses, 5_000);
        // …and queries beyond the budget answer with the final state
        // instead of silently returning None.
        assert_eq!(outcome.at_budget(9_999_999), Some(outcome.final_report()));
        assert_eq!(outcome.at_budget(u64::MAX), Some(outcome.final_report()));
        // Budgets that were never checkpoints still answer None.
        assert_eq!(outcome.at_budget(3_000), None);
    }

    #[test]
    fn shard_count_never_changes_results_for_plain_guessers() {
        let targets = targets();
        let run = |shards: usize| {
            Attack::new(&targets)
                .budget(4_096)
                .batch_size(100)
                .checkpoints(vec![512, 2_000])
                .seed(7)
                .shards(shards)
                .run(&cycler())
                .unwrap()
        };
        let sequential = run(1);
        for shards in [2, 5, 8] {
            assert_eq!(run(shards), sequential, "shards={shards} diverged");
        }
    }

    #[test]
    fn shard_count_never_changes_results_for_latent_strategies() {
        let (flow, targets) = flow_fixture();
        let strategy = GuessingStrategy::DynamicWithSmoothing {
            params: DynamicParams::new(0, 0.1, 8),
            smoothing: GaussianSmoothing::default(),
        };
        let run = |shards: usize| {
            Attack::new(&targets)
                .budget(1_500)
                .batch_size(128)
                .checkpoints(vec![512, 1_024])
                .strategy(strategy.clone())
                .seed(11)
                .shards(shards)
                .sync_every(4)
                .run(&flow)
                .unwrap()
        };
        let sequential = run(1);
        assert!(
            sequential.final_report().matched > 0,
            "fixture must produce matches to exercise the dynamic path"
        );
        for shards in [2, 8] {
            assert_eq!(run(shards), sequential, "shards={shards} diverged");
        }
    }

    #[test]
    fn observer_streams_reports_incrementally() {
        let targets = targets();
        let mut streamed: Vec<CheckpointReport> = Vec::new();
        let outcome = Attack::new(&targets)
            .budget(2_000)
            .batch_size(64)
            .checkpoints(vec![500, 1_000])
            .observer(|report| streamed.push(report.clone()))
            .run(&cycler())
            .unwrap();
        assert_eq!(streamed, outcome.checkpoints);
        assert_eq!(streamed.len(), 3);
    }

    #[test]
    fn latent_strategies_reject_plain_guessers() {
        let targets = targets();
        let err = Attack::new(&targets)
            .budget(100)
            .strategy(GuessingStrategy::Dynamic(DynamicParams::default()))
            .run(&cycler())
            .unwrap_err();
        match err {
            FlowError::LatentAccessRequired { strategy, guesser } => {
                assert_eq!(strategy, "PassFlow-Dynamic");
                assert_eq!(guesser, "cycler");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn labels_follow_the_guesser_name() {
        let targets = targets();
        let outcome = Attack::new(&targets).budget(64).run(&cycler()).unwrap();
        assert_eq!(outcome.strategy, "cycler-Static");
    }

    #[test]
    fn chunk_plan_cuts_at_checkpoints() {
        let targets = targets();
        let attack = Attack::new(&targets)
            .budget(1_000)
            .batch_size(300)
            .checkpoints(vec![500, 750]);
        let engine = AttackEngine::plan(&attack);
        assert_eq!(engine.checkpoints(), &[500, 750, 1_000]);
        // 300 + 200 | 250 | 250 — no chunk crosses a checkpoint.
        let lens: Vec<usize> = engine.chunks.iter().map(|c| c.len).collect();
        assert_eq!(lens.iter().sum::<usize>(), 1_000);
        let mut made = 0u64;
        let mut cp_iter = engine.checkpoints().iter().peekable();
        for len in lens {
            made += len as u64;
            if let Some(&&cp) = cp_iter.peek() {
                assert!(made <= cp, "chunk crossed checkpoint {cp}");
                if made == cp {
                    cp_iter.next();
                }
            }
        }
        assert_eq!(engine.num_chunks(), 4);
    }

    #[test]
    fn zero_budget_reports_nothing() {
        let targets = targets();
        let outcome = Attack::new(&targets).budget(0).run(&cycler()).unwrap();
        assert!(outcome.checkpoints.is_empty());
        assert!(outcome.matched_passwords.is_empty());
    }

    #[test]
    fn empty_target_set_yields_zero_percent() {
        let targets = HashSet::new();
        let outcome = Attack::new(&targets).budget(256).run(&cycler()).unwrap();
        assert_eq!(outcome.final_report().matched, 0);
        assert_eq!(outcome.final_report().matched_percent, 0.0);
    }
}
