/root/repo/target/debug/deps/properties-17ac725713b1586e.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-17ac725713b1586e.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
