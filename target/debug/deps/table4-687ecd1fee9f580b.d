/root/repo/target/debug/deps/table4-687ecd1fee9f580b.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-687ecd1fee9f580b.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
