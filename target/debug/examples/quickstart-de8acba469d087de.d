/root/repo/target/debug/examples/quickstart-de8acba469d087de.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-de8acba469d087de.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
