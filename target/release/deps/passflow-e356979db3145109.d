/root/repo/target/release/deps/passflow-e356979db3145109.d: src/lib.rs

/root/repo/target/release/deps/libpassflow-e356979db3145109.rlib: src/lib.rs

/root/repo/target/release/deps/libpassflow-e356979db3145109.rmeta: src/lib.rs

src/lib.rs:
