/root/repo/target/debug/deps/figure5-39c77c4ac592c3d6.d: crates/bench/src/bin/figure5.rs Cargo.toml

/root/repo/target/debug/deps/libfigure5-39c77c4ac592c3d6.rmeta: crates/bench/src/bin/figure5.rs Cargo.toml

crates/bench/src/bin/figure5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
