//! Train → checkpoint → resume smoke test (run by CI).
//!
//! Trains a small flow for two epochs with checkpointing, then resumes the
//! checkpoint on a fresh flow and runs to four epochs, and verifies the
//! result is bit-identical to an uninterrupted four-epoch run — the
//! `PASSFLOW v2` resumability guarantee, end to end.
//!
//! ```text
//! cargo run --release --example resume_training
//! ```

use passflow::{
    CorpusConfig, FlowConfig, PassFlow, Schedule, SyntheticCorpusGenerator, TrainConfig, Trainer,
};
use rand::SeedableRng;

fn new_flow() -> passflow::core::Result<PassFlow> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    PassFlow::new(FlowConfig::tiny(), &mut rng)
}

fn main() -> passflow::core::Result<()> {
    let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(600)).generate(3);
    let passwords = corpus.into_passwords();
    let base = TrainConfig::tiny()
        .with_batch_size(128)
        .with_micro_batch(32)
        .with_grad_workers(2)
        .with_validation_fraction(0.2)
        .with_schedule(Schedule::WarmupCosine {
            warmup: 2,
            period: 16,
            min_factor: 0.25,
        });

    // Uninterrupted reference run.
    let reference = new_flow()?;
    let reference_report =
        Trainer::new(&reference, base.clone().with_epochs(4))?.train(&passwords)?;

    // "Killed" run: two epochs, checkpointed at the epoch-2 boundary…
    let path =
        std::env::temp_dir().join(format!("passflow_resume_smoke_{}.ckpt", std::process::id()));
    let killed = new_flow()?;
    Trainer::new(
        &killed,
        base.clone().with_epochs(2).with_checkpoint_every(2),
    )?
    .with_checkpoint(&path)
    .train(&passwords)?;

    // …resumed on a fresh flow and driven to the full four epochs.
    let resumed = new_flow()?;
    let resumed_report = Trainer::new(&resumed, base.with_epochs(4))?.resume(&passwords, &path)?;
    let _ = std::fs::remove_file(&path);

    let mut tensors = 0usize;
    for (a, b) in reference
        .weight_snapshot()
        .iter()
        .zip(resumed.weight_snapshot().iter())
    {
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "resumed weights diverged from the uninterrupted run"
            );
        }
        tensors += 1;
    }
    assert_eq!(
        resumed_report, reference_report,
        "resumed report diverged from the uninterrupted run"
    );
    println!(
        "resume smoke OK: {} weight tensors bit-identical across kill/resume, \
         {} epochs in both reports (best epoch {})",
        tensors,
        resumed_report.epochs.len(),
        resumed_report.best_epoch
    );
    Ok(())
}
