/root/repo/target/debug/deps/figure5-e27fa7f11b9637ab.d: crates/bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-e27fa7f11b9637ab: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
