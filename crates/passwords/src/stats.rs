//! Structural statistics over password collections.
//!
//! The paper's qualitative arguments (Table IV: "non-matched samples closely
//! resemble human-like passwords") need a quantitative footing in an
//! automated reproduction. This module measures the structural properties
//! that distinguish human-chosen passwords from random strings: length
//! distribution, character-class composition, structure templates
//! (letter/digit/symbol masks à la Weir's PCFG) and character-frequency
//! divergence against a reference corpus.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Character classes used in structure templates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CharClass {
    /// ASCII letters.
    Letter,
    /// ASCII digits.
    Digit,
    /// Everything else.
    Symbol,
}

impl CharClass {
    /// Classifies a character.
    pub fn of(c: char) -> CharClass {
        if c.is_ascii_alphabetic() {
            CharClass::Letter
        } else if c.is_ascii_digit() {
            CharClass::Digit
        } else {
            CharClass::Symbol
        }
    }

    /// Single-letter code used in template strings (`L`, `D`, `S`).
    pub fn code(self) -> char {
        match self {
            CharClass::Letter => 'L',
            CharClass::Digit => 'D',
            CharClass::Symbol => 'S',
        }
    }
}

/// Returns the structure template of a password, e.g. `"jimmy91"` → `"LLLLLDD"`.
pub fn structure_template(password: &str) -> String {
    password.chars().map(|c| CharClass::of(c).code()).collect()
}

/// Aggregated structural statistics over a collection of passwords.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Number of passwords analyzed.
    pub count: usize,
    /// Mean password length.
    pub mean_length: f64,
    /// Histogram of lengths.
    pub length_histogram: HashMap<usize, usize>,
    /// Fraction of characters that are letters.
    pub letter_fraction: f64,
    /// Fraction of characters that are digits.
    pub digit_fraction: f64,
    /// Fraction of characters that are symbols.
    pub symbol_fraction: f64,
    /// Fraction of passwords that contain at least one letter and at least
    /// one digit — the dominant "word + digits" structure of human passwords.
    pub mixed_alnum_fraction: f64,
    /// The most common structure templates with their frequencies.
    pub top_templates: Vec<(String, usize)>,
    /// Per-character relative frequencies.
    pub char_frequencies: HashMap<char, f64>,
}

impl CorpusStats {
    /// Computes statistics over the given passwords.
    pub fn compute<'a>(passwords: impl IntoIterator<Item = &'a str>) -> CorpusStats {
        let mut count = 0usize;
        let mut total_len = 0usize;
        let mut length_histogram: HashMap<usize, usize> = HashMap::new();
        let mut class_counts = [0usize; 3];
        let mut mixed = 0usize;
        let mut templates: HashMap<String, usize> = HashMap::new();
        let mut char_counts: HashMap<char, usize> = HashMap::new();
        let mut total_chars = 0usize;

        for p in passwords {
            count += 1;
            let len = p.chars().count();
            total_len += len;
            *length_histogram.entry(len).or_default() += 1;
            let mut has_letter = false;
            let mut has_digit = false;
            for c in p.chars() {
                total_chars += 1;
                *char_counts.entry(c).or_default() += 1;
                match CharClass::of(c) {
                    CharClass::Letter => {
                        class_counts[0] += 1;
                        has_letter = true;
                    }
                    CharClass::Digit => {
                        class_counts[1] += 1;
                        has_digit = true;
                    }
                    CharClass::Symbol => class_counts[2] += 1,
                }
            }
            if has_letter && has_digit {
                mixed += 1;
            }
            *templates.entry(structure_template(p)).or_default() += 1;
        }

        let mut top_templates: Vec<(String, usize)> = templates.into_iter().collect();
        top_templates.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        top_templates.truncate(20);

        let char_frequencies = char_counts
            .into_iter()
            .map(|(c, n)| (c, n as f64 / total_chars.max(1) as f64))
            .collect();

        CorpusStats {
            count,
            mean_length: if count == 0 {
                0.0
            } else {
                total_len as f64 / count as f64
            },
            length_histogram,
            letter_fraction: class_counts[0] as f64 / total_chars.max(1) as f64,
            digit_fraction: class_counts[1] as f64 / total_chars.max(1) as f64,
            symbol_fraction: class_counts[2] as f64 / total_chars.max(1) as f64,
            mixed_alnum_fraction: mixed as f64 / count.max(1) as f64,
            top_templates,
            char_frequencies,
        }
    }

    /// Jensen–Shannon divergence between the character-frequency
    /// distributions of two corpora (in nats, 0 = identical, ln 2 ≈ 0.693 =
    /// disjoint). Used to quantify how closely generated guesses follow the
    /// character statistics of real passwords.
    pub fn char_js_divergence(&self, other: &CorpusStats) -> f64 {
        let mut chars: Vec<char> = self.char_frequencies.keys().copied().collect();
        for c in other.char_frequencies.keys() {
            if !chars.contains(c) {
                chars.push(*c);
            }
        }
        let p = |c: &char| *self.char_frequencies.get(c).unwrap_or(&0.0);
        let q = |c: &char| *other.char_frequencies.get(c).unwrap_or(&0.0);
        let kl = |f: &dyn Fn(&char) -> f64, g: &dyn Fn(&char) -> f64| -> f64 {
            chars
                .iter()
                .map(|c| {
                    let fp = f(c);
                    let gp = g(c);
                    if fp > 0.0 && gp > 0.0 {
                        fp * (fp / gp).ln()
                    } else {
                        0.0
                    }
                })
                .sum()
        };
        let m = |c: &char| 0.5 * (p(c) + q(c));
        0.5 * kl(&p, &m) + 0.5 * kl(&q, &m)
    }

    /// A coarse "human-likeness" score in `[0, 1]`: the fraction of passwords
    /// whose structure template appears among this corpus's top templates.
    /// Applied to generated guesses with `self` computed on real passwords,
    /// this measures how much of the generated mass follows familiar
    /// human-password structures.
    pub fn template_coverage<'a>(&self, passwords: impl IntoIterator<Item = &'a str>) -> f64 {
        let top: Vec<&str> = self.top_templates.iter().map(|(t, _)| t.as_str()).collect();
        let mut total = 0usize;
        let mut covered = 0usize;
        for p in passwords {
            total += 1;
            if top.contains(&structure_template(p).as_str()) {
                covered += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{CorpusConfig, SyntheticCorpusGenerator};

    #[test]
    fn char_class_and_template() {
        assert_eq!(CharClass::of('a'), CharClass::Letter);
        assert_eq!(CharClass::of('7'), CharClass::Digit);
        assert_eq!(CharClass::of('!'), CharClass::Symbol);
        assert_eq!(structure_template("jimmy91"), "LLLLLDD");
        assert_eq!(structure_template("P@ss1"), "LSLLD");
        assert_eq!(structure_template(""), "");
    }

    #[test]
    fn stats_on_known_corpus() {
        let stats = CorpusStats::compute(["abc12", "xyz", "12345"]);
        assert_eq!(stats.count, 3);
        assert!((stats.mean_length - 13.0 / 3.0).abs() < 1e-9);
        assert_eq!(stats.length_histogram[&5], 2);
        assert_eq!(stats.length_histogram[&3], 1);
        // 6 letters, 7 digits, 0 symbols out of 13 characters.
        assert!((stats.letter_fraction - 6.0 / 13.0).abs() < 1e-9);
        assert!((stats.digit_fraction - 7.0 / 13.0).abs() < 1e-9);
        assert_eq!(stats.symbol_fraction, 0.0);
        assert!((stats.mixed_alnum_fraction - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_corpus_is_handled() {
        let stats = CorpusStats::compute(std::iter::empty::<&str>());
        assert_eq!(stats.count, 0);
        assert_eq!(stats.mean_length, 0.0);
        assert_eq!(stats.template_coverage(std::iter::empty::<&str>()), 0.0);
    }

    #[test]
    fn js_divergence_is_zero_for_identical_and_positive_for_different() {
        let a = CorpusStats::compute(["password", "letmein"]);
        let b = CorpusStats::compute(["password", "letmein"]);
        let c = CorpusStats::compute(["999999", "000000"]);
        assert!(a.char_js_divergence(&b).abs() < 1e-12);
        assert!(a.char_js_divergence(&c) > 0.3);
        // Symmetry.
        assert!((a.char_js_divergence(&c) - c.char_js_divergence(&a)).abs() < 1e-12);
    }

    #[test]
    fn synthetic_corpus_looks_human() {
        let corpus =
            SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(10_000)).generate(23);
        let stats = CorpusStats::compute(corpus.iter().map(String::as_str));
        // Human corpora: mean length 6-9, mostly letters, meaningful digit
        // usage, very few symbols, and a large fraction of word+digit mixes.
        assert!(stats.mean_length > 5.0 && stats.mean_length < 9.5);
        assert!(stats.letter_fraction > 0.5);
        assert!(stats.digit_fraction > 0.1);
        assert!(stats.symbol_fraction < 0.1);
        assert!(stats.mixed_alnum_fraction > 0.2);
    }

    #[test]
    fn template_coverage_separates_human_from_random() {
        let corpus =
            SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(10_000)).generate(29);
        let stats = CorpusStats::compute(corpus.iter().map(String::as_str));
        let humanlike = ["maria92", "soccer1", "jessica", "123456"];
        let randomlike = ["x!Q#z9@k", "]]][[", "!!??!!??"];
        let human_cov = stats.template_coverage(humanlike);
        let random_cov = stats.template_coverage(randomlike);
        assert!(human_cov > random_cov);
        assert!(human_cov > 0.5, "human coverage was {human_cov}");
    }

    #[test]
    fn top_templates_are_sorted_by_frequency() {
        let stats = CorpusStats::compute(["aa1", "bb2", "cc3", "dddd", "eeee", "ffff", "gggg"]);
        assert_eq!(stats.top_templates[0].0, "LLLL");
        assert_eq!(stats.top_templates[0].1, 4);
        assert_eq!(stats.top_templates[1].0, "LLD");
        assert_eq!(stats.top_templates[1].1, 3);
    }
}
