//! The TCP accept loop, router and request handlers.
//!
//! Connections are handled thread-per-connection (bounded by
//! [`ServerConfig::max_connections`]): each handler loops over keep-alive
//! requests, parses them through the [`crate::http`] layer, and
//! dispatches:
//!
//! * `POST /v1/score` — single or multi-password strength scoring through
//!   the adaptive micro-batcher,
//! * `POST /v1/logprob` — batch log-probabilities (the request body *is*
//!   the batch, so it goes straight to the model),
//! * `GET /healthz` — liveness plus registered model names,
//! * `GET /metrics` — text exposition of the serving metrics,
//! * `POST /admin/shutdown` — graceful stop, when enabled in the config.
//!
//! Shutdown (via [`ServerHandle::shutdown`] or the admin endpoint) stops
//! the accept loop, lets in-flight handlers finish their current request,
//! drains the batcher queue, and joins every thread before
//! [`ServerHandle::join`] returns — "clean shutdown" is an assertable
//! property, and CI asserts it.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::batcher::{Batcher, BatcherConfig, BatcherHandle, EnqueueError, ScoreJob, ScoreOutcome};
use crate::breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
use crate::http::{self, BudgetReader, HttpError, ReadOutcome, Request};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::registry::{ModelRegistry, ServedModel};
use passflow_store::DigestStore;

/// Maximum passwords in one request body (`/v1/score` and `/v1/logprob`).
/// Larger batches get a clean 413 — client-side batching beyond the
/// server's own micro-batch size buys nothing.
pub const MAX_REQUEST_PASSWORDS: usize = 256;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: SocketAddr,
    /// Batcher tuning (micro-batch size, straggler wait, queue bound).
    pub batcher: BatcherConfig,
    /// Maximum concurrently handled connections; excess connections are
    /// answered with 503 and closed instead of piling up threads.
    pub max_connections: usize,
    /// Per-connection read timeout (a stalled peer cannot pin a handler).
    pub read_timeout: Duration,
    /// Per-connection write timeout (a peer that stops *reading* cannot
    /// pin a handler flushing a large response either).
    pub write_timeout: Duration,
    /// Wall-clock budget for reading one complete request — the slow-loris
    /// bound. Per-read timeouts only limit the gap between bytes; this
    /// limits the total, so a peer dribbling a byte at a time is cut off
    /// with a 408. Idle keep-alive time between requests is not counted.
    pub request_read_budget: Duration,
    /// Default per-request deadline. Clients may *shorten* it per request
    /// with an `X-Passflow-Deadline-Ms` header (never extend); jobs whose
    /// deadline expires before the batcher picks them up answer 504.
    pub default_deadline: Duration,
    /// Circuit-breaker tuning for the digest store (failure threshold and
    /// cooldown before half-open probes).
    pub breaker: BreakerConfig,
    /// Whether `POST /admin/shutdown` is honored (off by default; the
    /// serve binary enables it so CI can assert a clean shutdown remotely).
    pub allow_shutdown: bool,
    /// Breach digest store backing `GET /v1/range/{prefix}` and
    /// `POST /v1/screen`; when `None` those endpoints answer 503 so a
    /// misconfigured deployment fails loudly instead of calling every
    /// password clean.
    pub digest: Option<Arc<DigestStore>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".parse().expect("valid literal address"),
            batcher: BatcherConfig::default(),
            max_connections: 256,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            request_read_budget: Duration::from_secs(10),
            default_deadline: Duration::from_secs(10),
            breaker: BreakerConfig::default(),
            allow_shutdown: false,
            digest: None,
        }
    }
}

/// Shared server state handed to every connection handler.
struct Shared {
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    batcher: BatcherHandle,
    addr: SocketAddr,
    stop: AtomicBool,
    active_connections: AtomicUsize,
    allow_shutdown: bool,
    digest: Option<Arc<DigestStore>>,
    /// Circuit breaker in front of every digest-store read.
    breaker: CircuitBreaker,
    /// Server default for per-request deadlines.
    default_deadline: Duration,
    /// Wall-clock budget for reading one request (slow-loris bound).
    read_budget: Duration,
    /// Live sockets by connection id, so shutdown can close *idle* peers
    /// (parked in a read) instead of waiting out their read timeout. A
    /// connection whose handler is mid-request is spared — its response is
    /// written first; the `busy` transitions share this map's lock, so
    /// shutdown and a handler can never race on the same socket.
    live: std::sync::Mutex<std::collections::HashMap<u64, LiveConn>>,
    next_conn_id: AtomicUsize,
}

struct LiveConn {
    stream: TcpStream,
    /// Whether the handler is between "request fully read" and "response
    /// flushed". Only mutated under the `live` map lock.
    busy: bool,
}

impl Shared {
    /// Sets the stop flag and nudges every blocked thread: closes sockets
    /// whose handlers are idle (parked in a read — their next request has
    /// not arrived, so nothing is dropped) and pokes the accept loop awake.
    /// Busy handlers keep their socket, finish the in-flight request, then
    /// observe the stop flag and exit. `except` spares the calling
    /// connection so the shutdown response itself can still be written.
    fn begin_shutdown(&self, except: Option<u64>) {
        self.stop.store(true, Ordering::SeqCst);
        if let Ok(live) = self.live.lock() {
            for (id, conn) in live.iter() {
                if Some(*id) != except && !conn.busy {
                    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    fn register_connection(&self, stream: &TcpStream) -> u64 {
        let id = self.next_conn_id.fetch_add(1, Ordering::SeqCst) as u64;
        if let (Ok(mut live), Ok(clone)) = (self.live.lock(), stream.try_clone()) {
            live.insert(
                id,
                LiveConn {
                    stream: clone,
                    busy: false,
                },
            );
        }
        id
    }

    /// Marks the connection busy (request read, response pending). Returns
    /// `false` if shutdown already closed this socket — the handler should
    /// bail instead of processing a request whose reply cannot be written.
    fn set_busy(&self, id: u64, busy: bool) -> bool {
        if self.stop.load(Ordering::SeqCst) && busy {
            return false;
        }
        if let Ok(mut live) = self.live.lock() {
            if let Some(conn) = live.get_mut(&id) {
                conn.busy = busy;
                return true;
            }
        }
        false
    }

    fn unregister_connection(&self, id: u64) {
        if let Ok(mut live) = self.live.lock() {
            live.remove(&id);
        }
        self.active_connections.fetch_sub(1, Ordering::SeqCst);
    }

    /// Mirrors the breaker's state into the metrics gauge (0 closed,
    /// 1 open, 2 half-open) after every breaker interaction.
    fn publish_breaker(&self) {
        let state = match self.breaker.state() {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        };
        self.metrics.set_breaker(state, self.breaker.transitions());
    }

    /// One breach lookup through the circuit breaker. `Some(hit)` is a
    /// healthy verdict; `None` means *degraded* — breaker open, or the
    /// read failed (which also feeds the breaker). Never errors: the
    /// caller's promise is "scores always, verdicts when the store is
    /// healthy".
    fn screen_lookup(&self, password: &str) -> Option<Option<u64>> {
        let digest = self.digest.as_ref()?;
        let verdict = match self.breaker.admit() {
            Admission::Reject => None,
            Admission::Allow | Admission::Probe => match digest.contains_password(password) {
                Ok(hit) => {
                    self.breaker.record_success();
                    Some(hit)
                }
                Err(_) => {
                    self.metrics.record_store_fault();
                    self.breaker.record_failure();
                    None
                }
            },
        };
        self.publish_breaker();
        verdict
    }
}

/// A running server: bound address plus shutdown/join controls.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    batcher: Option<Batcher>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The metrics sink (shared with `GET /metrics`).
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Signals the accept loop to stop. Idempotent; does not wait.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown(None);
    }

    /// Waits for the accept loop, all connection handlers and the batcher
    /// to finish. Call [`shutdown`](Self::shutdown) first (or rely on the
    /// admin endpoint); `join` on a live server blocks until someone does.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Handlers observed the stop flag and finished their in-flight
        // request before the accept thread joined them; dropping the
        // batcher drains whatever is still queued.
        drop(self.batcher.take());
    }
}

/// Starts the server: binds, spawns the batcher and the accept loop.
///
/// # Errors
///
/// Returns the bind error if the address cannot be bound.
pub fn serve(config: ServerConfig, registry: Arc<ModelRegistry>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(config.addr)?;
    let addr = listener.local_addr()?;
    let metrics = Arc::new(Metrics::new());
    let batcher = Batcher::spawn(config.batcher, Arc::clone(&metrics));
    let shared = Arc::new(Shared {
        registry,
        metrics,
        batcher: batcher.handle(),
        addr,
        stop: AtomicBool::new(false),
        active_connections: AtomicUsize::new(0),
        allow_shutdown: config.allow_shutdown,
        digest: config.digest.clone(),
        breaker: CircuitBreaker::new(config.breaker),
        default_deadline: config.default_deadline,
        read_budget: config.request_read_budget,
        live: std::sync::Mutex::new(std::collections::HashMap::new()),
        next_conn_id: AtomicUsize::new(0),
    });

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("passflow-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_shared, &config))
        .expect("spawning the accept thread");

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        batcher: Some(batcher),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, config: &ServerConfig) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                // Persistent accept errors (fd exhaustion, say) must not
                // busy-spin the core the scoring thread needs.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break; // the wake-up connection itself
        }
        handlers.retain(|h| !h.is_finished());
        if shared.active_connections.load(Ordering::SeqCst) >= config.max_connections {
            let mut writer = BufWriter::new(&stream);
            let _ = respond_error(
                &mut writer,
                &HttpError {
                    status: 503,
                    message: "connection limit reached".to_string(),
                },
            );
            continue;
        }
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let _ = stream.set_write_timeout(Some(config.write_timeout));
        let _ = stream.set_nodelay(true);
        shared.active_connections.fetch_add(1, Ordering::SeqCst);
        let conn_id = shared.register_connection(&stream);
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("passflow-conn".to_string())
            .spawn(move || {
                handle_connection(stream, conn_id, &conn_shared);
                conn_shared.unregister_connection(conn_id);
            })
            .expect("spawning a connection handler");
        handlers.push(handle);
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

fn handle_connection(stream: TcpStream, conn_id: u64, shared: &Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BudgetReader::new(BufReader::new(read_half), shared.read_budget);
    let mut writer = BufWriter::new(stream);

    loop {
        // Each request gets a fresh read budget; idle keep-alive gaps
        // between requests cost nothing.
        reader.rearm();
        let started = Instant::now();
        match http::read_request(&mut reader) {
            ReadOutcome::Closed => return,
            ReadOutcome::Error(err) => {
                // Protocol errors poison the byte stream: respond, close.
                shared.metrics.record_request("other", err.status);
                let _ = respond_error(&mut writer, &err);
                return;
            }
            ReadOutcome::Request(request) => {
                // Mark busy so shutdown spares this socket until the
                // response is flushed; bail if shutdown beat us to it (the
                // socket is already closed, no reply can be written).
                if !shared.set_busy(conn_id, true) {
                    return;
                }
                let (endpoint, response) = route(&request, conn_id, shared);
                let keep_alive = request.keep_alive && !shared.stop.load(Ordering::SeqCst);
                shared.metrics.record_request(endpoint, response.status);
                shared.metrics.record_latency(started.elapsed());
                let written = http::write_response(
                    &mut writer,
                    response.status,
                    response.content_type,
                    response.body.as_bytes(),
                    keep_alive,
                );
                shared.set_busy(conn_id, false);
                if written.is_err() || !keep_alive {
                    return;
                }
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// An application-level response (always a complete body; framing is the
/// connection handler's job).
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: value.to_string(),
        }
    }

    fn error(status: u16, message: &str) -> Response {
        Self::json(
            status,
            &Json::obj([("error", Json::Str(message.to_string()))]),
        )
    }
}

fn respond_error<W: std::io::Write>(writer: &mut W, err: &HttpError) -> std::io::Result<()> {
    let body = Json::obj([("error", Json::Str(err.message.clone()))]).to_string();
    http::write_response(
        writer,
        err.status,
        "application/json",
        body.as_bytes(),
        false,
    )
}

/// Dispatches one request; returns the metrics endpoint label and response.
fn route(request: &Request, conn_id: u64, shared: &Arc<Shared>) -> (&'static str, Response) {
    if let Some(prefix) = request.path.strip_prefix("/v1/range/") {
        return if request.method == "GET" {
            ("range", range(prefix, shared))
        } else {
            ("other", Response::error(405, "method not allowed"))
        };
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => ("healthz", healthz(shared)),
        ("GET", "/metrics") => (
            "metrics",
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: shared.metrics.render(),
            },
        ),
        ("GET", "/v1/models") => ("models", models(shared)),
        ("POST", "/v1/score") => ("score", score(request, shared, ScoreMode::Strength)),
        ("POST", "/v1/logprob") => ("logprob", score(request, shared, ScoreMode::LogProb)),
        ("POST", "/v1/screen") => ("screen", screen(request, shared)),
        ("POST", "/admin/shutdown") => ("other", admin_shutdown(conn_id, shared)),
        (
            _,
            "/healthz" | "/metrics" | "/v1/models" | "/v1/score" | "/v1/logprob" | "/v1/screen"
            | "/admin/shutdown",
        ) => ("other", Response::error(405, "method not allowed")),
        _ => ("other", Response::error(404, "no such endpoint")),
    }
}

/// `GET /healthz` — structured per-component health. Always HTTP 200 (the
/// process is alive and answering; *content* says how well): orchestrators
/// and the CI smoke test key off the JSON, and a degraded-but-serving
/// process must not be restart-looped by a naive probe. Top-level `status`
/// is `"ok"` only when every component is healthy.
fn healthz(shared: &Arc<Shared>) -> Response {
    let names = shared.registry.names();
    let registry_ok = !names.is_empty();
    let batcher_ok = shared.batcher.is_alive();
    let models = names.into_iter().map(Json::Str).collect();
    let ok_or = |ok: bool, degraded: &str| Json::Str(if ok { "ok" } else { degraded }.to_string());

    let digest_component = match shared.digest.as_ref() {
        None => Json::obj([("status", Json::Str("absent".to_string()))]),
        Some(_) => {
            let state = shared.breaker.state();
            Json::obj([
                ("status", ok_or(state == BreakerState::Closed, "degraded")),
                ("breaker", Json::Str(state.label().to_string())),
            ])
        }
    };
    let digest_ok = shared.digest.is_none() || shared.breaker.state() == BreakerState::Closed;

    let all_ok = registry_ok && batcher_ok && digest_ok;
    Response::json(
        200,
        &Json::obj([
            ("status", ok_or(all_ok, "degraded")),
            ("models", Json::Arr(models)),
            (
                "components",
                Json::obj([
                    (
                        "registry",
                        Json::obj([
                            ("status", ok_or(registry_ok, "empty")),
                            ("models", Json::Num(shared.registry.len() as f64)),
                        ]),
                    ),
                    (
                        "batcher",
                        Json::obj([("status", ok_or(batcher_ok, "dead"))]),
                    ),
                    ("digest_store", digest_component),
                ]),
            ),
        ]),
    )
}

fn admin_shutdown(conn_id: u64, shared: &Arc<Shared>) -> Response {
    if !shared.allow_shutdown {
        return Response::error(404, "no such endpoint");
    }
    // Spare this connection so the response below still reaches the caller
    // (the handler closes it right after: stop forces keep_alive off).
    shared.begin_shutdown(Some(conn_id));
    Response::json(
        200,
        &Json::obj([("status", Json::Str("stopping".to_string()))]),
    )
}

/// The parsed, validated body shared by `/v1/score` and `/v1/logprob`.
struct ScoreRequest {
    model: Arc<ServedModel>,
    passwords: Vec<String>,
}

fn parse_score_request(request: &Request, shared: &Arc<Shared>) -> Result<ScoreRequest, Response> {
    if request.body.is_empty() {
        return Err(Response::error(400, "empty request body"));
    }
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| Response::error(400, "request body is not UTF-8"))?;
    let doc = json::parse(text).map_err(|e| Response::error(400, &format!("bad JSON: {e}")))?;
    let model_name = match doc.get("model") {
        None => "default",
        Some(v) => v
            .as_str()
            .ok_or_else(|| Response::error(422, "\"model\" must be a string"))?,
    };
    let passwords_value = doc
        .get("passwords")
        .ok_or_else(|| Response::error(422, "missing \"passwords\" array"))?;
    let items = passwords_value
        .as_arr()
        .ok_or_else(|| Response::error(422, "\"passwords\" must be an array"))?;
    if items.is_empty() {
        return Err(Response::error(422, "\"passwords\" must not be empty"));
    }
    if items.len() > MAX_REQUEST_PASSWORDS {
        return Err(Response::error(
            413,
            &format!("at most {MAX_REQUEST_PASSWORDS} passwords per request"),
        ));
    }
    let mut passwords = Vec::with_capacity(items.len());
    for item in items {
        passwords.push(
            item.as_str()
                .ok_or_else(|| Response::error(422, "passwords must be strings"))?
                .to_string(),
        );
    }
    let model = shared
        .registry
        .get(model_name)
        .ok_or_else(|| Response::error(404, &format!("no model named {model_name:?}")))?;
    Ok(ScoreRequest { model, passwords })
}

/// What a scoring endpoint adds on top of raw log-probabilities.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ScoreMode {
    /// `/v1/score`: log-probs plus guess-number estimates.
    Strength,
    /// `/v1/logprob`: log-probs only.
    LogProb,
    /// `/v1/screen`: log-probs, estimates, *and* breach membership.
    Screen,
}

/// `GET /v1/models` — registered models with their current versions.
fn models(shared: &Arc<Shared>) -> Response {
    let models = shared
        .registry
        .entries()
        .into_iter()
        .map(|(name, version, quantized)| {
            Json::obj([
                ("name", Json::Str(name)),
                ("version", Json::Num(version as f64)),
                ("quantized", Json::Bool(quantized)),
            ])
        })
        .collect();
    Response::json(200, &Json::obj([("models", Json::Arr(models))]))
}

/// `GET /v1/range/{prefix}` — the k-anonymity range endpoint: suffixes (and
/// counts) of every stored digest under a 5-hex-char prefix. The client
/// hashes locally and reveals only 20 bits of the digest.
fn range(prefix: &str, shared: &Arc<Shared>) -> Response {
    let Some(digest) = shared.digest.as_ref() else {
        return Response::error(503, "no digest store is configured");
    };
    if prefix.len() != 5 || !prefix.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Response::error(422, "range prefix must be exactly 5 hex characters");
    }
    // Unlike `/v1/screen`, the range endpoint has nothing useful to serve
    // without the store — its whole payload *is* store data — so partial
    // failure gets an honest 503, through the same breaker.
    if shared.breaker.admit() == Admission::Reject {
        shared.publish_breaker();
        return Response::error(503, "digest store unavailable (circuit open)");
    }
    let outcome = digest.range(prefix);
    match &outcome {
        Ok(_) => shared.breaker.record_success(),
        Err(_) => {
            shared.metrics.record_store_fault();
            shared.breaker.record_failure();
        }
    }
    shared.publish_breaker();
    let entries = match outcome {
        Ok(entries) => entries,
        Err(e) => return Response::error(503, &format!("range query failed: {e}")),
    };
    let suffixes = entries
        .iter()
        .map(|entry| {
            Json::obj([
                ("suffix", Json::Str(entry.suffix.clone())),
                ("count", Json::Num(entry.count as f64)),
            ])
        })
        .collect();
    Response::json(
        200,
        &Json::obj([
            ("prefix", Json::Str(prefix.to_ascii_uppercase())),
            ("suffixes", Json::Arr(suffixes)),
        ]),
    )
}

/// `POST /v1/screen` — strength scoring plus breach membership in one
/// round-trip (the trusted-server variant of range screening).
fn screen(request: &Request, shared: &Arc<Shared>) -> Response {
    if shared.digest.is_none() {
        return Response::error(503, "no digest store is configured");
    }
    score(request, shared, ScoreMode::Screen)
}

/// Resolves one request's scoring deadline: the server default, optionally
/// *shortened* (never extended) by an `X-Passflow-Deadline-Ms` header.
fn request_deadline(request: &Request, shared: &Arc<Shared>) -> Result<Instant, Response> {
    let mut budget = shared.default_deadline;
    if let Some(raw) = request.header("x-passflow-deadline-ms") {
        let ms: u64 = raw
            .parse()
            .map_err(|_| Response::error(400, "malformed X-Passflow-Deadline-Ms header"))?;
        budget = budget.min(Duration::from_millis(ms));
    }
    Ok(Instant::now() + budget)
}

/// Handles `/v1/score`, `/v1/logprob` and the scoring half of `/v1/screen`.
fn score(request: &Request, shared: &Arc<Shared>, mode: ScoreMode) -> Response {
    let parsed = match parse_score_request(request, shared) {
        Ok(parsed) => parsed,
        Err(response) => return response,
    };
    let ScoreRequest { model, passwords } = parsed;
    let deadline = match request_deadline(request, shared) {
        Ok(deadline) => deadline,
        Err(response) => return response,
    };
    if deadline <= Instant::now() {
        // A zero (or already-blown) deadline never reaches the batcher.
        shared.metrics.record_deadline_expired();
        return Response::error(504, "request deadline expired");
    }

    let (reply, result) = mpsc::sync_channel(1);
    let job = ScoreJob {
        model: Arc::clone(&model),
        passwords: passwords.clone(),
        deadline,
        reply,
    };
    match shared.batcher.submit(job) {
        Ok(()) => {}
        Err(EnqueueError::Overloaded) => {
            shared.metrics.record_shed();
            return Response::error(503, "scoring queue is full");
        }
        Err(EnqueueError::ShuttingDown) => return Response::error(503, "server is shutting down"),
    }
    let scores = match result.recv() {
        Ok(ScoreOutcome::Scored(scores)) => scores,
        Ok(ScoreOutcome::Expired) => return Response::error(504, "request deadline expired"),
        Err(_) => return Response::error(500, "batcher dropped the request"),
    };

    let with_strength = mode != ScoreMode::LogProb;
    let mut degraded = false;
    let mut results: Vec<Json> = Vec::with_capacity(passwords.len());
    for (password, score) in passwords.iter().zip(scores.iter()) {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        match score {
            // Unencodable passwords score as null; `/v1/screen` still
            // reports their breach status (membership needs no model).
            None if mode != ScoreMode::Screen => {
                results.push(Json::Null);
                continue;
            }
            None => {
                pairs.push(("password".to_string(), Json::Str(password.clone())));
                pairs.push(("log_prob".to_string(), Json::Null));
            }
            Some(lp) => {
                pairs.push(("password".to_string(), Json::Str(password.clone())));
                pairs.push(("log_prob".to_string(), Json::num_or_null(*lp)));
                pairs.push((
                    "log_prob_bits".to_string(),
                    Json::Str(format!("{:016x}", lp.to_bits())),
                ));
                if with_strength {
                    if let Some(est) = model.estimate(*lp) {
                        pairs.push((
                            "log2_guess_number".to_string(),
                            Json::num_or_null(est.log2_guess_number),
                        ));
                        pairs.push((
                            "log2_ci_low".to_string(),
                            Json::num_or_null(est.log2_ci_low),
                        ));
                        pairs.push((
                            "log2_ci_high".to_string(),
                            Json::num_or_null(est.log2_ci_high),
                        ));
                    }
                }
            }
        }
        if mode == ScoreMode::Screen {
            match shared.screen_lookup(password) {
                Some(hit) => {
                    pairs.push(("breached".to_string(), Json::Bool(hit.is_some())));
                    pairs.push((
                        "breach_count".to_string(),
                        Json::Num(hit.unwrap_or(0) as f64),
                    ));
                }
                // Store unavailable or breaker open: degrade to
                // scores-only rather than failing the whole request. The
                // scores above are still bit-exact; only the breach
                // verdict is withheld, and `"breached": null` says so
                // explicitly (a degraded answer must never read as "not
                // breached").
                None => {
                    degraded = true;
                    pairs.push(("breached".to_string(), Json::Null));
                    pairs.push(("degraded".to_string(), Json::Bool(true)));
                }
            }
        }
        results.push(Json::Obj(pairs.into_iter().collect()));
    }

    let mut top: Vec<(&str, Json)> = vec![
        ("model", Json::Str(model.name().to_string())),
        ("version", Json::Num(model.version() as f64)),
        ("results", Json::Arr(results)),
    ];
    if mode == ScoreMode::Screen {
        top.push(("degraded", Json::Bool(degraded)));
    }
    Response::json(200, &Json::obj(top))
}
