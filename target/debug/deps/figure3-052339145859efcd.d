/root/repo/target/debug/deps/figure3-052339145859efcd.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-052339145859efcd: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
