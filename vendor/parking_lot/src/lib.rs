//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the poison-free guard API (`read()` / `write()` return guards
//! directly). Lock poisoning is translated to a panic propagation, matching
//! `parking_lot`'s behavior closely enough for this workspace: a poisoned
//! lock means a writer already panicked, and the reproduction treats that as
//! fatal either way.

#![warn(rust_2018_idioms)]

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::RwLock;

    #[test]
    fn read_write_round_trip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let lock = std::sync::Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *lock.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 4000);
    }
}
