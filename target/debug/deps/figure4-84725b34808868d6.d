/root/repo/target/debug/deps/figure4-84725b34808868d6.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-84725b34808868d6: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
