//! Conformance suite for the strength subsystem: probability models must be
//! *normalized* (their scores really are probabilities), the flow's fused
//! log-density path must match the reference to 0 ULP, sharding must never
//! change a result, and the Monte-Carlo estimator must agree with ground
//! truth — both the exhaustive enumeration of a tiny model and a real
//! attack-engine run.

use passflow::baselines::{MarkovModel, PcfgModel};
use passflow::nn::rng as nnrng;
use passflow::nn::Tensor;
use passflow::{
    attack_unique_rank, score_wordlist, CorpusConfig, FlowConfig, PassFlow, ProbabilityModel,
    SampleTable, SyntheticCorpusGenerator,
};

fn corpus(n: usize, seed: u64) -> Vec<String> {
    SyntheticCorpusGenerator::new(CorpusConfig::small().with_size(n))
        .generate(seed)
        .into_passwords()
}

/// A corpus over the two-character alphabet {a, b}, so model distributions
/// can be exhaustively enumerated.
fn tiny_alphabet_corpus() -> Vec<String> {
    let mut rng = nnrng::seeded(17);
    let mut out = Vec::new();
    for _ in 0..400 {
        use rand::Rng;
        let len = 1 + rng.gen_range(0..5usize);
        let pw: String = (0..len)
            .map(|_| {
                if rng.gen_range(0..10u32) < 6 {
                    'a'
                } else {
                    'b'
                }
            })
            .collect();
        out.push(pw);
    }
    out
}

/// All strings over {a, b} of length 1..=max_len.
fn enumerate_ab(max_len: usize) -> Vec<String> {
    let mut out = Vec::new();
    for len in 1..=max_len {
        for bits in 0..(1u32 << len) {
            let s: String = (0..len)
                .map(|i| if bits >> i & 1 == 0 { 'a' } else { 'b' })
                .collect();
            out.push(s);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Normalization: exp(log_prob) sums to ≈ 1
// ---------------------------------------------------------------------------

#[test]
fn markov_log_prob_normalizes_over_a_tiny_alphabet() {
    let model = MarkovModel::train(&tiny_alphabet_corpus(), 1, 8);
    // The chain's distribution covers all finite strings; lengths beyond 12
    // carry the (smoothed) residual mass, so the sum over 1..=12 must land
    // just below 1. The empty string also carries boundary mass.
    let empty_mass = model.log_prob("").exp();
    let sum: f64 = enumerate_ab(12)
        .iter()
        .map(|s| model.log_prob(s).exp())
        .sum::<f64>()
        + empty_mass;
    assert!(
        (0.97..=1.0 + 1e-6).contains(&sum),
        "exp(log_prob) must sum to ≈1, got {sum}"
    );
}

#[test]
fn pcfg_log_prob_sums_to_exactly_one_over_its_support() {
    // A hand-picked corpus with a small, fully enumerable support.
    let train: Vec<String> = ["aa1", "bb2", "ab1", "b22", "aa2", "a1", "bb1"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let model = PcfgModel::train(&train, 8);
    // Support = every string over the grammar's letter/digit terminals of
    // lengths ≤ 3; enumerating all candidate strings over {a,b,1,2} up to
    // length 4 covers it with room to spare.
    let symbols = ['a', 'b', '1', '2'];
    let mut sum = 0.0f64;
    let mut stack: Vec<String> = vec![String::new()];
    while let Some(prefix) = stack.pop() {
        for c in symbols {
            let mut s = prefix.clone();
            s.push(c);
            if let Some(lp) = model.log_prob(&s) {
                sum += lp.exp();
            }
            if s.len() < 4 {
                stack.push(s);
            }
        }
    }
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "PCFG is an exact distribution; sum was {sum}"
    );
}

// ---------------------------------------------------------------------------
// Flow log-density: fused fast path vs reference, 0 ULP
// ---------------------------------------------------------------------------

#[test]
fn flow_log_prob_is_bit_exact_with_the_reference_path() {
    for (i, config) in [
        FlowConfig::tiny(),
        FlowConfig::tiny()
            .with_coupling_layers(2)
            .with_hidden_size(48),
        FlowConfig::tiny()
            .with_coupling_layers(6)
            .with_hidden_size(24),
    ]
    .into_iter()
    .enumerate()
    {
        let mut rng = nnrng::seeded(80 + i as u64);
        let flow = PassFlow::new(config, &mut rng).expect("valid config");
        // Mix canonical password encodings with off-grid random points.
        let mut x = flow
            .encode_batch(&[
                "jimmy91".to_string(),
                "123456".to_string(),
                "iloveyou".to_string(),
            ])
            .unwrap();
        let noise = Tensor::randn(5, flow.dim(), &mut rng);
        let fast = flow.log_prob(&x);
        let reference = flow.log_prob_reference(&x);
        assert_eq!(fast.len(), reference.len());
        for (f, r) in fast.iter().zip(reference.iter()) {
            assert_eq!(f.to_bits(), r.to_bits(), "config {i}: fused != reference");
        }
        x = noise;
        let fast = flow.log_prob(&x);
        let reference = flow.log_prob_reference(&x);
        for (f, r) in fast.iter().zip(reference.iter()) {
            assert_eq!(f.to_bits(), r.to_bits(), "config {i}: fused != reference");
        }
    }
}

#[test]
fn flow_batch_scoring_matches_scalar_scoring_bit_for_bit() {
    let mut rng = nnrng::seeded(90);
    let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
    let wordlist = flow.sample_passwords(1500, &mut rng); // crosses chunk size
    let batch = flow.password_log_probs(&wordlist);
    for (pw, b) in wordlist.iter().zip(batch.iter()) {
        let scalar = flow.password_log_prob(pw).unwrap();
        assert_eq!(scalar.to_bits(), b.unwrap().to_bits(), "{pw:?}");
    }
}

// ---------------------------------------------------------------------------
// Estimator vs ground truth
// ---------------------------------------------------------------------------

#[test]
fn estimator_ci_contains_the_exhaustive_rank() {
    // PCFG over a tiny-alphabet corpus: the full support is enumerable, so
    // the *true* descending-probability rank of any password is computable
    // exactly — the quantity the optimal-attacker estimate approximates.
    let train = tiny_alphabet_corpus();
    let model = PcfgModel::train(&train, 8);
    let table = SampleTable::build(&model, 4_000, 29);

    // Enumerate the support (all {a,b} strings the grammar scores).
    let scored: Vec<(String, f64)> = enumerate_ab(8)
        .into_iter()
        .filter_map(|s| model.log_prob(&s).map(|lp| (s, lp)))
        .collect();
    for target_idx in [0usize, 3, 10] {
        let (target, lp) = &scored[target_idx.min(scored.len() - 1)];
        let above = scored.iter().filter(|(_, l)| l > lp).count() as f64;
        let tied = scored.iter().filter(|(_, l)| l == lp).count() as f64;
        let true_rank = above + (tied + 1.0) / 2.0;
        let est = table.estimate(*lp);
        let (lo, hi) = est.ci();
        // The midpoint tie convention quantizes true ranks to halves, so
        // allow half a rank of slack on top of the statistical interval.
        assert!(
            lo - 0.5 <= true_rank && true_rank <= hi + 0.5,
            "{target:?}: exhaustive rank {true_rank} outside [{lo:.1}, {hi:.1}]"
        );
    }
}

#[test]
fn estimator_rank_agrees_with_a_real_attack_engine_run() {
    // The acceptance check: on a small exact model, the estimator's rank
    // for a known password must agree with the true unique-guess rank
    // measured through the AttackEngine, within the reported confidence
    // interval.
    let train = corpus(3_000, 13);
    let model = PcfgModel::train(&train, 10);
    let table = SampleTable::build(&model, 4_000, 21);

    let mut counts = std::collections::HashMap::new();
    for p in &train {
        *counts.entry(p.as_str()).or_insert(0u32) += 1;
    }
    let mut by_freq: Vec<(&str, u32)> = counts.into_iter().collect();
    by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

    for (target, _) in &by_freq[..2] {
        let lp = model.password_log_prob(target).expect("in support");
        let predicted = table.sampling_rank(lp);
        // One attack is one draw of the rank distribution; averaging a few
        // independent engine runs measures the expectation the estimator
        // predicts, well within an interval sized for a single run.
        let mut total = 0.0f64;
        let runs = 5;
        for seed in 0..runs {
            let measured = attack_unique_rank(&model, target, 100_000, seed)
                .unwrap()
                .expect("frequent password must fall within the budget");
            total += measured as f64;
        }
        let mean_measured = total / f64::from(runs as u32);
        assert!(
            predicted.contains(mean_measured),
            "{target:?}: mean measured rank {mean_measured:.1} outside \
             [{:.1}, {:.1}] (predicted {:.1})",
            predicted.ci_low,
            predicted.ci_high,
            predicted.rank
        );
    }
}

// ---------------------------------------------------------------------------
// Sharding and persistence
// ---------------------------------------------------------------------------

#[test]
fn table_build_and_scoring_are_shard_invariant_across_models() {
    let train = corpus(2_000, 23);
    let markov = MarkovModel::train(&train, 2, 10);
    let wordlist = corpus(700, 24);

    let table = SampleTable::build(&markov, 2_000, 11);
    for shards in [2, 8] {
        assert_eq!(
            SampleTable::build_sharded(&markov, 2_000, 11, shards),
            table,
            "table build diverged at {shards} shards"
        );
    }
    let sequential = score_wordlist(&markov, &table, &wordlist, 1);
    for shards in [3, 8] {
        assert_eq!(
            score_wordlist(&markov, &table, &wordlist, shards),
            sequential,
            "scoring diverged at {shards} shards"
        );
    }
}

#[test]
fn persisted_tables_answer_identically_after_reload() {
    let train = corpus(1_500, 31);
    let model = MarkovModel::train(&train, 2, 10);
    let table = SampleTable::build(&model, 1_500, 5);

    let dir = std::env::temp_dir().join("passflow_strength_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("markov.pfstrength");
    table.save(&path).unwrap();
    let loaded = SampleTable::load(&path).unwrap();
    assert_eq!(loaded, table);

    for pw in train.iter().take(50) {
        let lp = model.password_log_prob(pw).unwrap();
        let a = table.estimate(lp);
        let b = loaded.estimate(lp);
        assert_eq!(a, b, "estimates drifted after reload for {pw:?}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn flow_strength_ordering_follows_density() {
    // A flow-backed meter must rank passwords consistently with its own
    // density: higher log-probability ⇒ smaller (or equal) guess number.
    let mut rng = nnrng::seeded(61);
    let flow = PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap();
    let table = SampleTable::build(&flow, 2_000, 7);
    let wordlist = flow.sample_passwords(200, &mut rng);
    let scored = score_wordlist(&flow, &table, &wordlist, 2);
    let mut pairs: Vec<(f64, f64)> = scored
        .iter()
        .filter_map(|s| s.log_prob.zip(s.estimate.map(|e| e.log2_guess_number)))
        .collect();
    assert!(!pairs.is_empty());
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    for w in pairs.windows(2) {
        assert!(
            w[0].1 <= w[1].1 + 1e-9,
            "guess numbers must be monotone in probability"
        );
    }
}
