//! Sharded-batcher suite: multi-lane serving must be indistinguishable —
//! bit for bit — from single-lane serving and from offline scoring.
//!
//! The bar matches `tests/serve.rs`: at every lane count, every score
//! produced through the lane fan-out (round-robin dispatch, submit-side
//! failover, work stealing) is **bit-identical** (0 ULP) to the serial
//! oracle. Lanes change *throughput topology*, never results. The suite
//! also forces the stealing path with one-slot lane queues and asserts it
//! actually fired via the steal counters, and checks the per-lane
//! observability surfaces (`/healthz` lane entries, `passflow_lane_*`
//! metric series).

use std::sync::Arc;
use std::time::Duration;

use passflow::serve::client;
use passflow::serve::{serve, BatcherConfig, ModelRegistry, ServedModel, ServerConfig};
use passflow::{FlowConfig, PassFlow, ProbabilityModel};

fn tiny_flow(seed: u64) -> PassFlow {
    let mut rng = passflow::nn::rng::seeded(seed);
    PassFlow::new(FlowConfig::tiny(), &mut rng).unwrap()
}

fn lane_config(lanes: usize) -> ServerConfig {
    ServerConfig {
        batcher: BatcherConfig {
            lanes,
            max_batch: 32,
            max_wait: Duration::from_millis(3),
            ..BatcherConfig::default()
        },
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

fn start_server(config: ServerConfig, seed: u64) -> (passflow::serve::ServerHandle, PassFlow) {
    let flow = tiny_flow(seed);
    let registry = Arc::new(ModelRegistry::new());
    registry.insert(ServedModel::from_flow("default", &flow, 1, None));
    let server = serve(config, registry).expect("bind on loopback");
    (server, flow)
}

/// Extracts `"log_prob_bits"` hex fields from a score response, in order.
fn response_bits(body: &str) -> Vec<u64> {
    body.split("\"log_prob_bits\":\"")
        .skip(1)
        .map(|rest| u64::from_str_radix(&rest[..16], 16).expect("16 hex digits"))
        .collect()
}

#[test]
fn every_lane_count_scores_bit_identical_to_offline() {
    const THREADS: usize = 8;
    const REQUESTS: usize = 12;

    for lanes in [1usize, 2, 4] {
        let (server, flow) = start_server(lane_config(lanes), 80);
        let addr = server.addr();

        let clients: Vec<_> = (0..THREADS)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..REQUESTS {
                        let pw = format!("lane{t}x{i}");
                        let body = format!("{{\"passwords\":[\"{pw}\"]}}");
                        let response =
                            client::request(addr, "POST", "/v1/score", Some(&body)).unwrap();
                        assert_eq!(response.status, 200, "{}", response.text());
                        let bits = response_bits(&response.text());
                        assert_eq!(bits.len(), 1, "{}", response.text());
                        got.push((pw, bits[0]));
                    }
                    got
                })
            })
            .collect();

        for thread in clients {
            for (pw, served) in thread.join().expect("no client may panic") {
                let expected = flow
                    .password_log_prob(&pw)
                    .unwrap_or_else(|| panic!("{pw} must be encodable"));
                assert_eq!(
                    served,
                    expected.to_bits(),
                    "lanes={lanes}: {pw} drifted from the offline oracle"
                );
            }
        }

        // The fan-out actually fanned out: every lane is alive and the
        // request count adds up.
        assert_eq!(server.batcher().lanes(), lanes);
        assert_eq!(server.batcher().alive_lanes(), lanes);
        assert!(server.metrics().total_requests() >= (THREADS * REQUESTS) as u64);

        server.shutdown();
        server.join();
    }
}

#[test]
fn one_slot_lane_queues_force_stealing_and_results_stay_exact() {
    // Each lane holds ONE job and waits a long straggler window, so a
    // burst from 8 clients must overflow into siblings' queues: failover
    // on submit, stealing on drain. The steal counter proves the path ran.
    let config = ServerConfig {
        batcher: BatcherConfig {
            lanes: 2,
            max_batch: 32,
            max_wait: Duration::from_millis(50),
            queue_capacity: 1,
            ..BatcherConfig::default()
        },
        read_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    let (server, flow) = start_server(config, 81);
    let addr = server.addr();

    let clients: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut got = Vec::new();
                for i in 0..10 {
                    let pw = format!("st{t}x{i}");
                    let body = format!("{{\"passwords\":[\"{pw}\"]}}");
                    let response = client::request(addr, "POST", "/v1/score", Some(&body)).unwrap();
                    // One-slot queues may shed under the burst; a shed is
                    // clean, a scored answer must be exact.
                    match response.status {
                        200 => got.push((pw, response_bits(&response.text())[0])),
                        503 => {}
                        other => panic!("unexpected status {other}: {}", response.text()),
                    }
                }
                got
            })
        })
        .collect();
    let mut scored = 0usize;
    for thread in clients {
        for (pw, served) in thread.join().expect("no client may panic") {
            let expected = flow.password_log_prob(&pw).unwrap();
            assert_eq!(served, expected.to_bits(), "{pw} drifted under stealing");
            scored += 1;
        }
    }
    assert!(scored > 0, "some requests must get through the burst");

    let handle = server.batcher();
    assert!(
        handle.total_steals() > 0,
        "one-slot lanes under an 8-client burst must exercise the steal path"
    );
    assert_eq!(
        handle.total_steals(),
        (0..handle.lanes()).map(|i| handle.lane_steals(i)).sum(),
        "per-lane steal counters must sum to the total"
    );
    // The steals surface in the Prometheus exposition too.
    let metrics = client::request(addr, "GET", "/metrics", None)
        .unwrap()
        .text();
    assert!(
        metrics.contains("passflow_lane_steals_total{lane=\"0\"}"),
        "{metrics}"
    );
    assert_eq!(
        server.metrics().total_lane_steals(),
        handle.total_steals(),
        "metrics and batcher counters must agree"
    );

    server.shutdown();
    server.join();
}

#[test]
fn healthz_and_metrics_expose_per_lane_state() {
    let (server, _flow) = start_server(lane_config(4), 82);
    let addr = server.addr();

    let health = client::request(addr, "GET", "/healthz", None)
        .unwrap()
        .text();
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    for lane in 0..4 {
        assert!(
            health.contains(&format!("{{\"lane\":{lane},\"status\":\"ok\"}}")),
            "lane {lane} missing from {health}"
        );
    }
    assert!(health.contains("\"connections\":{"), "{health}");

    // Generate one scored request so the lane batch histogram is live.
    let response = client::request(
        addr,
        "POST",
        "/v1/score",
        Some(r#"{"passwords":["jimmy91"]}"#),
    )
    .unwrap();
    assert_eq!(response.status, 200);

    let metrics = client::request(addr, "GET", "/metrics", None)
        .unwrap()
        .text();
    for lane in 0..4 {
        assert!(
            metrics.contains(&format!("passflow_lane_depth{{lane=\"{lane}\"}}")),
            "lane {lane} depth gauge missing from {metrics}"
        );
        assert!(
            metrics.contains(&format!("passflow_lane_steals_total{{lane=\"{lane}\"}}")),
            "lane {lane} steal counter missing from {metrics}"
        );
    }
    assert!(
        metrics.contains("passflow_lane_batch_size_bucket{lane=\"0\",le=\"1\"}"),
        "{metrics}"
    );

    server.shutdown();
    server.join();
}
