/root/repo/target/debug/deps/table5-57a16b7ece708561.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-57a16b7ece708561.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
