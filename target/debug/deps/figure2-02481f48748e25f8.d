/root/repo/target/debug/deps/figure2-02481f48748e25f8.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-02481f48748e25f8: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
