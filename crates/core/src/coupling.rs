//! Affine coupling layers (Section III-A).
//!
//! Each coupling layer partitions the input `x` with a binary mask `b` and
//! transforms the unmasked part conditioned on the masked part
//! (Equation 13):
//!
//! ```text
//! z = b ⊙ x + (1 − b) ⊙ (x ⊙ exp(s(b ⊙ x)) + t(b ⊙ x))
//! ```
//!
//! The Jacobian of this map is triangular, so its log-determinant is simply
//! `Σ_j (1 − b)_j · s(b ⊙ x)_j` (Equation 12), and the inverse is available
//! in closed form, which is what makes exact likelihood training and fast
//! sampling possible.

use rand::Rng;

use passflow_nn::{Module, Parameter, ResNet, Tape, Tensor, Var};

use crate::fastpath::CouplingSnapshot;

/// A single affine coupling layer with residual-network `s` (scale) and `t`
/// (translation) functions.
#[derive(Clone, Debug)]
pub struct CouplingLayer {
    /// Binary mask `b` as a `1 × dim` row (1 = pass through, 0 = transform).
    mask: Tensor,
    /// Complement mask `1 − b`.
    inv_mask: Tensor,
    /// Scale network; output squashed by `tanh` for numerical stability of
    /// `exp(s(·))`.
    s_net: ResNet,
    /// Translation network (unbounded output).
    t_net: ResNet,
    dim: usize,
}

impl CouplingLayer {
    /// Creates a coupling layer for `dim`-dimensional inputs.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from `dim` or contains values other
    /// than 0 and 1.
    pub fn new<R: Rng + ?Sized>(
        dim: usize,
        hidden: usize,
        residual_blocks: usize,
        mask: &[f32],
        rng: &mut R,
    ) -> Self {
        assert_eq!(mask.len(), dim, "mask length must equal input dimension");
        assert!(
            mask.iter().all(|&v| v == 0.0 || v == 1.0),
            "mask must be binary"
        );
        let mask_t = Tensor::row(mask);
        let inv_mask_t = mask_t.neg().add_scalar(1.0);
        CouplingLayer {
            mask: mask_t,
            inv_mask: inv_mask_t,
            s_net: ResNet::new(dim, hidden, dim, residual_blocks, true, rng),
            t_net: ResNet::new(dim, hidden, dim, residual_blocks, false, rng),
            dim,
        }
    }

    /// Input/output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The binary mask `b`.
    pub fn mask(&self) -> &Tensor {
        &self.mask
    }

    /// Trainable parameters of both coupling networks.
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut params = self.s_net.parameters();
        params.extend(self.t_net.parameters());
        params
    }

    /// Exports an owned, immutable [`CouplingSnapshot`] of the layer's masks
    /// and network weights for the inference fast path.
    pub fn snapshot(&self) -> CouplingSnapshot {
        CouplingSnapshot::new(
            self.mask.clone(),
            self.s_net.snapshot(),
            self.t_net.snapshot(),
        )
    }

    fn tiled(&self, rows: usize, mask: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(rows, self.dim);
        for i in 0..rows {
            out.as_mut_slice()[i * self.dim..(i + 1) * self.dim].copy_from_slice(mask.as_slice());
        }
        out
    }

    // ------------------------------------------------------------------
    // Training path (autograd)
    // ------------------------------------------------------------------

    /// Forward transform on the tape: returns `(z, log_det_elements)` where
    /// `log_det_elements` is a `batch × dim` tensor whose row sums are the
    /// per-sample log-determinants.
    pub fn forward_var(&self, tape: &Tape, x: &Var) -> (Var, Var) {
        let (rows, cols) = x.shape();
        assert_eq!(cols, self.dim, "input width must equal coupling dimension");
        let b = self.tiled(rows, &self.mask);
        let inv_b = self.tiled(rows, &self.inv_mask);

        let masked_x = x.mul_const(&b);
        let s = self.s_net.forward(tape, &masked_x);
        let t = self.t_net.forward(tape, &masked_x);

        let exp_s = s.exp();
        let transformed = x.mul(&exp_s).add(&t).mul_const(&inv_b);
        let z = masked_x.add(&transformed);
        let log_det_elements = s.mul_const(&inv_b);
        (z, log_det_elements)
    }

    // ------------------------------------------------------------------
    // Inference path (raw tensors)
    // ------------------------------------------------------------------

    /// Forward transform without autograd: returns `(z, log_det)` where
    /// `log_det` is a `batch × 1` column of per-sample log-determinants.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Tensor) {
        assert_eq!(
            x.cols(),
            self.dim,
            "input width must equal coupling dimension"
        );
        let masked_x = x.mul_row_broadcast(&self.mask);
        let s = self.s_net.forward_tensor(&masked_x);
        let t = self.t_net.forward_tensor(&masked_x);

        let transformed = x.mul(&s.exp()).add(&t).mul_row_broadcast(&self.inv_mask);
        let z = masked_x.add(&transformed);
        let log_det = s.mul_row_broadcast(&self.inv_mask).sum_rows();
        (z, log_det)
    }

    /// Inverse transform: recovers `x` from `z`.
    ///
    /// Because the masked positions pass through unchanged, `b ⊙ z = b ⊙ x`,
    /// so the same conditioning input is available and the affine transform
    /// can be undone exactly:
    /// `x = b ⊙ z + (1 − b) ⊙ (z − t(b ⊙ z)) ⊙ exp(−s(b ⊙ z))`.
    pub fn inverse(&self, z: &Tensor) -> Tensor {
        assert_eq!(
            z.cols(),
            self.dim,
            "input width must equal coupling dimension"
        );
        let masked_z = z.mul_row_broadcast(&self.mask);
        let s = self.s_net.forward_tensor(&masked_z);
        let t = self.t_net.forward_tensor(&masked_z);

        let restored = z
            .sub(&t)
            .mul(&s.neg().exp())
            .mul_row_broadcast(&self.inv_mask);
        masked_z.add(&restored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::MaskStrategy;
    use passflow_nn::rng as nnrng;

    fn layer(dim: usize, seed: u64) -> CouplingLayer {
        let mut rng = nnrng::seeded(seed);
        let mask = MaskStrategy::CharRun(1).mask_for_layer(0, dim);
        CouplingLayer::new(dim, 16, 1, &mask, &mut rng)
    }

    #[test]
    fn masked_positions_pass_through_unchanged() {
        let l = layer(6, 1);
        let mut rng = nnrng::seeded(2);
        let x = Tensor::randn(4, 6, &mut rng);
        let (z, _) = l.forward(&x);
        for i in 0..4 {
            for j in 0..6 {
                if l.mask().get(0, j) == 1.0 {
                    assert!((z.get(i, j) - x.get(i, j)).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn inverse_recovers_input() {
        let l = layer(10, 3);
        let mut rng = nnrng::seeded(4);
        let x = Tensor::randn(8, 10, &mut rng);
        let (z, _) = l.forward(&x);
        let recovered = l.inverse(&z);
        assert!(
            recovered.approx_eq(&x, 1e-4),
            "max err {}",
            recovered.sub(&x).abs().max()
        );
    }

    #[test]
    fn forward_then_inverse_round_trips_from_latent_side() {
        let l = layer(10, 5);
        let mut rng = nnrng::seeded(6);
        let z = Tensor::randn(8, 10, &mut rng);
        let x = l.inverse(&z);
        let (z2, _) = l.forward(&x);
        assert!(z2.approx_eq(&z, 1e-4));
    }

    #[test]
    fn log_det_matches_masked_scale_sum() {
        let l = layer(6, 7);
        let mut rng = nnrng::seeded(8);
        let x = Tensor::randn(3, 6, &mut rng);
        let (_, log_det) = l.forward(&x);
        assert_eq!(log_det.shape(), (3, 1));
        // The log-det must be finite and bounded by dim (|s| <= 1 from tanh).
        for i in 0..3 {
            assert!(log_det.get(i, 0).abs() <= 6.0 + 1e-5);
            assert!(log_det.get(i, 0).is_finite());
        }
    }

    #[test]
    fn taped_forward_matches_tensor_forward() {
        let l = layer(8, 9);
        let mut rng = nnrng::seeded(10);
        let x = Tensor::randn(5, 8, &mut rng);
        let (z_t, log_det_t) = l.forward(&x);

        let tape = Tape::new();
        let xv = tape.constant(x);
        let (z_v, log_det_elems) = l.forward_var(&tape, &xv);
        assert!(z_v.value().approx_eq(&z_t, 1e-5));
        assert!(log_det_elems.value().sum_rows().approx_eq(&log_det_t, 1e-4));
    }

    #[test]
    fn gradients_flow_through_coupling() {
        let l = layer(6, 11);
        let mut rng = nnrng::seeded(12);
        let x = Tensor::randn(4, 6, &mut rng);
        let tape = Tape::new();
        let xv = tape.constant(x);
        let (z, log_det) = l.forward_var(&tape, &xv);
        for p in l.parameters() {
            p.zero_grad();
        }
        // A loss touching both outputs.
        z.square().sum().add(&log_det.sum().neg()).backward();
        let total: f32 = l.parameters().iter().map(|p| p.grad().abs().sum()).sum();
        assert!(total > 0.0);
    }

    #[test]
    fn near_identity_at_initialization() {
        // The scale network's final layer is near-zero initialized, so a
        // fresh coupling layer should approximately preserve scale: |z|
        // should not explode relative to |x|.
        let l = layer(10, 13);
        let mut rng = nnrng::seeded(14);
        let x = Tensor::randn(16, 10, &mut rng);
        let (z, _) = l.forward(&x);
        let ratio = z.norm() / x.norm();
        assert!(ratio < 3.0, "output norm exploded: ratio {ratio}");
    }

    #[test]
    fn parameters_cover_both_networks() {
        let l = layer(6, 15);
        // input + output linear layers (2 params each) + 1 res block (4 params)
        // per network, times two networks.
        assert_eq!(l.parameters().len(), 2 * (2 + 2 + 4));
        assert_eq!(l.dim(), 6);
    }

    #[test]
    #[should_panic(expected = "mask must be binary")]
    fn non_binary_mask_rejected() {
        let mut rng = nnrng::seeded(1);
        let _ = CouplingLayer::new(4, 8, 1, &[0.5, 1.0, 0.0, 1.0], &mut rng);
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn wrong_mask_length_rejected() {
        let mut rng = nnrng::seeded(1);
        let _ = CouplingLayer::new(4, 8, 1, &[1.0, 0.0], &mut rng);
    }
}
