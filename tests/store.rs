//! Store conformance suite: build → query round-trips against `BTreeMap`
//! oracles (with external-sort spills forced), byte-identical one-pass vs
//! sharded-merge builds (merge associativity and commutativity), corruption
//! and truncation detection on load, and boundary prefix queries — for both
//! the `PFDIGEST v1` digest stores and the `PFGUESS v1` guess archives.

use std::collections::BTreeMap;
use std::path::PathBuf;

use passflow::store::sha1;
use passflow::{
    merge_archives, merge_artifacts, DigestConfig, DigestStore, DigestStoreBuilder, GuessArchive,
    GuessArchiveBuilder, GuessConfig,
};

/// A scratch dir that removes itself (and its artifacts) on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "pfdigest-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic synthetic passwords with deliberate duplicates.
fn corpus(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("pw-{}-{}", i % (n / 3 + 1), i % 7))
        .collect()
}

#[test]
fn round_trip_matches_btreemap_oracle_with_spills_forced() {
    let scratch = Scratch::new("oracle");
    let passwords = corpus(5_000);

    // Oracle: digest-keyed counts, exactly the artifact's dedup semantics.
    let mut oracle: BTreeMap<[u8; 20], u64> = BTreeMap::new();
    for pw in &passwords {
        *oracle.entry(sha1::password_digest(pw)).or_insert(0) += 1;
    }

    // 64-record spill threshold forces dozens of external-sort runs.
    let mut builder = DigestStoreBuilder::new(DigestConfig::default())
        .with_memory_records(64)
        .with_scratch_dir(&scratch.0);
    for pw in &passwords {
        builder.add_password(pw).unwrap();
    }
    let out = scratch.path("oracle.pfd");
    let stats = builder.finish(&out).unwrap();
    assert_eq!(stats.record_count, oracle.len() as u64);

    let store = DigestStore::open(&out).unwrap();
    assert_eq!(store.record_count(), oracle.len() as u64);
    store.verify().unwrap();

    // Membership and counts agree with the oracle for every member…
    for (digest, count) in &oracle {
        assert_eq!(store.contains_digest(digest).unwrap(), Some(*count));
    }
    // …and for known non-members.
    for i in 0..500u64 {
        let absent = sha1::sha1(&i.to_be_bytes());
        let expected = oracle.get(&absent).copied();
        assert_eq!(store.contains_digest(&absent).unwrap(), expected);
    }

    // Range queries reconstruct the full record set exactly.
    let mut reconstructed: BTreeMap<[u8; 20], u64> = BTreeMap::new();
    for block in 0u32..256 {
        let prefix = format!("{block:02X}");
        for entry in store.range(&prefix).unwrap() {
            let hex = format!("{prefix}{}", entry.suffix);
            let bytes = sha1::from_hex(&hex).unwrap();
            let mut digest = [0u8; 20];
            digest[..bytes.len()].copy_from_slice(&bytes);
            reconstructed.insert(digest, entry.count);
        }
    }
    // The store truncates digests to 16 bytes; truncate the oracle to match.
    let truncated: BTreeMap<[u8; 20], u64> = oracle
        .iter()
        .map(|(d, c)| {
            let mut t = [0u8; 20];
            t[..16].copy_from_slice(&d[..16]);
            (t, *c)
        })
        .collect();
    assert_eq!(reconstructed, truncated);
}

#[test]
fn one_pass_and_sharded_merge_builds_are_byte_identical() {
    let scratch = Scratch::new("merge");
    let passwords = corpus(4_000);

    // One-pass build over everything.
    let one_pass = scratch.path("one_pass.pfd");
    let mut builder = DigestStoreBuilder::new(DigestConfig::default());
    for pw in &passwords {
        builder.add_password(pw).unwrap();
    }
    builder.finish(&one_pass).unwrap();

    // Four overlapping shards (offset windows, so counts must sum).
    let shard_paths: Vec<PathBuf> = (0..4).map(|s| scratch.path(&format!("s{s}.pfd"))).collect();
    for (s, path) in shard_paths.iter().enumerate() {
        let mut builder = DigestStoreBuilder::new(DigestConfig::default());
        for pw in passwords.iter().skip(s).step_by(4) {
            builder.add_password(pw).unwrap();
        }
        builder.finish(path).unwrap();
    }

    // 4-way merge == one-pass, byte for byte.
    let merged_4way = scratch.path("m4.pfd");
    merge_artifacts(&shard_paths, &merged_4way).unwrap();
    let reference = std::fs::read(&one_pass).unwrap();
    assert_eq!(std::fs::read(&merged_4way).unwrap(), reference, "4-way");

    // Associativity: merge(merge(s0,s1), merge(s2,s3)) == one-pass.
    let left = scratch.path("left.pfd");
    let right = scratch.path("right.pfd");
    merge_artifacts(&shard_paths[..2], &left).unwrap();
    merge_artifacts(&shard_paths[2..], &right).unwrap();
    let pairwise = scratch.path("pairwise.pfd");
    merge_artifacts(&[left, right], &pairwise).unwrap();
    assert_eq!(std::fs::read(&pairwise).unwrap(), reference, "associative");

    // Commutativity: reversed shard order == one-pass.
    let reversed: Vec<PathBuf> = shard_paths.iter().rev().cloned().collect();
    let merged_rev = scratch.path("rev.pfd");
    merge_artifacts(&reversed, &merged_rev).unwrap();
    assert_eq!(
        std::fs::read(&merged_rev).unwrap(),
        reference,
        "commutative"
    );

    // And the merged store serves identical range responses.
    let a = DigestStore::open(&one_pass).unwrap();
    let b = DigestStore::open(&merged_4way).unwrap();
    for pw in passwords.iter().take(64) {
        let prefix = &sha1::to_hex(&sha1::password_digest(pw))[..5];
        assert_eq!(a.range(prefix).unwrap(), b.range(prefix).unwrap());
    }
}

#[test]
fn merge_rejects_mismatched_configs_and_empty_inputs() {
    let scratch = Scratch::new("mismatch");
    let wide = scratch.path("wide.pfd");
    let narrow = scratch.path("narrow.pfd");
    let mut builder = DigestStoreBuilder::new(DigestConfig::default());
    builder.add_password("alpha").unwrap();
    builder.finish(&wide).unwrap();
    let mut builder = DigestStoreBuilder::new(DigestConfig {
        digest_bytes: 8,
        ..DigestConfig::default()
    });
    builder.add_password("alpha").unwrap();
    builder.finish(&narrow).unwrap();

    let out = scratch.path("out.pfd");
    let err = merge_artifacts(&[wide, narrow], &out).unwrap_err();
    assert!(
        err.to_string().contains("mismatched"),
        "unexpected error: {err}"
    );
    let none: [PathBuf; 0] = [];
    assert!(merge_artifacts(&none, &out).is_err(), "empty input list");
}

#[test]
fn corrupted_and_truncated_artifacts_fail_to_open_or_verify() {
    let scratch = Scratch::new("corrupt");
    let path = scratch.path("victim.pfd");
    let mut builder = DigestStoreBuilder::new(DigestConfig::default());
    for pw in corpus(2_000) {
        builder.add_password(&pw).unwrap();
    }
    builder.finish(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Sanity: the pristine artifact opens and verifies.
    DigestStore::open(&path).unwrap().verify().unwrap();

    // Bad magic.
    let mut bytes = pristine.clone();
    bytes[0] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(DigestStore::open(&path).is_err(), "bad magic must not open");

    // Unsupported version.
    let mut bytes = pristine.clone();
    bytes[8] = 99;
    std::fs::write(&path, &bytes).unwrap();
    assert!(DigestStore::open(&path).is_err(), "bad version");

    // Truncation: drop the tail (index) — open must fail, not misread.
    for keep in [10, 63, 64, pristine.len() / 2, pristine.len() - 7] {
        std::fs::write(&path, &pristine[..keep]).unwrap();
        assert!(DigestStore::open(&path).is_err(), "truncated to {keep}");
    }

    // Flipping a record byte passes open (header and index are intact) but
    // must be caught by the checksum verify pass.
    let mut bytes = pristine.clone();
    bytes[70] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    match DigestStore::open(&path) {
        // Either the decode breaks outright (fine), or verify flags it.
        Err(_) => {}
        Ok(store) => {
            assert!(store.verify().is_err(), "checksum must catch a bit flip");
        }
    }
}

#[test]
fn empty_store_and_boundary_prefixes_answer_cleanly() {
    let scratch = Scratch::new("boundary");

    // An empty store is valid: zero records, every query answers empty.
    let empty = scratch.path("empty.pfd");
    DigestStoreBuilder::new(DigestConfig::default())
        .finish(&empty)
        .unwrap();
    let store = DigestStore::open(&empty).unwrap();
    assert_eq!(store.record_count(), 0);
    store.verify().unwrap();
    assert_eq!(store.contains_password("anything").unwrap(), None);
    assert!(store.range("00000").unwrap().is_empty());
    assert!(store.range("FFFFF").unwrap().is_empty());

    // A store with digests pinned at both extremes of the keyspace.
    let edges = scratch.path("edges.pfd");
    let mut builder = DigestStoreBuilder::new(DigestConfig::default());
    builder.add_digest(&[0x00; 20], 3).unwrap();
    builder.add_digest(&[0xFF; 20], 9).unwrap();
    builder.finish(&edges).unwrap();
    let store = DigestStore::open(&edges).unwrap();

    let low = store.range("00000").unwrap();
    assert_eq!(low.len(), 1);
    assert_eq!(low[0].count, 3);
    assert!(low[0].suffix.chars().all(|c| c == '0'));
    let high = store.range("fffff").unwrap();
    assert_eq!(high.len(), 1, "lowercase prefixes work too");
    assert_eq!(high[0].count, 9);
    assert!(store.range("77777").unwrap().is_empty(), "middle is empty");

    // Prefix validation: empty, non-hex, and longer than the digest.
    assert!(store.range("").is_err());
    assert!(store.range("zzzzz").is_err());
    assert!(store.range(&"A".repeat(33)).is_err(), "33 > 2×16 hex chars");
    // A whole-digest prefix (32 hex chars at 16 stored bytes) is allowed
    // and acts as exact lookup.
    let full = sha1::to_hex(&[0u8; 16]);
    assert_eq!(store.range(&full).unwrap().len(), 1);
}

#[test]
fn injected_faults_are_deterministic_and_outages_surface_typed_errors() {
    use passflow::store::{FaultPlan, FaultyIo, FileIo};

    let scratch = Scratch::new("faults");
    let path = scratch.path("faulty.pfd");
    let mut builder = DigestStoreBuilder::new(DigestConfig::default());
    for pw in corpus(3_000) {
        builder.add_password(&pw).unwrap();
    }
    builder.finish(&path).unwrap();
    let clean = DigestStore::open(&path).unwrap();

    // ~35% of reads misbehave, deterministically per (seed, read index).
    let plan = FaultPlan {
        seed: 42,
        short_read_per_mille: 150,
        interrupt_per_mille: 120,
        transient_per_mille: 80,
        latency: std::time::Duration::ZERO,
    };
    let probes: Vec<String> = corpus(200);
    let run = || {
        let io = FaultyIo::new(Box::new(FileIo::open(&path).unwrap()), plan);
        let injector = io.injector();
        // Open quietly (the corruption tests own open-failure paths),
        // then arm the plan for every lookup.
        injector.set_active(false);
        let store = DigestStore::open_with_io(&path, Box::new(io)).unwrap();
        injector.set_active(true);
        let verdicts: Vec<Option<u64>> = probes
            .iter()
            .map(|pw| store.contains_password(pw).unwrap())
            .collect();
        (store, injector, verdicts)
    };

    // Same seed → same fault stream → same injected count, twice over.
    let (store, injector, verdicts) = run();
    let (_store2, injector2, verdicts2) = run();
    assert_eq!(verdicts, verdicts2, "same seed, same outcomes");
    assert_eq!(injector.injected_faults(), injector2.injected_faults());
    assert!(injector.injected_faults() > 0, "the plan must have fired");

    // Bounded retries make the noisy store answer exactly like the clean
    // one — membership, counts, and a full checksum verify pass.
    for (pw, verdict) in probes.iter().zip(&verdicts) {
        assert_eq!(clean.contains_password(pw).unwrap(), *verdict, "{pw}");
    }
    store.verify().unwrap();

    // A total outage is a *typed* availability error — distinct from
    // corruption, and never a panic.
    let member = &probes[0];
    let prefix = sha1::to_hex(&sha1::password_digest(member))[..5].to_string();
    injector.set_outage(true);
    let err = store.contains_password(member).unwrap_err();
    assert!(err.is_unavailable(), "got {err}");
    assert!(err.to_string().contains("store unavailable"), "{err}");
    let err = store.range(&prefix).unwrap_err();
    assert!(err.is_unavailable(), "range too: {err}");

    // And the moment the outage ends, the store serves again.
    injector.set_outage(false);
    assert_eq!(
        store.contains_password(member).unwrap(),
        clean.contains_password(member).unwrap()
    );
}

#[test]
fn guess_archive_round_trip_matches_btreemap_oracle_with_spills_forced() {
    let scratch = Scratch::new("guess-oracle");
    let words = corpus(5_000);

    // Oracle: per-guess emission counts, exactly the archive's semantics.
    let mut oracle: BTreeMap<String, u64> = BTreeMap::new();
    for w in &words {
        *oracle.entry(w.clone()).or_insert(0) += 1;
    }

    // 64-record spill threshold forces dozens of external-sort runs.
    let mut builder = GuessArchiveBuilder::new(GuessConfig::default())
        .with_memory_records(64)
        .with_scratch_dir(&scratch.0);
    for w in &words {
        builder.add_guess(w, 1).unwrap();
    }
    let out = scratch.path("oracle.pfg");
    let stats = builder.finish(&out).unwrap();
    assert_eq!(stats.record_count, oracle.len() as u64);

    let archive = GuessArchive::open(&out).unwrap();
    archive.verify().unwrap();
    assert_eq!(archive.record_count(), oracle.len() as u64);

    // Point lookups agree with the oracle for members and non-members.
    for (w, count) in &oracle {
        assert_eq!(archive.contains(w).unwrap(), Some(*count), "{w}");
    }
    assert_eq!(archive.contains("definitely-absent").unwrap(), None);
    assert_eq!(archive.contains("pw-").unwrap(), None, "prefix ≠ member");

    // Every corpus word starts with "pw-", so one prefix extraction must
    // reconstruct the whole oracle.
    let extracted: BTreeMap<String, u64> =
        archive.extract_prefix("pw-").unwrap().into_iter().collect();
    assert_eq!(extracted, oracle);
    assert!(archive.extract_prefix("zz").unwrap().is_empty());

    // The sequential cursor serves the same records, sorted and deduped.
    let mut cursor = archive.records();
    let mut seen: Vec<(String, u64)> = Vec::new();
    while let Some((bytes, count)) = cursor.next_record().unwrap() {
        seen.push((String::from_utf8(bytes).unwrap(), count));
    }
    assert!(seen.windows(2).all(|w| w[0].0 < w[1].0), "sorted + deduped");
    assert_eq!(seen.into_iter().collect::<BTreeMap<_, _>>(), oracle);
}

#[test]
fn guess_archive_merge_trees_match_single_pass_byte_for_byte() {
    let scratch = Scratch::new("guess-merge");
    let words = corpus(4_000);

    // One-pass build over everything.
    let one_pass = scratch.path("one_pass.pfg");
    let mut builder = GuessArchiveBuilder::new(GuessConfig::default());
    for w in &words {
        builder.add_guess(w, 1).unwrap();
    }
    builder.finish(&one_pass).unwrap();
    let reference = std::fs::read(&one_pass).unwrap();

    // Four overlapping shards (offset windows, so counts must sum).
    let shard_paths: Vec<PathBuf> = (0..4).map(|s| scratch.path(&format!("s{s}.pfg"))).collect();
    for (s, path) in shard_paths.iter().enumerate() {
        let mut builder = GuessArchiveBuilder::new(GuessConfig::default());
        for w in words.iter().skip(s).step_by(4) {
            builder.add_guess(w, 1).unwrap();
        }
        builder.finish(path).unwrap();
    }

    // 4-way merge == one-pass, byte for byte.
    let merged_4way = scratch.path("m4.pfg");
    merge_archives(&shard_paths, &merged_4way).unwrap();
    assert_eq!(std::fs::read(&merged_4way).unwrap(), reference, "4-way");

    // Associativity: merge(merge(s0,s1), merge(s2,s3)) == one-pass.
    let left = scratch.path("left.pfg");
    let right = scratch.path("right.pfg");
    merge_archives(&shard_paths[..2], &left).unwrap();
    merge_archives(&shard_paths[2..], &right).unwrap();
    let pairwise = scratch.path("pairwise.pfg");
    merge_archives(&[left, right], &pairwise).unwrap();
    assert_eq!(std::fs::read(&pairwise).unwrap(), reference, "associative");

    // Commutativity: reversed shard order == one-pass.
    let reversed: Vec<PathBuf> = shard_paths.iter().rev().cloned().collect();
    let merged_rev = scratch.path("rev.pfg");
    merge_archives(&reversed, &merged_rev).unwrap();
    assert_eq!(
        std::fs::read(&merged_rev).unwrap(),
        reference,
        "commutative"
    );

    // And the merged archive serves identical lookups.
    let a = GuessArchive::open(&one_pass).unwrap();
    let b = GuessArchive::open(&merged_4way).unwrap();
    b.verify().unwrap();
    for w in words.iter().take(64) {
        assert_eq!(a.contains(w).unwrap(), b.contains(w).unwrap(), "{w}");
    }
}

#[test]
fn failed_guess_archive_builds_leave_no_scratch_debris() {
    let scratch = Scratch::new("guess-fault");
    let dir = scratch.path("spill-scratch");
    std::fs::create_dir_all(&dir).unwrap();

    {
        // The second spill (0-based nth = 1) dies after 16 bytes, after the
        // first spill has already parked a healthy run file in `dir`.
        let mut builder = GuessArchiveBuilder::new(GuessConfig::default())
            .with_memory_records(32)
            .with_scratch_dir(&dir)
            .with_injected_spill_fault(1, 16);
        let mut failed = false;
        for w in corpus(2_000) {
            if let Err(e) = builder.add_guess(&w, 1) {
                assert!(e.to_string().contains("injected"), "unexpected: {e}");
                failed = true;
                break;
            }
        }
        if !failed {
            builder.finish(scratch.path("out.pfg")).unwrap_err();
        }
        // While the builder lives, the healthy first run may still exist…
    }
    // …but its drop guard must unlink every pfguess-run-*.tmp.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    assert!(leftovers.is_empty(), "scratch debris: {leftovers:?}");
}

#[test]
fn counts_disabled_stores_serve_presence_only() {
    let scratch = Scratch::new("nocounts");
    let path = scratch.path("presence.pfd");
    let mut builder = DigestStoreBuilder::new(DigestConfig {
        counts: false,
        ..DigestConfig::default()
    });
    builder.add_password("hello").unwrap();
    builder.add_password("hello").unwrap();
    builder.add_password("world").unwrap();
    builder.finish(&path).unwrap();

    let store = DigestStore::open(&path).unwrap();
    assert_eq!(store.record_count(), 2);
    // Counts collapse to 1 when the artifact does not store them.
    assert_eq!(store.contains_password("hello").unwrap(), Some(1));
    assert_eq!(store.contains_password("absent").unwrap(), None);
}
