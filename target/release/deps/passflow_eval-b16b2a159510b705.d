/root/repo/target/release/deps/passflow_eval-b16b2a159510b705.d: crates/eval/src/lib.rs crates/eval/src/attack.rs crates/eval/src/figures.rs crates/eval/src/projection.rs crates/eval/src/report.rs crates/eval/src/scale.rs crates/eval/src/tables.rs

/root/repo/target/release/deps/libpassflow_eval-b16b2a159510b705.rlib: crates/eval/src/lib.rs crates/eval/src/attack.rs crates/eval/src/figures.rs crates/eval/src/projection.rs crates/eval/src/report.rs crates/eval/src/scale.rs crates/eval/src/tables.rs

/root/repo/target/release/deps/libpassflow_eval-b16b2a159510b705.rmeta: crates/eval/src/lib.rs crates/eval/src/attack.rs crates/eval/src/figures.rs crates/eval/src/projection.rs crates/eval/src/report.rs crates/eval/src/scale.rs crates/eval/src/tables.rs

crates/eval/src/lib.rs:
crates/eval/src/attack.rs:
crates/eval/src/figures.rs:
crates/eval/src/projection.rs:
crates/eval/src/report.rs:
crates/eval/src/scale.rs:
crates/eval/src/tables.rs:
