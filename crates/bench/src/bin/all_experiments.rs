//! Regenerates every table and figure in one run, sharing a single trained
//! workbench. This is the binary behind `EXPERIMENTS.md`:
//!
//! ```text
//! cargo run --release -p passflow-bench --bin all_experiments -- --scale default
//! ```

use passflow_bench::{emit, prepare, scale_from_env};
use passflow_eval::{figures, tables};

fn main() -> passflow_core::Result<()> {
    let scale = scale_from_env();
    let workbench = prepare(scale)?;

    emit(&tables::table1(&workbench.scale.budgets), "table1");
    emit(&tables::table2(&workbench)?, "table2");
    emit(&tables::table3(&workbench)?, "table3");
    emit(&tables::table4(&workbench, 36), "table4");
    emit(&tables::table5(&workbench, "jimmy91")?, "table5");
    emit(&tables::table6(&workbench)?, "table6");

    emit(
        &figures::figure2(&workbench, &["jaram", "royal"], 40, 200)?,
        "figure2",
    );
    emit(
        &figures::figure3(&workbench, "jimmy91", "123456", 12)?,
        "figure3",
    );
    let full = workbench.split.train.len();
    let sizes = vec![full / 6, full / 3, (2 * full) / 3, full];
    let budget = workbench.scale.max_budget().clamp(1_000, 10_000);
    emit(&figures::figure4(&workbench, &sizes, budget)?, "figure4");
    emit(&figures::figure5(&workbench), "figure5");

    eprintln!("all experiments complete; CSVs are under target/experiments/");
    Ok(())
}
