/root/repo/target/debug/deps/table2-2a75b8cb3f7aab4f.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-2a75b8cb3f7aab4f: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
