//! Latent-space interpolation between two passwords (Algorithm 2 /
//! Figure 3 of the paper).
//!
//! Because the flow is invertible, any password has an exact latent
//! representation; walking the straight line between two latent points and
//! inverting each step produces a sequence of realistic passwords morphing
//! from one endpoint to the other.
//!
//! ```text
//! cargo run --release --example interpolation
//! ```

use passflow::{
    interpolate, train, CorpusConfig, FlowConfig, PassFlow, SyntheticCorpusGenerator, TrainConfig,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = SyntheticCorpusGenerator::new(CorpusConfig::small()).generate(11);
    let split = corpus.paper_split(0.8, 4_000, 11);

    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let flow = PassFlow::new(FlowConfig::tiny(), &mut rng)?;
    train(&flow, &split.train, &TrainConfig::tiny().with_epochs(6))?;

    for (start, target) in [("jimmy91", "123456"), ("sunshine", "qwerty12")] {
        println!("interpolating {start:?} -> {target:?}");
        println!("{:<6} {:<12} {:>10}", "step", "password", "log-prob");
        let path = interpolate(&flow, start, target, 10)?;
        assert_eq!(path.len(), 11, "10 steps produce 11 points");
        assert_eq!(
            path.first().map(|p| p.password.as_str()),
            Some(start),
            "the path must start at the start password"
        );
        assert_eq!(
            path.last().map(|p| p.password.as_str()),
            Some(target),
            "the path must end at the target password"
        );
        for point in path {
            let lp = flow
                .log_prob_password(&point.password)
                .expect("interpolation points decode to encodable passwords");
            assert!(lp.is_finite(), "step {} has non-finite density", point.step);
            println!("{:<6} {:<12} {:>10.2}", point.step, point.password, lp);
        }
        println!();
    }

    println!(
        "intermediate steps stay in high-density regions of the latent space, so they\n\
         decode to human-like passwords rather than noise (Section V-B of the paper)."
    );
    Ok(())
}
